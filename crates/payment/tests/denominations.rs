//! Denomination-handling tests: covering-coin selection, overpayment
//! semantics, and wallet reuse.

use p2drm_crypto::rng::test_rng;
use p2drm_payment::{Mint, MintConfig, PaymentError, Wallet};

fn mint() -> Mint {
    Mint::new(
        MintConfig {
            key_bits: 512,
            denominations: vec![100, 500, 1000],
        },
        &mut test_rng(500),
    )
}

#[test]
fn covering_coin_selected_for_odd_amounts() {
    let m = mint();
    m.fund_account("u", 10_000);
    let mut w = Wallet::new();
    let mut rng = test_rng(501);

    // 250 is not a denomination: the 500 coin covers it.
    let coin = w.coin_for_amount(&m, "u", 250, &mut rng).unwrap();
    assert_eq!(coin.denomination, 500);
    assert_eq!(m.balance("u"), 9_500);

    // Exact denominations are used exactly.
    let coin = w.coin_for_amount(&m, "u", 100, &mut rng).unwrap();
    assert_eq!(coin.denomination, 100);
}

#[test]
fn held_coins_reused_before_withdrawing() {
    let m = mint();
    m.fund_account("u", 10_000);
    let mut w = Wallet::new();
    let mut rng = test_rng(502);
    w.withdraw(&m, "u", 1000, &mut rng).unwrap();
    w.withdraw(&m, "u", 500, &mut rng).unwrap();
    let balance_after_withdrawals = m.balance("u");

    // 300 should take the held 500 (smallest covering), not withdraw anew.
    let coin = w.coin_for_amount(&m, "u", 300, &mut rng).unwrap();
    assert_eq!(coin.denomination, 500);
    assert_eq!(m.balance("u"), balance_after_withdrawals, "no new debit");
    assert_eq!(w.balance(), 1000, "the 1000 coin remains");
}

#[test]
fn amount_above_largest_denomination_fails() {
    let m = mint();
    m.fund_account("u", 100_000);
    let mut w = Wallet::new();
    let mut rng = test_rng(503);
    assert!(matches!(
        w.coin_for_amount(&m, "u", 5_000, &mut rng),
        Err(PaymentError::UnknownDenomination(5_000))
    ));
}

#[test]
fn denominations_listing_sorted() {
    let m = mint();
    assert_eq!(m.denominations(), vec![100, 500, 1000]);
}

#[test]
fn overpaid_purchase_accepted_end_to_end() {
    // A provider accepts any coin >= price; the odd-priced content path.
    use p2drm_core::system::{System, SystemConfig};
    let mut rng = test_rng(504);
    let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
    let cid = sys.publish_content("oddly priced", 250, b"payload", &mut rng);
    let mut alice = sys.register_user("alice", &mut rng).unwrap();
    sys.fund(&alice, 1_000);
    let license = sys.purchase(&mut alice, cid, &mut rng).unwrap();
    assert!(license.verify(sys.provider.public_key()).is_ok());
    // The 500 coin was deposited (overpayment, no change).
    assert_eq!(sys.mint.deposited_total(), 500);
}
