//! The mint: blind coin issuance against an account ledger, deposit with
//! double-spend detection, and an auditable withdrawal transcript used by
//! the unlinkability tests.

use crate::{Coin, PaymentError};
use p2drm_bignum::UBig;
use p2drm_crypto::blind;
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use p2drm_store::{Kv, MemKv, SharedKv};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Mint construction parameters.
#[derive(Clone, Debug)]
pub struct MintConfig {
    /// RSA modulus bits for denomination keys.
    pub key_bits: usize,
    /// Supported denominations (minor units).
    pub denominations: Vec<u64>,
}

impl Default for MintConfig {
    fn default() -> Self {
        MintConfig {
            key_bits: 512,
            denominations: vec![100, 500, 1000],
        }
    }
}

/// One entry of the mint's withdrawal transcript: everything the mint ever
/// learns at withdrawal time.
#[derive(Clone, Debug)]
pub struct WithdrawalRecord {
    /// The paying account.
    pub account: String,
    /// The denomination.
    pub denomination: u64,
    /// The blinded value the mint signed (uniformly random to the mint).
    pub blinded: UBig,
}

struct MintInner<S: Kv> {
    keys: HashMap<u64, RsaKeyPair>,
    ledger: Mutex<HashMap<String, u64>>,
    spent: SharedKv<S>,
    transcript: Mutex<Vec<WithdrawalRecord>>,
    deposited_total: Mutex<u64>,
}

/// Shareable mint handle.
pub struct Mint<S: Kv = MemKv> {
    inner: Arc<MintInner<S>>,
}

impl<S: Kv> Clone for Mint<S> {
    fn clone(&self) -> Self {
        Mint {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Mint<MemKv> {
    /// Creates a mint with a volatile spent-serial store.
    pub fn new<R: CryptoRng + ?Sized>(config: MintConfig, rng: &mut R) -> Self {
        Self::with_store(config, MemKv::new(), rng)
    }
}

impl<S: Kv> Mint<S> {
    /// Creates a mint over a caller-provided spent-serial store (use a
    /// [`p2drm_store::WalKv`] for durability across restarts).
    pub fn with_store<R: CryptoRng + ?Sized>(config: MintConfig, store: S, rng: &mut R) -> Self {
        let mut keys = HashMap::new();
        for &d in &config.denominations {
            keys.insert(d, RsaKeyPair::generate(config.key_bits, rng));
        }
        Mint {
            inner: Arc::new(MintInner {
                keys,
                ledger: Mutex::new(HashMap::new()),
                spent: SharedKv::new(store),
                transcript: Mutex::new(Vec::new()),
                deposited_total: Mutex::new(0),
            }),
        }
    }

    /// Public verification key for a denomination.
    pub fn public_key(&self, denomination: u64) -> Result<&RsaPublicKey, PaymentError> {
        self.inner
            .keys
            .get(&denomination)
            .map(|kp| kp.public())
            .ok_or(PaymentError::UnknownDenomination(denomination))
    }

    /// The denominations this mint issues, ascending.
    pub fn denominations(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self.inner.keys.keys().copied().collect();
        d.sort_unstable();
        d
    }

    /// Credits an account (out-of-band funding).
    pub fn fund_account(&self, account: &str, amount: u64) {
        *self
            .inner
            .ledger
            .lock()
            .entry(account.to_string())
            .or_insert(0) += amount;
    }

    /// Account balance.
    pub fn balance(&self, account: &str) -> u64 {
        self.inner.ledger.lock().get(account).copied().unwrap_or(0)
    }

    /// Withdrawal: debits `account` by `denomination` and blind-signs the
    /// submitted value. The mint never sees the serial inside `blinded`.
    pub fn withdraw(
        &self,
        account: &str,
        denomination: u64,
        blinded: &UBig,
    ) -> Result<UBig, PaymentError> {
        let kp = self
            .inner
            .keys
            .get(&denomination)
            .ok_or(PaymentError::UnknownDenomination(denomination))?;
        {
            let mut ledger = self.inner.ledger.lock();
            let balance = ledger
                .get_mut(account)
                .ok_or(PaymentError::UnknownAccount)?;
            if *balance < denomination {
                return Err(PaymentError::InsufficientFunds {
                    balance: *balance,
                    requested: denomination,
                });
            }
            *balance -= denomination;
        }
        self.inner.transcript.lock().push(WithdrawalRecord {
            account: account.to_string(),
            denomination,
            blinded: blinded.clone(),
        });
        Ok(blind::blind_sign(kp, blinded)?)
    }

    /// Deposit: verifies the coin and marks its serial spent.
    ///
    /// Exactly one deposit per serial ever succeeds — enforced by the
    /// atomic [`Kv::insert_if_absent`] under the store's write lock.
    pub fn deposit(&self, coin: &Coin) -> Result<(), PaymentError> {
        self.check_coin(coin)?;
        self.deposit_prechecked(coin)
    }

    /// Signature-only half of [`Self::deposit`]: checks the coin under
    /// its denomination key without touching the spent store. Pure and
    /// side-effect free, so callers overlapping work with a concurrent
    /// verification (the provider's valve) can run it early and commit
    /// with [`Self::deposit_prechecked`] afterwards.
    pub fn check_coin(&self, coin: &Coin) -> Result<(), PaymentError> {
        let key = self.public_key(coin.denomination)?;
        if !coin.verify(key) {
            return Err(PaymentError::BadCoin);
        }
        Ok(())
    }

    /// Spent-marking half of [`Self::deposit`]. The coin's signature
    /// MUST have been validated with [`Self::check_coin`] first; this
    /// method only enforces the exactly-once serial rule.
    pub fn deposit_prechecked(&self, coin: &Coin) -> Result<(), PaymentError> {
        let mut spent_key = Vec::with_capacity(38);
        spent_key.extend_from_slice(b"spent/");
        spent_key.extend_from_slice(&coin.serial);
        let fresh = self.inner.spent.insert_if_absent(&spent_key, &[])?;
        if !fresh {
            return Err(PaymentError::DoubleSpend);
        }
        *self.inner.deposited_total.lock() += coin.denomination;
        Ok(())
    }

    /// Whether a coin serial has been deposited — the reconciliation
    /// query for ambiguously-spent coins: a wallet holding a coin whose
    /// purchase reply was lost asks here before deciding between
    /// re-spending (serial unknown → the deposit never happened) and
    /// discarding (serial spent → re-spending would double-spend). The
    /// serial is 32 unguessable random bytes only its withdrawer knows,
    /// so the query leaks nothing to third parties.
    pub fn is_spent(&self, serial: &[u8; 32]) -> bool {
        let mut spent_key = Vec::with_capacity(38);
        spent_key.extend_from_slice(b"spent/");
        spent_key.extend_from_slice(serial);
        self.inner.spent.contains(&spent_key)
    }

    /// Total value deposited so far.
    pub fn deposited_total(&self) -> u64 {
        *self.inner.deposited_total.lock()
    }

    /// Number of spent serials recorded.
    pub fn spent_count(&self) -> usize {
        self.inner.spent.len()
    }

    /// Snapshot of the withdrawal transcript (what an adversarial mint
    /// would data-mine when trying to link deposits to accounts).
    pub fn withdrawal_transcript(&self) -> Vec<WithdrawalRecord> {
        self.inner.transcript.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Wallet;
    use p2drm_crypto::rng::test_rng;

    fn mint() -> Mint {
        Mint::new(MintConfig::default(), &mut test_rng(100))
    }

    #[test]
    fn fund_withdraw_deposit_cycle() {
        let m = mint();
        m.fund_account("alice", 1000);
        let mut rng = test_rng(101);
        let mut wallet = Wallet::new();
        let coin = wallet.withdraw(&m, "alice", 100, &mut rng).unwrap();
        assert_eq!(m.balance("alice"), 900);
        assert!(coin.verify(m.public_key(100).unwrap()));
        m.deposit(&coin).unwrap();
        assert_eq!(m.deposited_total(), 100);
        assert_eq!(m.spent_count(), 1);
    }

    #[test]
    fn insufficient_funds_and_unknown_account() {
        let m = mint();
        m.fund_account("bob", 50);
        let mut rng = test_rng(102);
        let mut wallet = Wallet::new();
        assert!(matches!(
            wallet.withdraw(&m, "bob", 100, &mut rng),
            Err(PaymentError::InsufficientFunds {
                balance: 50,
                requested: 100
            })
        ));
        assert!(matches!(
            wallet.withdraw(&m, "carol", 100, &mut rng),
            Err(PaymentError::UnknownAccount)
        ));
        assert!(matches!(
            wallet.withdraw(&m, "bob", 77, &mut rng),
            Err(PaymentError::UnknownDenomination(77))
        ));
    }

    #[test]
    fn double_spend_rejected() {
        let m = mint();
        m.fund_account("alice", 100);
        let mut rng = test_rng(103);
        let mut wallet = Wallet::new();
        let coin = wallet.withdraw(&m, "alice", 100, &mut rng).unwrap();
        m.deposit(&coin).unwrap();
        assert_eq!(m.deposit(&coin), Err(PaymentError::DoubleSpend));
        assert_eq!(m.deposited_total(), 100, "second deposit adds nothing");
    }

    #[test]
    fn concurrent_double_spend_single_winner() {
        let m = mint();
        m.fund_account("alice", 100);
        let mut rng = test_rng(104);
        let mut wallet = Wallet::new();
        let coin = wallet.withdraw(&m, "alice", 100, &mut rng).unwrap();

        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                let coin = coin.clone();
                std::thread::spawn(move || m.deposit(&coin).is_ok())
            })
            .collect();
        let winners = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn forged_coin_rejected() {
        let m = mint();
        let forged = Coin {
            serial: [7; 32],
            denomination: 100,
            signature: p2drm_crypto::rsa::RsaSignature::from_ubig(UBig::from_u64(12345)),
        };
        assert_eq!(m.deposit(&forged), Err(PaymentError::BadCoin));
    }

    #[test]
    fn transcript_never_contains_serial() {
        // Unlinkability witness: the serial the merchant sees at deposit
        // appears nowhere in what the mint recorded at withdrawal.
        let m = mint();
        m.fund_account("alice", 500);
        let mut rng = test_rng(105);
        let mut wallet = Wallet::new();
        let coin = wallet.withdraw(&m, "alice", 500, &mut rng).unwrap();
        for rec in m.withdrawal_transcript() {
            let blinded_bytes = rec.blinded.to_bytes_be();
            assert!(
                !p2drm_pki_free_contains(&blinded_bytes, &coin.serial),
                "serial leaked into withdrawal transcript"
            );
        }
    }

    /// Local subslice check (avoids a dependency just for the test).
    fn p2drm_pki_free_contains(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }
}
