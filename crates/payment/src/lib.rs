//! Anonymous payment substrate for P2DRM.
//!
//! The paper's anonymous purchase protocol assumes "an anonymous payment
//! system" exists; this crate builds one from the same blind-signature
//! primitive that powers pseudonym certification (Chaum e-cash):
//!
//! * [`Mint`] — issues coins blindly per denomination (it debits an
//!   *account* at withdrawal but never sees the coin serial), and detects
//!   double spends at deposit through the spent-serial store;
//! * [`Wallet`] — user side: withdraws, holds, and spends coins;
//! * [`Coin`] — `(serial, denomination, FDH blind signature)`;
//! * [`identified`] — the baseline: a conventional account charge that
//!   reveals the payer to the merchant, used by the non-private DRM
//!   comparator in every benchmark.
//!
//! Unlinkability property: the mint sees `(account, blinded-bytes)` at
//! withdrawal and `(serial, signature)` at deposit, and the two are
//! cryptographically unlinkable — tested in `tests` below by replaying the
//! mint's own transcript.

#![forbid(unsafe_code)]

pub mod coin;
pub mod identified;
pub mod mint;
pub mod wallet;

pub use coin::Coin;
pub use mint::{Mint, MintConfig};
pub use wallet::Wallet;

/// Payment failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaymentError {
    /// Account has insufficient balance at withdrawal.
    InsufficientFunds {
        /// Account balance found.
        balance: u64,
        /// Amount requested.
        requested: u64,
    },
    /// Coin signature invalid or denomination unknown.
    BadCoin,
    /// Serial already deposited.
    DoubleSpend,
    /// Unknown account.
    UnknownAccount,
    /// Unknown denomination requested.
    UnknownDenomination(u64),
    /// Underlying crypto failure.
    Crypto(p2drm_crypto::CryptoError),
    /// Storage failure (spent-serial store).
    Store(String),
}

impl std::fmt::Display for PaymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaymentError::InsufficientFunds { balance, requested } => {
                write!(f, "insufficient funds: have {balance}, need {requested}")
            }
            PaymentError::BadCoin => write!(f, "coin failed verification"),
            PaymentError::DoubleSpend => write!(f, "coin serial already spent"),
            PaymentError::UnknownAccount => write!(f, "unknown account"),
            PaymentError::UnknownDenomination(d) => write!(f, "no key for denomination {d}"),
            PaymentError::Crypto(e) => write!(f, "crypto: {e}"),
            PaymentError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for PaymentError {}

impl From<p2drm_crypto::CryptoError> for PaymentError {
    fn from(e: p2drm_crypto::CryptoError) -> Self {
        PaymentError::Crypto(e)
    }
}

impl From<p2drm_store::StoreError> for PaymentError {
    fn from(e: p2drm_store::StoreError) -> Self {
        PaymentError::Store(e.to_string())
    }
}
