//! Identified payment baseline: a plain account charge that reveals the
//! payer to the merchant — what conventional DRM uses, and the comparator
//! in every cost-of-privacy benchmark.

use crate::PaymentError;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A charge receipt the merchant keeps. Note it names the payer — this is
/// exactly the linkable record the paper's scheme eliminates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChargeReceipt {
    /// Payer account (identifying!).
    pub payer: String,
    /// Amount charged.
    pub amount: u64,
    /// Processor-assigned transaction id.
    pub txn_id: u64,
}

impl Encode for ChargeReceipt {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.payer);
        w.put_u64(self.amount);
        w.put_u64(self.txn_id);
    }
}

impl Decode for ChargeReceipt {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(ChargeReceipt {
            payer: r.get_str()?,
            amount: r.get_u64()?,
            txn_id: r.get_u64()?,
        })
    }
}

/// A toy card-network processor: accounts, balances, charges.
#[derive(Clone, Default)]
pub struct PaymentProcessor {
    inner: Arc<Mutex<ProcessorInner>>,
}

#[derive(Default)]
struct ProcessorInner {
    balances: HashMap<String, u64>,
    next_txn: u64,
    receipts: Vec<ChargeReceipt>,
}

impl PaymentProcessor {
    /// Fresh processor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits an account.
    pub fn fund_account(&self, account: &str, amount: u64) {
        *self
            .inner
            .lock()
            .balances
            .entry(account.to_string())
            .or_insert(0) += amount;
    }

    /// Account balance.
    pub fn balance(&self, account: &str) -> u64 {
        self.inner
            .lock()
            .balances
            .get(account)
            .copied()
            .unwrap_or(0)
    }

    /// Charges `account` by `amount`, returning the identifying receipt.
    pub fn charge(&self, account: &str, amount: u64) -> Result<ChargeReceipt, PaymentError> {
        let mut inner = self.inner.lock();
        let balance = inner
            .balances
            .get_mut(account)
            .ok_or(PaymentError::UnknownAccount)?;
        if *balance < amount {
            return Err(PaymentError::InsufficientFunds {
                balance: *balance,
                requested: amount,
            });
        }
        *balance -= amount;
        inner.next_txn += 1;
        let receipt = ChargeReceipt {
            payer: account.to_string(),
            amount,
            txn_id: inner.next_txn,
        };
        inner.receipts.push(receipt.clone());
        Ok(receipt)
    }

    /// Every receipt ever issued — the processor's (fully linkable) ledger.
    pub fn receipts(&self) -> Vec<ChargeReceipt> {
        self.inner.lock().receipts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_flow() {
        let p = PaymentProcessor::new();
        p.fund_account("alice", 300);
        let r1 = p.charge("alice", 100).unwrap();
        let r2 = p.charge("alice", 100).unwrap();
        assert_eq!(p.balance("alice"), 100);
        assert_eq!(r1.payer, "alice");
        assert_ne!(r1.txn_id, r2.txn_id);
        assert!(matches!(
            p.charge("alice", 500),
            Err(PaymentError::InsufficientFunds { .. })
        ));
        assert!(matches!(
            p.charge("nobody", 1),
            Err(PaymentError::UnknownAccount)
        ));
    }

    #[test]
    fn receipts_link_payer_to_every_purchase() {
        // The baseline's privacy failure, demonstrated: all receipts carry
        // the payer name.
        let p = PaymentProcessor::new();
        p.fund_account("bob", 1000);
        for _ in 0..5 {
            p.charge("bob", 100).unwrap();
        }
        let receipts = p.receipts();
        assert_eq!(receipts.len(), 5);
        assert!(receipts.iter().all(|r| r.payer == "bob"));
    }

    #[test]
    fn receipt_codec_roundtrip() {
        let r = ChargeReceipt {
            payer: "x".into(),
            amount: 5,
            txn_id: 9,
        };
        let bytes = p2drm_codec::to_bytes(&r);
        assert_eq!(p2drm_codec::from_bytes::<ChargeReceipt>(&bytes).unwrap(), r);
    }
}
