//! The user's coin wallet: withdrawal (blinding dance with the mint) and
//! spend bookkeeping.

use crate::{Coin, Mint, PaymentError};
use p2drm_crypto::blind::Blinded;
use p2drm_crypto::rng::CryptoRng;
use p2drm_store::Kv;

/// Holds withdrawn, not-yet-spent coins, plus a **pending** pool for
/// coins whose fate is ambiguous: a purchase whose response was lost may
/// or may not have deposited the coin, so it is neither spendable nor
/// discardable until reconciled out-of-band ([`Wallet::park`]).
#[derive(Default)]
pub struct Wallet {
    coins: Vec<Coin>,
    pending: Vec<Coin>,
}

impl Wallet {
    /// Empty wallet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Coins currently held.
    pub fn len(&self) -> usize {
        self.coins.len()
    }

    /// True when no coins are held.
    pub fn is_empty(&self) -> bool {
        self.coins.is_empty()
    }

    /// Total face value held.
    pub fn balance(&self) -> u64 {
        self.coins.iter().map(|c| c.denomination).sum()
    }

    /// Withdraws one coin of `denomination` from `mint`, paying from
    /// `account`. Returns the unblinded coin (also kept in the wallet).
    pub fn withdraw<S: Kv, R: CryptoRng + ?Sized>(
        &mut self,
        mint: &Mint<S>,
        account: &str,
        denomination: u64,
        rng: &mut R,
    ) -> Result<Coin, PaymentError> {
        let pk = mint.public_key(denomination)?;
        let mut serial = [0u8; 32];
        rng.fill_bytes(&mut serial);
        let message = Coin::message_bytes(&serial, denomination);
        let blinded = Blinded::new(pk, &message, rng)?;
        let blind_sig = mint.withdraw(account, denomination, &blinded.blinded)?;
        let signature = blinded.unblind(pk, &blind_sig)?;
        let coin = Coin {
            serial,
            denomination,
            signature,
        };
        self.coins.push(coin.clone());
        Ok(coin)
    }

    /// Takes a coin of exactly `denomination` out of the wallet for
    /// spending, if one is held.
    pub fn take(&mut self, denomination: u64) -> Option<Coin> {
        let idx = self
            .coins
            .iter()
            .position(|c| c.denomination == denomination)?;
        Some(self.coins.swap_remove(idx))
    }

    /// Produces a coin worth at least `amount`: reuses the smallest held
    /// coin that covers it, otherwise withdraws the smallest covering
    /// denomination the mint offers. Fixed-denomination e-cash cannot make
    /// change, so paying 250 with a 500-coin overpays — the paper-era
    /// tradeoff (callers can price at denominations to avoid it).
    pub fn coin_for_amount<S: Kv, R: CryptoRng + ?Sized>(
        &mut self,
        mint: &Mint<S>,
        account: &str,
        amount: u64,
        rng: &mut R,
    ) -> Result<Coin, PaymentError> {
        // Smallest held coin covering the amount.
        if let Some(idx) = self
            .coins
            .iter()
            .enumerate()
            .filter(|(_, c)| c.denomination >= amount)
            .min_by_key(|(_, c)| c.denomination)
            .map(|(i, _)| i)
        {
            return Ok(self.coins.swap_remove(idx));
        }
        // Smallest covering denomination at the mint.
        let denom = mint
            .denominations()
            .into_iter()
            .filter(|&d| d >= amount)
            .min()
            .ok_or(PaymentError::UnknownDenomination(amount))?;
        let coin = self.withdraw(mint, account, denom, rng)?;
        self.take(coin.denomination)
            .ok_or(PaymentError::UnknownDenomination(amount))
    }

    /// Puts an unspent coin back (e.g. after a failed purchase).
    pub fn put_back(&mut self, coin: Coin) {
        self.coins.push(coin);
    }

    /// Parks a coin whose fate is ambiguous (e.g. a purchase whose
    /// response never decoded: the provider may or may not have
    /// deposited it). Parked coins are excluded from [`Wallet::balance`]
    /// and cannot be spent — re-spending a deposited coin would
    /// double-spend — but they are not silently lost either: they stay
    /// visible through [`Wallet::pending`] until
    /// [`Wallet::reconcile_pending`] settles them against the mint's
    /// authoritative spent-serial record (or the owner drains them
    /// manually via [`Wallet::take_pending`]).
    pub fn park(&mut self, coin: Coin) {
        self.pending.push(coin);
    }

    /// Coins awaiting reconciliation after an ambiguous spend.
    pub fn pending(&self) -> &[Coin] {
        &self.pending
    }

    /// Drains the pending pool, handing the coins to the caller for
    /// reconciliation (put the survivors back with [`Wallet::put_back`]).
    pub fn take_pending(&mut self) -> Vec<Coin> {
        std::mem::take(&mut self.pending)
    }

    /// Settles every parked coin against the mint's spent-serial record
    /// ([`Mint::is_spent`]): serials the mint never saw return to the
    /// spendable pool (the ambiguous spend never happened), deposited
    /// serials are discarded (their value was consumed by the spend).
    /// Returns `(restored, discarded)` counts.
    pub fn reconcile_pending<S: Kv>(&mut self, mint: &Mint<S>) -> (usize, usize) {
        let (mut restored, mut discarded) = (0, 0);
        for coin in std::mem::take(&mut self.pending) {
            if mint.is_spent(&coin.serial) {
                discarded += 1;
            } else {
                self.coins.push(coin);
                restored += 1;
            }
        }
        (restored, discarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MintConfig;
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn wallet_bookkeeping() {
        let mint = Mint::new(MintConfig::default(), &mut test_rng(110));
        mint.fund_account("u", 2000);
        let mut rng = test_rng(111);
        let mut w = Wallet::new();
        assert!(w.is_empty());
        w.withdraw(&mint, "u", 100, &mut rng).unwrap();
        w.withdraw(&mint, "u", 500, &mut rng).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.balance(), 600);

        assert!(w.take(1000).is_none());
        let c = w.take(500).unwrap();
        assert_eq!(w.balance(), 100);
        w.put_back(c);
        assert_eq!(w.balance(), 600);
    }

    #[test]
    fn withdrawn_coins_have_unique_serials() {
        let mint = Mint::new(MintConfig::default(), &mut test_rng(112));
        mint.fund_account("u", 10_000);
        let mut rng = test_rng(113);
        let mut w = Wallet::new();
        let mut serials = std::collections::HashSet::new();
        for _ in 0..20 {
            let c = w.withdraw(&mint, "u", 100, &mut rng).unwrap();
            assert!(serials.insert(c.serial), "serial collision");
        }
    }

    #[test]
    fn parked_coins_are_neither_spendable_nor_lost() {
        let mint = Mint::new(MintConfig::default(), &mut test_rng(116));
        mint.fund_account("u", 1000);
        let mut rng = test_rng(117);
        let mut w = Wallet::new();
        w.withdraw(&mint, "u", 100, &mut rng).unwrap();
        let c = w.take(100).unwrap();
        w.park(c.clone());
        // Excluded from the spendable pool...
        assert_eq!(w.balance(), 0);
        assert!(w.take(100).is_none());
        // ...but recoverable after reconciliation.
        assert_eq!(w.pending().len(), 1);
        let recovered = w.take_pending();
        assert_eq!(recovered[0].serial, c.serial);
        assert!(w.pending().is_empty());
        w.put_back(recovered.into_iter().next().unwrap());
        assert_eq!(w.balance(), 100);
    }

    #[test]
    fn reconcile_pending_settles_against_the_mint() {
        let mint = Mint::new(MintConfig::default(), &mut test_rng(118));
        mint.fund_account("u", 1000);
        let mut rng = test_rng(119);
        let mut w = Wallet::new();
        let spent = w.withdraw(&mint, "u", 100, &mut rng).unwrap();
        let unspent = w.withdraw(&mint, "u", 100, &mut rng).unwrap();
        w.take(100).unwrap();
        w.take(100).unwrap();
        w.park(spent.clone());
        w.park(unspent.clone());
        // One ambiguous spend actually landed at the mint.
        mint.deposit(&spent).unwrap();

        assert_eq!(w.reconcile_pending(&mint), (1, 1));
        assert!(w.pending().is_empty());
        assert_eq!(w.balance(), 100, "only the unspent coin came back");
        let restored = w.take(100).unwrap();
        assert_eq!(restored.serial, unspent.serial);
        // The restored coin really is spendable exactly once.
        mint.deposit(&restored).unwrap();
        assert!(matches!(
            mint.deposit(&restored),
            Err(PaymentError::DoubleSpend)
        ));
    }

    #[test]
    fn failed_withdraw_leaves_wallet_unchanged() {
        let mint = Mint::new(MintConfig::default(), &mut test_rng(114));
        mint.fund_account("u", 50);
        let mut rng = test_rng(115);
        let mut w = Wallet::new();
        assert!(w.withdraw(&mint, "u", 100, &mut rng).is_err());
        assert!(w.is_empty());
        assert_eq!(mint.balance("u"), 50, "no debit on failure");
    }
}
