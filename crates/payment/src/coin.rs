//! The coin: an FDH-blind-signed `(serial, denomination)` pair.

use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::blind;
use p2drm_crypto::rsa::{RsaPublicKey, RsaSignature};

/// An anonymous bearer coin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coin {
    /// 32-byte random serial, chosen by the withdrawer, unseen by the mint
    /// until deposit.
    pub serial: [u8; 32],
    /// Value in minor units (e.g. cents).
    pub denomination: u64,
    /// Mint blind signature over [`Coin::message_bytes`].
    pub signature: RsaSignature,
}

impl Coin {
    /// The bytes the mint's denomination key signs (via FDH).
    pub fn message_bytes(serial: &[u8; 32], denomination: u64) -> Vec<u8> {
        let mut w = Writer::with_capacity(48);
        w.put_raw(b"p2drm-coin-v1");
        w.put_raw(serial);
        w.put_u64(denomination);
        w.into_bytes()
    }

    /// Verifies the coin against the mint's denomination key.
    pub fn verify(&self, mint_key: &RsaPublicKey) -> bool {
        blind::verify_fdh(
            mint_key,
            &Self::message_bytes(&self.serial, self.denomination),
            &self.signature,
        )
        .is_ok()
    }
}

impl Encode for Coin {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.serial);
        w.put_u64(self.denomination);
        self.signature.encode(w);
    }
}

impl Decode for Coin {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(Coin {
            serial: r.get_raw(32)?.try_into().expect("fixed width"),
            denomination: r.get_u64()?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;
    use p2drm_crypto::rsa::RsaKeyPair;

    #[test]
    fn message_bytes_domain_separated() {
        let a = Coin::message_bytes(&[1; 32], 100);
        let b = Coin::message_bytes(&[1; 32], 200);
        let c = Coin::message_bytes(&[2; 32], 100);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with(b"p2drm-coin-v1"));
    }

    #[test]
    fn verify_rejects_forgery_and_wrong_key() {
        let mut rng = test_rng(90);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let other = RsaKeyPair::generate(512, &mut rng);
        // Forge by signing with the wrong primitive entirely.
        let serial = [9u8; 32];
        let msg = Coin::message_bytes(&serial, 100);
        let good = Coin {
            serial,
            denomination: 100,
            signature: RsaSignature::from_ubig(
                kp.raw_private(&p2drm_crypto::rsa::fdh(&msg, kp.public().modulus_len())),
            ),
        };
        assert!(good.verify(kp.public()));
        assert!(!good.verify(other.public()));

        let mut wrong_denom = good.clone();
        wrong_denom.denomination = 200;
        assert!(!wrong_denom.verify(kp.public()));
    }

    #[test]
    fn codec_roundtrip() {
        let mut rng = test_rng(91);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let serial = [3u8; 32];
        let msg = Coin::message_bytes(&serial, 500);
        let coin = Coin {
            serial,
            denomination: 500,
            signature: RsaSignature::from_ubig(
                kp.raw_private(&p2drm_crypto::rsa::fdh(&msg, kp.public().modulus_len())),
            ),
        };
        let bytes = p2drm_codec::to_bytes(&coin);
        let back: Coin = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, coin);
        assert!(back.verify(kp.public()));
    }
}
