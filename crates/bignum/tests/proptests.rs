//! Property-based tests for the arithmetic core.
//!
//! These are the backbone of trust in everything above: ring axioms,
//! division invariants, codec roundtrips, and agreement between the
//! Montgomery and plain exponentiation paths.

use p2drm_bignum::modring;
use p2drm_bignum::{multiexp, Mont, MontForm, UBig};
use proptest::prelude::*;

/// Strategy: arbitrary UBig up to ~256 bits from raw bytes.
fn ubig() -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|b| UBig::from_bytes_be(&b))
}

/// Strategy: nonzero UBig.
fn ubig_nonzero() -> impl Strategy<Value = UBig> {
    ubig().prop_map(|v| if v.is_zero() { UBig::one() } else { v })
}

/// Strategy: arbitrary UBig up to ~2560 bits, crossing the Karatsuba
/// threshold (32 limbs).
fn ubig_wide() -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u8>(), 0..320).prop_map(|b| UBig::from_bytes_be(&b))
}

/// Strategy: odd modulus >= 3.
fn odd_modulus() -> impl Strategy<Value = UBig> {
    ubig().prop_map(|v| {
        let mut m = v;
        if m.bit_len() < 2 {
            m = UBig::from_u64(3);
        }
        if m.is_even() {
            m = &m + &UBig::one();
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in ubig(), b in ubig()) {
        prop_assert_eq!((&a + &b).sub(&b), a);
    }

    #[test]
    fn mul_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn division_invariant(a in ubig(), b in ubig_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn bytes_roundtrip(a in ubig()) {
        prop_assert_eq!(UBig::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in ubig()) {
        prop_assert_eq!(UBig::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in ubig()) {
        prop_assert_eq!(UBig::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in ubig(), s in 0usize..130) {
        prop_assert_eq!(a.shl(s), &a * &UBig::one().shl(s));
        prop_assert_eq!(a.shr(s), &a / &UBig::one().shl(s));
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(), b in ubig_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn mont_matches_plain_mul(a in ubig(), b in ubig(), n in odd_modulus()) {
        let mont = Mont::new(&n).unwrap();
        prop_assert_eq!(mont.mul_mod(&a, &b), modring::mul_mod(&a, &b, &n));
    }

    #[test]
    fn mont_pow_matches_naive(a in ubig(), e in 0u64..2000, n in odd_modulus()) {
        let mont = Mont::new(&n).unwrap();
        let e = UBig::from_u64(e);
        prop_assert_eq!(mont.pow(&a, &e), a.pow_mod(&e, &n).unwrap());
    }

    #[test]
    fn mont_sqr_matches_mont_mul(a in ubig(), n in odd_modulus()) {
        let mont = Mont::new(&n).unwrap();
        let am = mont.to_mont(&a);
        prop_assert_eq!(mont.mont_sqr(&am), mont.mont_mul(&am, &am));
    }

    #[test]
    fn square_matches_non_self_mul(a in ubig_wide()) {
        // (a+1)(a-1) + 1 = a^2 goes through the ordinary unequal-operand
        // multiplication path, so this does not route through square().
        let via_mul = &(&(&a + &UBig::one()) * &a.checked_sub(&UBig::one()).unwrap_or_default())
            + &if a.is_zero() { UBig::zero() } else { UBig::one() };
        prop_assert_eq!(a.square(), via_mul);
    }

    #[test]
    fn fast_kernel_matches_reference_kernel(a in ubig(), e in ubig(), n in odd_modulus()) {
        let mont = Mont::new(&n).unwrap();
        prop_assert_eq!(mont.pow(&a, &e), mont.pow_reference(&a, &e));
    }

    #[test]
    fn pow_form_roundtrip_matches_pow(a in ubig(), e in ubig(), n in odd_modulus()) {
        let mont = Mont::new(&n).unwrap();
        let r = mont.from_form(&mont.pow_form(&mont.to_form(&a), &e));
        prop_assert_eq!(r, mont.pow(&a, &e));
    }

    #[test]
    fn bits_at_matches_per_bit_reads(a in ubig(), pos in 0usize..300, w in 1usize..33) {
        let mut expect = 0u64;
        for k in (0..w).rev() {
            expect = (expect << 1) | a.bit(pos + k) as u64;
        }
        prop_assert_eq!(a.bits_at(pos, w), expect);
    }

    #[test]
    fn inverse_is_inverse(a in ubig_nonzero(), n in odd_modulus()) {
        if let Ok(inv) = modring::inv_mod(&a, &n) {
            prop_assert_eq!(modring::mul_mod(&a, &inv, &n), UBig::one().rem(&n));
        }
    }

    #[test]
    fn sub_mod_inverts_add_mod(a in ubig(), b in ubig(), n in odd_modulus()) {
        let s = modring::add_mod(&a, &b, &n);
        prop_assert_eq!(modring::sub_mod(&s, &b, &n), a.rem(&n));
    }

    // --- multi-exponentiation equivalences ----------------------------

    #[test]
    fn straus_matches_iterated_pow_form(
        pairs in base_exp_pairs(2, 4),
        n in odd_modulus(),
    ) {
        let mont = Mont::new(&n).unwrap();
        let (bases, exps) = to_forms(&mont, &pairs);
        prop_assert_eq!(
            multiexp::straus(&mont, &bases, &exps),
            iterated_pow_form(&mont, &bases, &exps)
        );
    }

    #[test]
    fn pippenger_matches_straus(
        pairs in base_exp_pairs(2, 24),
        n in odd_modulus(),
    ) {
        // 2..=24 pairs straddles PIPPENGER_THRESHOLD, so both the
        // below-threshold and above-threshold widths are exercised.
        let mont = Mont::new(&n).unwrap();
        let (bases, exps) = to_forms(&mont, &pairs);
        prop_assert_eq!(
            multiexp::pippenger(&mont, &bases, &exps),
            multiexp::straus(&mont, &bases, &exps)
        );
    }

    #[test]
    fn multi_pow_matches_reference_kernel_product(
        pairs in base_exp_pairs(1, 20),
        n in odd_modulus(),
    ) {
        // The same product [`multiexp::multi_pow`] computes under the
        // process-wide Reference kernel knob, built here explicitly so
        // the property holds regardless of the global kernel state.
        let mont = Mont::new(&n).unwrap();
        let (bases, exps) = to_forms(&mont, &pairs);
        let mut reference = mont.one_form();
        for (base, exp) in bases.iter().zip(exps.iter()) {
            let p = mont.pow_reference(&mont.from_form(base), exp);
            reference = mont.form_mul(&reference, &mont.to_form(&p));
        }
        prop_assert_eq!(multiexp::multi_pow(&mont, &bases, &exps), reference);
    }
}

/// Strategy: between `min` and `max` (base, exponent) pairs, exponents up
/// to ~256 bits with zero and single-limb shapes included.
fn base_exp_pairs(min: usize, max: usize) -> impl Strategy<Value = Vec<(UBig, UBig)>> {
    proptest::collection::vec((ubig(), ubig()), min..max + 1)
}

/// Reduces raw pairs into Montgomery form inputs for the multiexp entry
/// points.
fn to_forms(mont: &Mont, pairs: &[(UBig, UBig)]) -> (Vec<MontForm>, Vec<UBig>) {
    pairs
        .iter()
        .map(|(b, e)| (mont.to_form(b), e.clone()))
        .unzip()
}

/// `Π baseᵢ^expᵢ` as independent [`Mont::pow_form`] calls — the baseline
/// every multiexp kernel must agree with.
fn iterated_pow_form(mont: &Mont, bases: &[MontForm], exps: &[UBig]) -> MontForm {
    let mut acc = mont.one_form();
    for (base, exp) in bases.iter().zip(exps.iter()) {
        acc = mont.form_mul(&acc, &mont.pow_form(base, exp));
    }
    acc
}
