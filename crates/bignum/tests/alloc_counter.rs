//! Counting-allocator regression test: `Mont::pow`'s square-and-multiply
//! main loop must perform **zero heap allocations** — every buffer (window
//! table, accumulator, scratch) is allocated once before the loop starts.
//!
//! The old kernel allocated a fresh `Vec` per Montgomery product (~5 per 4
//! exponent bits, i.e. ~1000 extra allocations when the exponent grows from
//! 256 to 1024 bits). With the allocation-free kernel the count difference
//! between a short and a long exponent is only the (slightly larger) window
//! table, independent of the loop trip count.
//!
//! The same discipline is pinned for the multi-exponentiation kernels:
//! Straus's shared squaring chain must not allocate per iteration, and
//! Pippenger's bucket storage is one flat allocation whose count is
//! independent of the batch size.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test
//! thread can inflate the process-wide allocation counter mid-measurement.

use p2drm_bignum::{multiexp, Mont, MontForm, UBig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: every method delegates directly to the `System` allocator,
// which upholds the `GlobalAlloc` contract; the only extra work is a
// relaxed counter bump, which neither allocates nor unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same `layout` is forwarded verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a prior `alloc` through this same
    // wrapper, so they satisfy `System.dealloc`'s requirements.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: `ptr`/`layout` come from a prior `alloc` through this same
    // wrapper; `new_size` is forwarded unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let v = f();
    (v, ALLOCS.load(Ordering::Relaxed) - before)
}

/// Deterministic pseudo-random limbs (no RNG dependency in this binary).
fn limbs(n: usize, mut seed: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(0xbf58476d1ce4e5b9);
            seed ^ (seed >> 31)
        })
        .collect()
}

#[test]
fn pow_main_loop_is_allocation_free() {
    // 1024-bit odd modulus with the top bit set.
    let mut n_limbs = limbs(16, 41);
    n_limbs[0] |= 1;
    n_limbs[15] |= 1 << 63;
    let n = UBig::from_limbs(n_limbs);
    let mont = Mont::new(&n).unwrap();
    let base = UBig::from_limbs(limbs(15, 97));
    let mut exp_short = UBig::from_limbs(limbs(4, 7)); // 256-bit exponent
    let mut exp_long = UBig::from_limbs(limbs(16, 11)); // 1024-bit exponent
    exp_short.set_bit(255);
    exp_long.set_bit(1023);

    // Warm-up: fault in lazy statics and allocator pools.
    let _ = mont.pow(&base, &exp_short);
    let _ = mont.pow(&base, &exp_long);

    let (r_short, a_short) = allocs_during(|| mont.pow(&base, &exp_short));
    let (r_long, a_long) = allocs_during(|| mont.pow(&base, &exp_long));

    // Sanity: results agree with the reference kernel.
    assert_eq!(r_short, mont.pow_reference(&base, &exp_short));
    assert_eq!(r_long, mont.pow_reference(&base, &exp_long));

    // Quadrupling the exponent length (and the loop trip count with it)
    // must not grow the allocation count beyond the window-table delta
    // (16 extra entries when the width steps from 4 to 5 bits).
    assert!(
        a_long <= a_short + 24,
        "main loop allocates: {a_short} allocs @256-bit exp vs {a_long} @1024-bit exp"
    );
    // Absolute bound: window table (<= 32 entries) + accumulator + scratch
    // + boundary conversions. The old kernel needed ~1300 here.
    assert!(
        a_long < 100,
        "pow allocates too much overall: {a_long} allocations"
    );

    // The reference kernel is the ablation baseline: it must still show
    // the per-iteration allocation behavior the fast kernel removed.
    let (_, ref_long) = allocs_during(|| mont.pow_reference(&base, &exp_long));
    assert!(
        ref_long > 4 * a_long,
        "reference kernel unexpectedly lean: {ref_long} vs fast {a_long}"
    );

    // ---- Straus: the shared squaring chain must be allocation-free ----
    // Same batch, short vs long exponents: quadrupling the loop trip
    // count may only add the window-table delta (wider windows), never
    // per-iteration allocations.
    let make_batch = |k: usize, exp_limbs: usize, top_bit: usize| {
        let bases: Vec<MontForm> = (0..k)
            .map(|i| mont.to_form(&UBig::from_limbs(limbs(15, 200 + i as u64))))
            .collect();
        let exps: Vec<UBig> = (0..k)
            .map(|i| {
                let mut e = UBig::from_limbs(limbs(exp_limbs, 300 + i as u64));
                e.set_bit(top_bit);
                e
            })
            .collect();
        (bases, exps)
    };
    let (bases4, exps4_short) = make_batch(4, 4, 255);
    let (_, exps4_long) = make_batch(4, 16, 1023);
    let _ = multiexp::straus(&mont, &bases4, &exps4_short); // warm-up
    let (rs, s_short) = allocs_during(|| multiexp::straus(&mont, &bases4, &exps4_short));
    let (rl, s_long) = allocs_during(|| multiexp::straus(&mont, &bases4, &exps4_long));
    assert_eq!(rs, iterated_pow(&mont, &bases4, &exps4_short));
    assert_eq!(rl, iterated_pow(&mont, &bases4, &exps4_long));
    assert!(
        s_long <= s_short + 24,
        "straus main loop allocates: {s_short} allocs @256-bit exps vs {s_long} @1024-bit exps"
    );

    // ---- Pippenger: bucket storage is one flat allocation per batch ----
    // Growing the batch 16 -> 64 must not grow the allocation count at
    // all: buckets, accumulator and scratch are sized by the window
    // width, not by the number of bases.
    let (bases16, exps16) = make_batch(16, 8, 511);
    let (bases64, exps64) = make_batch(64, 8, 511);
    let _ = multiexp::pippenger(&mont, &bases16, &exps16); // warm-up
    let (p16r, p16) = allocs_during(|| multiexp::pippenger(&mont, &bases16, &exps16));
    let (p64r, p64) = allocs_during(|| multiexp::pippenger(&mont, &bases64, &exps64));
    assert_eq!(p16r, iterated_pow(&mont, &bases16, &exps16));
    assert_eq!(p64r, iterated_pow(&mont, &bases64, &exps64));
    assert!(
        p64 <= p16 + 4,
        "pippenger allocations grow with the batch: {p16} allocs @16 bases vs {p64} @64 bases"
    );
}

/// `Π baseᵢ^expᵢ` via independent `pow_form` calls — correctness oracle
/// for the multiexp kernels above.
fn iterated_pow(mont: &Mont, bases: &[MontForm], exps: &[UBig]) -> MontForm {
    let mut acc = mont.one_form();
    for (b, e) in bases.iter().zip(exps.iter()) {
        acc = mont.form_mul(&acc, &mont.pow_form(b, e));
    }
    acc
}
