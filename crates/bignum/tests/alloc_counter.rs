//! Counting-allocator regression test: `Mont::pow`'s square-and-multiply
//! main loop must perform **zero heap allocations** — every buffer (window
//! table, accumulator, scratch) is allocated once before the loop starts.
//!
//! The old kernel allocated a fresh `Vec` per Montgomery product (~5 per 4
//! exponent bits, i.e. ~1000 extra allocations when the exponent grows from
//! 256 to 1024 bits). With the allocation-free kernel the count difference
//! between a short and a long exponent is only the (slightly larger) window
//! table, independent of the loop trip count.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test
//! thread can inflate the process-wide allocation counter mid-measurement.

use p2drm_bignum::{Mont, UBig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let v = f();
    (v, ALLOCS.load(Ordering::Relaxed) - before)
}

/// Deterministic pseudo-random limbs (no RNG dependency in this binary).
fn limbs(n: usize, mut seed: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(0xbf58476d1ce4e5b9);
            seed ^ (seed >> 31)
        })
        .collect()
}

#[test]
fn pow_main_loop_is_allocation_free() {
    // 1024-bit odd modulus with the top bit set.
    let mut n_limbs = limbs(16, 41);
    n_limbs[0] |= 1;
    n_limbs[15] |= 1 << 63;
    let n = UBig::from_limbs(n_limbs);
    let mont = Mont::new(&n).unwrap();
    let base = UBig::from_limbs(limbs(15, 97));
    let mut exp_short = UBig::from_limbs(limbs(4, 7)); // 256-bit exponent
    let mut exp_long = UBig::from_limbs(limbs(16, 11)); // 1024-bit exponent
    exp_short.set_bit(255);
    exp_long.set_bit(1023);

    // Warm-up: fault in lazy statics and allocator pools.
    let _ = mont.pow(&base, &exp_short);
    let _ = mont.pow(&base, &exp_long);

    let (r_short, a_short) = allocs_during(|| mont.pow(&base, &exp_short));
    let (r_long, a_long) = allocs_during(|| mont.pow(&base, &exp_long));

    // Sanity: results agree with the reference kernel.
    assert_eq!(r_short, mont.pow_reference(&base, &exp_short));
    assert_eq!(r_long, mont.pow_reference(&base, &exp_long));

    // Quadrupling the exponent length (and the loop trip count with it)
    // must not grow the allocation count beyond the window-table delta
    // (16 extra entries when the width steps from 4 to 5 bits).
    assert!(
        a_long <= a_short + 24,
        "main loop allocates: {a_short} allocs @256-bit exp vs {a_long} @1024-bit exp"
    );
    // Absolute bound: window table (<= 32 entries) + accumulator + scratch
    // + boundary conversions. The old kernel needed ~1300 here.
    assert!(
        a_long < 100,
        "pow allocates too much overall: {a_long} allocations"
    );

    // The reference kernel is the ablation baseline: it must still show
    // the per-iteration allocation behavior the fast kernel removed.
    let (_, ref_long) = allocs_during(|| mont.pow_reference(&base, &exp_long));
    assert!(
        ref_long > 4 * a_long,
        "reference kernel unexpectedly lean: {ref_long} vs fast {a_long}"
    );
}
