//! Montgomery reduction context (CIOS) for fast modular exponentiation.
//!
//! All RSA/ElGamal exponentiations in the workspace route through [`Mont`].
//! The context is built once per modulus and reused; conversion in and out of
//! Montgomery form happens at the boundary only — and callers that chain
//! several modular operations can stay in form across all of them with the
//! [`MontForm`] value type.
//!
//! # Kernel layers
//!
//! The hot path is built from two allocation-free primitives that write into
//! caller-provided buffers:
//!
//! * [`Mont::mont_mul_into`] — the CIOS product `a·b·R⁻¹ mod n`;
//! * [`Mont::mont_sqr_into`] — a dedicated squaring that halves the
//!   partial-product work by exploiting `a[i]·a[j] = a[j]·a[i]`, followed by
//!   a separate (SOS) Montgomery reduction.
//!
//! [`Mont::pow`] picks its window width from the exponent bit length, scans
//! exponent bits limb-wise, and performs **zero heap allocations in its
//! square-and-multiply main loop** (all buffers — the window table, the
//! accumulator, and the shared scratch — are allocated once up front; a
//! counting-allocator regression test in `tests/alloc_counter.rs` enforces
//! this). The pre-optimization kernel is kept callable as
//! [`Mont::pow_reference`] and can be selected process-wide with
//! [`set_kernel`] so experiments can report honest before/after numbers.

use crate::ubig::UBig;
use crate::BigError;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which exponentiation kernel [`Mont::pow`] (and the fixed-base paths in
/// `p2drm-crypto`) dispatch to. The default is [`Kernel::Fast`];
/// [`Kernel::Reference`] re-enables the pre-optimization kernel for A/B
/// comparison runs (experiment E11). Both kernels compute identical values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Allocation-free windowed kernel with dedicated squaring (default).
    Fast,
    /// The original 4-bit-window, per-bit-scanning, allocating kernel.
    Reference,
}

static KERNEL: AtomicU8 = AtomicU8::new(0);

/// Selects the process-wide exponentiation kernel (see [`Kernel`]).
pub fn set_kernel(k: Kernel) {
    KERNEL.store(
        match k {
            Kernel::Fast => 0,
            Kernel::Reference => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected exponentiation kernel.
pub fn kernel() -> Kernel {
    if KERNEL.load(Ordering::Relaxed) == 0 {
        Kernel::Fast
    } else {
        Kernel::Reference
    }
}

/// A value held in Montgomery form (`x·R mod n`) for some [`Mont`] context.
///
/// Produced by [`Mont::to_form`] and consumed by the `form_*` family of
/// methods, it lets a caller pay the to/from-form conversions once per
/// *computation* instead of once per *operation* — e.g. the RSA-CRT
/// recombination keeps `q⁻¹ mod p` in form permanently, turning what used
/// to be four Montgomery products per signature into one.
///
/// A `MontForm` is only meaningful with the context that created it; mixing
/// contexts of the same limb width produces garbage values (debug builds
/// catch width mismatches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontForm {
    limbs: Vec<u64>,
}

impl MontForm {
    /// The raw Montgomery-form limbs (little-endian, modulus width).
    #[inline]
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Consumes the value, returning the raw Montgomery-form limbs.
    #[inline]
    pub fn into_limbs(self) -> Vec<u64> {
        self.limbs
    }

    /// Wraps raw Montgomery-form limbs (caller asserts they came from the
    /// same context they will be used with).
    #[inline]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        MontForm { limbs }
    }
}

/// Montgomery arithmetic context for an odd modulus `n >= 3`.
#[derive(Clone, Debug)]
pub struct Mont {
    /// Modulus limbs (little-endian), length `s`.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64 s)`, used to enter Montgomery form.
    rr: Vec<u64>,
    /// `1` in Montgomery form (`R mod n`).
    one: Vec<u64>,
}

impl Mont {
    /// Builds a context for `modulus` (must be odd and >= 3).
    pub fn new(modulus: &UBig) -> Result<Self, BigError> {
        if modulus.is_even() || modulus.bit_len() < 2 {
            return Err(BigError::BadModulus);
        }
        let n = modulus.limbs().to_vec();
        let s = n.len();
        let n0inv = inv64(n[0]).wrapping_neg();
        // R^2 mod n computed as 2^(128 s) mod n via shifting.
        let rr_big = UBig::one().shl(128 * s).rem(modulus);
        let one_big = UBig::one().shl(64 * s).rem(modulus);
        Ok(Mont {
            rr: pad(rr_big.limbs(), s),
            one: pad(one_big.limbs(), s),
            n,
            n0inv,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> UBig {
        UBig::from_limbs(self.n.clone())
    }

    /// Number of limbs in the modulus.
    #[inline]
    pub fn limb_len(&self) -> usize {
        self.n.len()
    }

    /// Length of the scratch slice the `*_into` kernels require.
    #[inline]
    pub fn scratch_len(&self) -> usize {
        // mont_mul_into needs s + 2; mont_sqr_into needs 2 s.
        (2 * self.n.len()).max(self.n.len() + 2)
    }

    /// Allocates a scratch buffer sized for this context's `*_into`
    /// kernels — **empty** when the width dispatches to a fixed-width
    /// kernel (4/8/16/32 limbs), which keeps its state on the stack and
    /// never reads the scratch slice.
    pub fn alloc_scratch(&self) -> Vec<u64> {
        if has_fixed_kernel(self.n.len()) {
            Vec::new()
        } else {
            vec![0u64; self.scratch_len()]
        }
    }

    /// Reduces `x` modulo `n` if needed and pads to modulus width.
    fn reduce_pad(&self, x: &UBig) -> Vec<u64> {
        if x.bit_len() > 64 * self.n.len() || Self::geq(x.limbs(), &self.n) {
            pad(x.rem(&self.modulus()).limbs(), self.n.len())
        } else {
            pad(x.limbs(), self.n.len())
        }
    }

    /// Converts `x` (reduced mod n if needed) into Montgomery form.
    pub fn to_mont(&self, x: &UBig) -> Vec<u64> {
        let xm = self.reduce_pad(x);
        self.mont_mul(&xm, &self.rr)
    }

    /// Converts a Montgomery-form value back to the plain representative.
    pub fn from_mont(&self, xm: &[u64]) -> UBig {
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        UBig::from_limbs(self.mont_mul(xm, &one))
    }

    /// Enters Montgomery form as a [`MontForm`] value.
    pub fn to_form(&self, x: &UBig) -> MontForm {
        MontForm {
            limbs: self.to_mont(x),
        }
    }

    /// Leaves Montgomery form.
    pub fn from_form(&self, f: &MontForm) -> UBig {
        self.from_mont(&f.limbs)
    }

    /// `1` in Montgomery form.
    pub fn one_form(&self) -> MontForm {
        MontForm {
            limbs: self.one.clone(),
        }
    }

    /// Product of two Montgomery-form values, staying in form.
    pub fn form_mul(&self, a: &MontForm, b: &MontForm) -> MontForm {
        MontForm {
            limbs: self.mont_mul(&a.limbs, &b.limbs),
        }
    }

    /// Square of a Montgomery-form value, staying in form.
    pub fn form_sqr(&self, a: &MontForm) -> MontForm {
        MontForm {
            limbs: self.mont_sqr(&a.limbs),
        }
    }

    /// `a_plain · x mod n` where `a` is held in Montgomery form: a single
    /// Montgomery product (`mont_mul(a·R, x) = a·x`), with both the entry
    /// and exit conversions cancelled. This is the `MontForm` replacement
    /// for [`Mont::mul_mod`] when one factor is a long-lived constant
    /// (e.g. `q⁻¹ mod p` in the RSA CRT).
    pub fn form_mul_plain(&self, a: &MontForm, x: &UBig) -> UBig {
        debug_assert_eq!(a.limbs.len(), self.n.len());
        let xm = self.reduce_pad(x);
        UBig::from_limbs(self.mont_mul(&a.limbs, &xm))
    }

    fn geq(a: &[u64], n: &[u64]) -> bool {
        if a.len() != n.len() {
            return a.len() > n.len();
        }
        for i in (0..n.len()).rev() {
            if a[i] != n[i] {
                return a[i] > n[i];
            }
        }
        true // equal counts as >=
    }

    /// Montgomery product `a * b * R^{-1} mod n` (CIOS), allocating the
    /// result. Prefer [`Mont::mont_mul_into`] on hot paths.
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.n.len()];
        let mut scratch = self.alloc_scratch();
        self.mont_mul_into(a, b, &mut out, &mut scratch);
        out
    }

    /// Montgomery square `a * a * R^{-1} mod n`, allocating the result.
    /// Prefer [`Mont::mont_sqr_into`] on hot paths.
    pub fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.n.len()];
        let mut scratch = self.alloc_scratch();
        self.mont_sqr_into(a, &mut out, &mut scratch);
        out
    }

    /// Allocation-free CIOS Montgomery product: `out = a * b * R^{-1} mod n`.
    ///
    /// `a` and `b` must be modulus-width reduced limbs; `out` must be
    /// modulus-width and distinct from `a`/`b`; `scratch` must be at least
    /// [`Mont::scratch_len`] long.
    ///
    /// The common widths (4/8/16/32 limbs — every RSA/ElGamal size in the
    /// workspace, including the CRT primes) dispatch to monomorphized
    /// fixed-width kernels whose loops fully unroll and whose state lives
    /// in stack arrays (no bounds checks, no scratch traffic); other
    /// widths fall back to the dynamic-length loop.
    pub fn mont_mul_into(&self, a: &[u64], b: &[u64], out: &mut [u64], scratch: &mut [u64]) {
        let s = self.n.len();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        debug_assert_eq!(out.len(), s);
        match s {
            4 => return fixed::mul4(arr(&self.n), self.n0inv, arr(a), arr(b), arr_mut(out)),
            8 => return fixed::mul8(arr(&self.n), self.n0inv, arr(a), arr(b), arr_mut(out)),
            16 => return fixed::mul16(arr(&self.n), self.n0inv, arr(a), arr(b), arr_mut(out)),
            32 => return fixed::mul32(arr(&self.n), self.n0inv, arr(a), arr(b), arr_mut(out)),
            _ => {}
        }
        self.mont_mul_dyn(a, b, out, scratch)
    }

    /// Dynamic-width CIOS product (uncommon widths).
    #[allow(clippy::needless_range_loop)] // t and n are indexed in lockstep
    fn mont_mul_dyn(&self, a: &[u64], b: &[u64], out: &mut [u64], scratch: &mut [u64]) {
        let s = self.n.len();
        let t = &mut scratch[..s + 2];
        t.fill(0);
        for &bi in b.iter() {
            // t += a * b[i]
            let mut carry: u128 = 0;
            for j in 0..s {
                let cur = t[j] as u128 + a[j] as u128 * bi as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;

            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0inv);
            let mut carry: u128 = (t[0] as u128 + m as u128 * self.n[0] as u128) >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            let cur2 = t[s + 1] as u128 + (cur >> 64);
            t[s] = cur2 as u64;
            t[s + 1] = 0;
        }
        // Conditional final subtraction brings t into [0, n).
        let extra = t[s];
        out.copy_from_slice(&t[..s]);
        reduce_once(out, &self.n, extra);
    }

    /// Allocation-free dedicated Montgomery squaring:
    /// `out = a * a * R^{-1} mod n`.
    ///
    /// Computes the full square with the symmetric-product optimization
    /// (each cross product `a[i]·a[j]`, `i < j`, is formed once and
    /// doubled, roughly halving the multiplication count versus
    /// [`Mont::mont_mul_into`] on the same operands), then applies a
    /// separate (SOS) Montgomery reduction. Common widths dispatch to the
    /// monomorphized fixed-width kernels; requirements as for
    /// [`Mont::mont_mul_into`].
    pub fn mont_sqr_into(&self, a: &[u64], out: &mut [u64], scratch: &mut [u64]) {
        let s = self.n.len();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(out.len(), s);
        match s {
            4 => return fixed::sqr4(arr(&self.n), self.n0inv, arr(a), arr_mut(out)),
            8 => return fixed::sqr8(arr(&self.n), self.n0inv, arr(a), arr_mut(out)),
            16 => return fixed::sqr16(arr(&self.n), self.n0inv, arr(a), arr_mut(out)),
            32 => return fixed::sqr32(arr(&self.n), self.n0inv, arr(a), arr_mut(out)),
            _ => {}
        }
        self.mont_sqr_dyn(a, out, scratch)
    }

    /// Dynamic-width SOS squaring (uncommon widths).
    #[allow(clippy::needless_range_loop)] // t, a and n are indexed in lockstep
    fn mont_sqr_dyn(&self, a: &[u64], out: &mut [u64], scratch: &mut [u64]) {
        let s = self.n.len();
        let t = &mut scratch[..2 * s];
        t.fill(0);

        // Cross products a[i]*a[j] for i < j.
        for i in 0..s {
            let ai = a[i];
            if ai == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in (i + 1)..s {
                let cur = t[i + j] as u128 + ai as u128 * a[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Position i + s is untouched by earlier iterations.
            t[i + s] = carry as u64;
        }

        // Double the cross products (they occur twice in the square).
        let mut dcarry = 0u64;
        for limb in t.iter_mut() {
            let v = *limb;
            *limb = (v << 1) | dcarry;
            dcarry = v >> 63;
        }
        debug_assert_eq!(dcarry, 0, "2 * cross products < a^2 < R^2");

        // Add the diagonal terms a[i]^2 at position 2i.
        let mut carry = 0u64;
        for i in 0..s {
            let sq = a[i] as u128 * a[i] as u128;
            let cur = t[2 * i] as u128 + (sq as u64) as u128 + carry as u128;
            t[2 * i] = cur as u64;
            let cur2 = t[2 * i + 1] as u128 + (sq >> 64) + (cur >> 64);
            t[2 * i + 1] = cur2 as u64;
            carry = (cur2 >> 64) as u64;
        }
        debug_assert_eq!(carry, 0, "a^2 fits in 2s limbs");

        // Separate Montgomery reduction (SOS): fold in m_i * n limb by
        // limb. Row i's final carry lands in cell i+s; any ripple beyond
        // it targets cell i+s+1, which is exactly the next row's final
        // cell — one `pending` register replaces a propagation loop.
        let mut pending = 0u64;
        for i in 0..s {
            let m = t[i].wrapping_mul(self.n0inv);
            let mut carry: u128 = 0;
            for j in 0..s {
                let cur = t[i + j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[i + s] as u128 + carry + pending as u128;
            t[i + s] = cur as u64;
            pending = (cur >> 64) as u64;
        }
        // Result = t[s..2s] + pending * 2^(64 s), conditionally minus n.
        out.copy_from_slice(&t[s..2 * s]);
        reduce_once(out, &self.n, pending);
    }

    /// `base^exp mod n`. Dispatches to the kernel selected by
    /// [`set_kernel`]: the allocation-free windowed kernel by default, or
    /// the pre-optimization kernel ([`Mont::pow_reference`]) when
    /// [`Kernel::Reference`] is active.
    pub fn pow(&self, base: &UBig, exp: &UBig) -> UBig {
        if kernel() == Kernel::Reference {
            return self.pow_reference(base, exp);
        }
        if exp.is_zero() {
            return UBig::one().rem(&self.modulus());
        }
        if let Some(e) = exp.to_u64() {
            return self.pow_u64(base, e);
        }
        self.from_form(&self.pow_form(&self.to_form(base), exp))
    }

    /// `base^exp mod n` for machine-word exponents: plain left-to-right
    /// square-and-multiply with no window table. For sparse exponents such
    /// as the RSA verification exponent `e = 65537` (two set bits) this is
    /// the fastest shape: 16 squarings and one multiplication, with zero
    /// allocations in the loop.
    pub fn pow_u64(&self, base: &UBig, exp: u64) -> UBig {
        if kernel() == Kernel::Reference {
            return self.pow_reference(base, &UBig::from_u64(exp));
        }
        if exp == 0 {
            return UBig::one().rem(&self.modulus());
        }
        let s = self.n.len();
        let bm = self.to_mont(base);
        let mut acc = bm.clone();
        let mut tmp = vec![0u64; s];
        let mut scratch = self.alloc_scratch();
        let bits = 64 - exp.leading_zeros() as usize;
        for i in (0..bits - 1).rev() {
            self.mont_sqr_into(&acc, &mut tmp, &mut scratch);
            std::mem::swap(&mut acc, &mut tmp);
            if (exp >> i) & 1 == 1 {
                self.mont_mul_into(&acc, &bm, &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        self.from_mont(&acc)
    }

    /// `base^exp` entirely in Montgomery form: fixed-window
    /// square-and-multiply with the window width chosen from the exponent
    /// bit length, limb-wise window extraction (no per-bit [`UBig::bit`]
    /// calls), dedicated squarings, and zero heap allocations in the main
    /// loop (table, accumulator and scratch are allocated once up front).
    pub fn pow_form(&self, base: &MontForm, exp: &UBig) -> MontForm {
        // lint: secret(exp)
        let s = self.n.len();
        debug_assert_eq!(base.limbs.len(), s);
        // lint: public(zero-ness and bit length of the exponent are key-size parameters)
        if exp.is_zero() {
            return self.one_form();
        }
        let bits = exp.bit_len();
        let w = window_bits(bits);
        let tsize = 1usize << w;
        let mut scratch = self.alloc_scratch();
        // table[d] = base^d in Montgomery form.
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(tsize);
        table.push(self.one.clone());
        table.push(base.limbs.clone());
        for i in 2..tsize {
            let mut next = vec![0u64; s];
            self.mont_mul_into(&table[i - 1], &base.limbs, &mut next, &mut scratch);
            table.push(next);
        }
        let nwin = bits.div_ceil(w);
        // The top window contains the exponent's top set bit, so the
        // accumulator starts from a table entry (never from 1).
        let mut acc = table[exp.bits_at((nwin - 1) * w, w) as usize].clone();
        let mut tmp = vec![0u64; s];
        for win in (0..nwin - 1).rev() {
            for _ in 0..w {
                self.mont_sqr_into(&acc, &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let d = exp.bits_at(win * w, w) as usize;
            if d != 0 {
                self.mont_mul_into(&acc, &table[d], &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        MontForm { limbs: acc }
    }

    /// The pre-optimization exponentiation kernel: fixed 4-bit window,
    /// per-bit exponent scanning, one heap allocation per Montgomery
    /// product. Kept callable so experiment E11 can measure the new kernel
    /// against it on the same box; selectable process-wide via
    /// [`set_kernel`]`(`[`Kernel::Reference`]`)`.
    pub fn pow_reference(&self, base: &UBig, exp: &UBig) -> UBig {
        // lint: secret(exp)
        // lint: public(zero-ness and bit length of the exponent are key-size parameters)
        if exp.is_zero() {
            return UBig::one().rem(&self.modulus());
        }
        let bm = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one.clone());
        table.push(bm.clone());
        for d in 2..16 {
            let prev: &Vec<u64> = &table[d - 1];
            table.push(self.mont_mul_ref(prev, &bm));
        }
        let bits = exp.bit_len();
        let mut acc = self.one.clone();
        let mut started = false;
        // Process 4 bits at a time from the most significant end.
        let top_window = bits.div_ceil(4) * 4;
        let mut i = top_window;
        // lint: public(loop bound is the exponent bit length, a public key-size parameter)
        while i >= 4 {
            i -= 4;
            let mut w = 0usize;
            for k in (0..4).rev() {
                w = (w << 1) | exp.bit(i + k) as usize;
            }
            if started {
                acc = self.mont_mul_ref(&acc, &acc);
                acc = self.mont_mul_ref(&acc, &acc);
                acc = self.mont_mul_ref(&acc, &acc);
                acc = self.mont_mul_ref(&acc, &acc);
                if w != 0 {
                    acc = self.mont_mul_ref(&acc, &table[w]);
                }
            } else if w != 0 {
                acc = table[w].clone();
                started = true;
            }
        }
        self.from_mont(&acc)
    }

    /// The original allocating CIOS product (one fresh buffer per call),
    /// preserved verbatim as the building block of [`Mont::pow_reference`].
    #[allow(clippy::needless_range_loop)] // t and n are indexed in lockstep
    fn mont_mul_ref(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n.len();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        let mut t = vec![0u64; s + 2];
        for &bi in b.iter() {
            // t += a * b[i]
            let mut carry: u128 = 0;
            for j in 0..s {
                let cur = t[j] as u128 + a[j] as u128 * bi as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;

            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0inv);
            let mut carry: u128 = (t[0] as u128 + m as u128 * self.n[0] as u128) >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            let cur2 = t[s + 1] as u128 + (cur >> 64);
            t[s] = cur2 as u64;
            t[s + 1] = 0;
        }
        t.truncate(s + 1);
        // Conditional final subtraction brings t into [0, n).
        if t[s] != 0 || Self::geq(&t[..s], &self.n) {
            let mut borrow = 0u64;
            for j in 0..s {
                let (d1, b1) = t[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                t[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            t[s] = t[s].wrapping_sub(borrow);
        }
        t.truncate(s);
        t
    }

    /// Modular multiplication `a * b mod n` through Montgomery form.
    ///
    /// Uses the identity `mont_mul(a·R, b) = a·b mod n`: only one operand
    /// is converted into form and no exit conversion is needed — two
    /// Montgomery products total instead of the four a naive
    /// enter-multiply-exit sequence costs.
    pub fn mul_mod(&self, a: &UBig, b: &UBig) -> UBig {
        let am = self.to_mont(a);
        let bm = self.reduce_pad(b);
        UBig::from_limbs(self.mont_mul(&am, &bm))
    }
}

/// True when width `s` dispatches to a monomorphized fixed-width kernel
/// (which keeps all state on the stack and ignores the scratch slice).
#[inline(always)]
fn has_fixed_kernel(s: usize) -> bool {
    matches!(s, 4 | 8 | 16 | 32)
}

/// Reinterprets a slice of known length as a fixed-size array reference.
#[inline(always)]
fn arr<const S: usize>(s: &[u64]) -> &[u64; S] {
    s.try_into().expect("width checked by dispatch")
}

/// Mutable variant of [`arr`].
#[inline(always)]
fn arr_mut<const S: usize>(s: &mut [u64]) -> &mut [u64; S] {
    s.try_into().expect("width checked by dispatch")
}

/// Monomorphized fixed-width Montgomery kernels. Each width gets its own
/// copy of the CIOS product and SOS squaring with every buffer a stack
/// array of literal size: the compiler unrolls the loops, elides all
/// bounds checks and keeps carries in registers — which is worth 2-3× at
/// the small widths the RSA CRT runs at (4 limbs for 512-bit keys).
/// Widths are generated for 4/8/16/32 limbs (256/512/1024/2048 bits).
mod fixed {
    macro_rules! fixed_kernels {
        ($mul:ident, $sqr:ident, $s:literal) => {
            /// CIOS product at width `$s` (see `Mont::mont_mul_into`).
            #[inline]
            pub(super) fn $mul(
                n: &[u64; $s],
                n0inv: u64,
                a: &[u64; $s],
                b: &[u64; $s],
                out: &mut [u64; $s],
            ) {
                const S: usize = $s;
                let mut t = [0u64; S];
                let mut t_hi = 0u64; // limb S of the running sum
                for &bi in b.iter() {
                    // t += a * b[i]
                    let mut carry: u128 = 0;
                    for j in 0..S {
                        let cur = t[j] as u128 + a[j] as u128 * bi as u128 + carry;
                        t[j] = cur as u64;
                        carry = cur >> 64;
                    }
                    let cur = t_hi as u128 + carry;
                    t_hi = cur as u64;
                    let t_hi2 = (cur >> 64) as u64; // limb S+1

                    // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
                    let m = t[0].wrapping_mul(n0inv);
                    let mut carry: u128 = (t[0] as u128 + m as u128 * n[0] as u128) >> 64;
                    for j in 1..S {
                        let cur = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                        t[j - 1] = cur as u64;
                        carry = cur >> 64;
                    }
                    let cur = t_hi as u128 + carry;
                    t[S - 1] = cur as u64;
                    t_hi = t_hi2.wrapping_add((cur >> 64) as u64);
                }
                super::reduce_once(&mut t, n, t_hi);
                *out = t;
            }

            /// SOS squaring at width `$s` (see `Mont::mont_sqr_into`).
            #[inline]
            pub(super) fn $sqr(n: &[u64; $s], n0inv: u64, a: &[u64; $s], out: &mut [u64; $s]) {
                const S: usize = $s;
                let mut t = [0u64; 2 * $s];
                // Cross products a[i]*a[j] for i < j.
                for i in 0..S {
                    let ai = a[i];
                    let mut carry: u128 = 0;
                    for j in (i + 1)..S {
                        let cur = t[i + j] as u128 + ai as u128 * a[j] as u128 + carry;
                        t[i + j] = cur as u64;
                        carry = cur >> 64;
                    }
                    t[i + S] = carry as u64;
                }
                // Double (cross products occur twice), then add diagonals.
                let mut dcarry = 0u64;
                for limb in t.iter_mut() {
                    let v = *limb;
                    *limb = (v << 1) | dcarry;
                    dcarry = v >> 63;
                }
                let mut carry = 0u64;
                for i in 0..S {
                    let sq = a[i] as u128 * a[i] as u128;
                    let cur = t[2 * i] as u128 + (sq as u64) as u128 + carry as u128;
                    t[2 * i] = cur as u64;
                    let cur2 = t[2 * i + 1] as u128 + (sq >> 64) + (cur >> 64);
                    t[2 * i + 1] = cur2 as u64;
                    carry = (cur2 >> 64) as u64;
                }
                // Montgomery reduction (SOS). Row i's final carry lands in
                // cell i+S; any ripple beyond it targets cell i+S+1, which
                // is exactly the *next* row's final cell — so one `pending`
                // register replaces a propagation loop.
                let mut pending = 0u64;
                for i in 0..S {
                    let m = t[i].wrapping_mul(n0inv);
                    let mut carry: u128 = 0;
                    for j in 0..S {
                        let cur = t[i + j] as u128 + m as u128 * n[j] as u128 + carry;
                        t[i + j] = cur as u64;
                        carry = cur >> 64;
                    }
                    let cur = t[i + S] as u128 + carry + pending as u128;
                    t[i + S] = cur as u64;
                    pending = (cur >> 64) as u64;
                }
                out.copy_from_slice(&t[S..2 * S]);
                super::reduce_once(out, n, pending);
            }
        };
    }

    fixed_kernels!(mul4, sqr4, 4);
    fixed_kernels!(mul8, sqr8, 8);
    fixed_kernels!(mul16, sqr16, 16);
    fixed_kernels!(mul32, sqr32, 32);
}

/// Brings `t + extra·2^(64·len)` into `[0, n)` given it is `< 2n`:
/// conditionally subtracts `n` once.
#[inline(always)]
fn reduce_once(t: &mut [u64], n: &[u64], extra: u64) {
    let needs = extra != 0 || {
        // t >= n?
        let mut ge = true;
        for i in (0..n.len()).rev() {
            if t[i] != n[i] {
                ge = t[i] > n[i];
                break;
            }
        }
        ge
    };
    if needs {
        let mut borrow = 0u64;
        for (tj, &nj) in t.iter_mut().zip(n.iter()) {
            let (d1, b1) = tj.overflowing_sub(nj);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *tj = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(extra.wrapping_sub(borrow), 0, "result must be < n");
    }
}

/// Window width for a fixed-window exponentiation of `bits`-bit exponents,
/// minimizing squarings + multiplications (table build included). Shared
/// with the multi-exponentiation module: in a Straus interleaving the
/// squarings are amortized across bases but the per-base table and
/// multiplication counts match the single-base case, so the same width is
/// (near-)optimal there too.
pub(crate) fn window_bits(bits: usize) -> usize {
    if bits <= 16 {
        1
    } else if bits <= 48 {
        2
    } else if bits <= 144 {
        3
    } else if bits <= 400 {
        4
    } else if bits <= 1024 {
        5
    } else {
        6
    }
}

/// Inverse of an odd `x` modulo 2^64 (Newton iteration, 6 steps).
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

fn pad(limbs: &[u64], len: usize) -> Vec<u64> {
    let mut v = limbs.to_vec();
    v.resize(len, 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_tiny_modulus() {
        assert!(Mont::new(&UBig::from_u64(10)).is_err());
        assert!(Mont::new(&UBig::from_u64(0)).is_err());
        assert!(Mont::new(&UBig::from_u64(1)).is_err());
        assert!(Mont::new(&UBig::from_u64(3)).is_ok());
    }

    #[test]
    fn inv64_is_inverse() {
        for x in [1u64, 3, 5, 0xdeadbeefdeadbeef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv64(x)), 1);
        }
    }

    #[test]
    fn roundtrip_mont_form() {
        let m = Mont::new(&UBig::from_u64(1_000_000_007)).unwrap();
        for v in [0u64, 1, 2, 999, 1_000_000_006] {
            let x = UBig::from_u64(v);
            assert_eq!(m.from_mont(&m.to_mont(&x)), x);
            assert_eq!(m.from_form(&m.to_form(&x)), x);
        }
    }

    #[test]
    fn to_mont_reduces_large_inputs() {
        let m = Mont::new(&UBig::from_u64(97)).unwrap();
        let x = UBig::from_u64(97 * 5 + 13);
        assert_eq!(m.from_mont(&m.to_mont(&x)).to_u64(), Some(13));
    }

    #[test]
    fn mul_mod_matches_plain() {
        let n = UBig::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let m = Mont::new(&n).unwrap();
        let a = UBig::from_hex("deadbeefcafebabe112233445566").unwrap();
        let b = UBig::from_hex("aabbccddeeff00112233445566778899a").unwrap();
        let expect = (&a * &b).rem(&n);
        assert_eq!(m.mul_mod(&a, &b), expect);
    }

    #[test]
    fn mont_sqr_matches_mont_mul_self() {
        let n = UBig::from_hex("c2446bf4ccd64d8b34a8a8f4e4ab7d1bb1e2f7c8d9a0b1c2d3e4f5a6b7c8d9e1")
            .unwrap();
        let m = Mont::new(&n).unwrap();
        for seed in 1u64..20 {
            let a = UBig::from_u64(seed)
                .mul_u64(0x9e3779b97f4a7c15)
                .pow_mod(&UBig::from_u64(3 + seed), &n)
                .unwrap();
            let am = m.to_mont(&a);
            assert_eq!(m.mont_sqr(&am), m.mont_mul(&am, &am), "seed={seed}");
        }
    }

    #[test]
    fn mont_sqr_single_limb_modulus() {
        let m = Mont::new(&UBig::from_u64(1_000_000_007)).unwrap();
        for v in [0u64, 1, 2, 999_999_999, 1_000_000_006] {
            let am = m.to_mont(&UBig::from_u64(v));
            assert_eq!(m.mont_sqr(&am), m.mont_mul(&am, &am), "v={v}");
        }
    }

    #[test]
    fn form_ops_match_plain_arithmetic() {
        let n = UBig::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let m = Mont::new(&n).unwrap();
        let a = UBig::from_hex("deadbeefcafebabe112233445566").unwrap();
        let b = UBig::from_hex("aabbccddeeff00112233445566778899a").unwrap();
        let (af, bf) = (m.to_form(&a), m.to_form(&b));
        assert_eq!(m.from_form(&m.form_mul(&af, &bf)), (&a * &b).rem(&n));
        assert_eq!(m.from_form(&m.form_sqr(&af)), (&a * &a).rem(&n));
        assert_eq!(m.form_mul_plain(&af, &b), (&a * &b).rem(&n));
        assert_eq!(m.from_form(&m.one_form()), UBig::one());
    }

    #[test]
    fn pow_matches_naive_small() {
        let n = UBig::from_u64(1_000_000_007);
        let m = Mont::new(&n).unwrap();
        for (b, e) in [(2u64, 10u64), (3, 0), (7, 1), (31337, 65537), (5, 123456)] {
            let expect = UBig::from_u64(b).pow_mod(&UBig::from_u64(e), &n).unwrap();
            assert_eq!(
                m.pow(&UBig::from_u64(b), &UBig::from_u64(e)),
                expect,
                "b={b} e={e}"
            );
            assert_eq!(m.pow_u64(&UBig::from_u64(b), e), expect, "b={b} e={e}");
            assert_eq!(
                m.pow_reference(&UBig::from_u64(b), &UBig::from_u64(e)),
                expect,
                "b={b} e={e} (reference)"
            );
        }
    }

    #[test]
    fn pow_matches_naive_multi_limb() {
        let n = UBig::from_hex("c2446bf4ccd64d8b34a8a8f4e4ab7d1bb1e2f7c8d9a0b1c2d3e4f5a6b7c8d9e1")
            .unwrap(); // odd 256-bit
        let m = Mont::new(&n).unwrap();
        let b = UBig::from_hex("123456789abcdef0fedcba9876543210ffeeddccbbaa9988").unwrap();
        let e = UBig::from_u64(65537);
        assert_eq!(m.pow(&b, &e), b.pow_mod(&e, &n).unwrap());
        assert_eq!(m.pow_reference(&b, &e), b.pow_mod(&e, &n).unwrap());
    }

    #[test]
    fn pow_long_exponents_match_reference_kernel() {
        let n = UBig::from_hex("c2446bf4ccd64d8b34a8a8f4e4ab7d1bb1e2f7c8d9a0b1c2d3e4f5a6b7c8d9e1")
            .unwrap();
        let m = Mont::new(&n).unwrap();
        let b = UBig::from_hex("123456789abcdef0fedcba9876543210ffeeddccbbaa9988").unwrap();
        // Exponents spanning several window widths, including runs of
        // zero windows and a full-width exponent.
        for e_hex in [
            "10001",
            "ffffffff",
            "8000000000000000000000000001",
            "c2446bf4ccd64d8b34a8a8f4e4ab7d1bb1e2f7c8d9a0b1c2d3e4f5a6b7c8d9e0",
        ] {
            let e = UBig::from_hex(e_hex).unwrap();
            assert_eq!(m.pow(&b, &e), m.pow_reference(&b, &e), "e={e_hex}");
        }
    }

    #[test]
    fn kernel_knob_switches_and_agrees() {
        let n = UBig::from_u64(1_000_000_007);
        let m = Mont::new(&n).unwrap();
        let b = UBig::from_u64(31337);
        let e = UBig::from_u64(65537);
        assert_eq!(kernel(), Kernel::Fast);
        let fast = m.pow(&b, &e);
        set_kernel(Kernel::Reference);
        assert_eq!(kernel(), Kernel::Reference);
        let reference = m.pow(&b, &e);
        set_kernel(Kernel::Fast);
        assert_eq!(fast, reference);
    }

    #[test]
    fn pow_edge_exponents() {
        let n = UBig::from_u64(101);
        let m = Mont::new(&n).unwrap();
        // x^0 = 1
        assert!(m.pow(&UBig::from_u64(7), &UBig::zero()).is_one());
        assert!(m.pow_u64(&UBig::from_u64(7), 0).is_one());
        // 0^e = 0 for e > 0
        assert!(m.pow(&UBig::zero(), &UBig::from_u64(9)).is_zero());
        // x^1 = x
        assert_eq!(m.pow(&UBig::from_u64(42), &UBig::one()).to_u64(), Some(42));
    }

    #[test]
    fn fermat_little_theorem_512bit() {
        // p = 2^512 - 569 skips: use a known 512-bit prime written in hex.
        // This one is 2^255 - 19 extended -- instead use a verified small one:
        // p = 2^127 - 1 is a Mersenne prime.
        let p = UBig::one().shl(127).sub(&UBig::one());
        let m = Mont::new(&p).unwrap();
        let a = UBig::from_u64(0x1234_5678_9abc_def1);
        let r = m.pow(&a, &p.sub(&UBig::one()));
        assert!(r.is_one());
    }
}
