//! Montgomery reduction context (CIOS) for fast modular exponentiation.
//!
//! All RSA/ElGamal exponentiations in the workspace route through [`Mont`].
//! The context is built once per modulus and reused; conversion in and out of
//! Montgomery form happens at the boundary only.

use crate::ubig::UBig;
use crate::BigError;

/// Montgomery arithmetic context for an odd modulus `n >= 3`.
#[derive(Clone, Debug)]
pub struct Mont {
    /// Modulus limbs (little-endian), length `s`.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64 s)`, used to enter Montgomery form.
    rr: Vec<u64>,
    /// `1` in Montgomery form (`R mod n`).
    one: Vec<u64>,
}

impl Mont {
    /// Builds a context for `modulus` (must be odd and >= 3).
    pub fn new(modulus: &UBig) -> Result<Self, BigError> {
        if modulus.is_even() || modulus.bit_len() < 2 {
            return Err(BigError::BadModulus);
        }
        let n = modulus.limbs().to_vec();
        let s = n.len();
        let n0inv = inv64(n[0]).wrapping_neg();
        // R^2 mod n computed as 2^(128 s) mod n via shifting.
        let rr_big = UBig::one().shl(128 * s).rem(modulus);
        let one_big = UBig::one().shl(64 * s).rem(modulus);
        Ok(Mont {
            rr: pad(rr_big.limbs(), s),
            one: pad(one_big.limbs(), s),
            n,
            n0inv,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> UBig {
        UBig::from_limbs(self.n.clone())
    }

    /// Number of limbs in the modulus.
    #[inline]
    pub fn limb_len(&self) -> usize {
        self.n.len()
    }

    /// Converts `x` (reduced mod n if needed) into Montgomery form.
    pub fn to_mont(&self, x: &UBig) -> Vec<u64> {
        let reduced = if x.bit_len() > 64 * self.n.len() || Self::geq(x.limbs(), &self.n) {
            x.rem(&self.modulus())
        } else {
            x.clone()
        };
        let xm = pad(reduced.limbs(), self.n.len());
        self.mont_mul(&xm, &self.rr)
    }

    /// Converts a Montgomery-form value back to the plain representative.
    pub fn from_mont(&self, xm: &[u64]) -> UBig {
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        UBig::from_limbs(self.mont_mul(xm, &one))
    }

    fn geq(a: &[u64], n: &[u64]) -> bool {
        if a.len() != n.len() {
            return a.len() > n.len();
        }
        for i in (0..n.len()).rev() {
            if a[i] != n[i] {
                return a[i] > n[i];
            }
        }
        true // equal counts as >=
    }

    /// Montgomery product `a * b * R^{-1} mod n` (CIOS).
    #[allow(clippy::needless_range_loop)] // t and n are indexed in lockstep
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n.len();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        let mut t = vec![0u64; s + 2];
        for &bi in b.iter() {
            // t += a * b[i]
            let mut carry: u128 = 0;
            for j in 0..s {
                let cur = t[j] as u128 + a[j] as u128 * bi as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;

            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0inv);
            let mut carry: u128 = (t[0] as u128 + m as u128 * self.n[0] as u128) >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            let cur2 = t[s + 1] as u128 + (cur >> 64);
            t[s] = cur2 as u64;
            t[s + 1] = 0;
        }
        t.truncate(s + 1);
        // Conditional final subtraction brings t into [0, n).
        if t[s] != 0 || Self::geq(&t[..s], &self.n) {
            let mut borrow = 0u64;
            for j in 0..s {
                let (d1, b1) = t[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                t[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            t[s] = t[s].wrapping_sub(borrow);
        }
        t.truncate(s);
        t
    }

    /// `base^exp mod n` via left-to-right square-and-multiply with a 4-bit
    /// window.
    pub fn pow(&self, base: &UBig, exp: &UBig) -> UBig {
        if exp.is_zero() {
            return UBig::one().rem(&self.modulus());
        }
        let bm = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one.clone());
        table.push(bm.clone());
        for i in 2..16 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &bm));
        }
        let bits = exp.bit_len();
        let mut acc = self.one.clone();
        let mut started = false;
        // Process 4 bits at a time from the most significant end.
        let top_window = bits.div_ceil(4) * 4;
        let mut i = top_window;
        while i >= 4 {
            i -= 4;
            let mut w = 0usize;
            for k in (0..4).rev() {
                w = (w << 1) | exp.bit(i + k) as usize;
            }
            if started {
                acc = self.mont_mul(&acc, &acc);
                acc = self.mont_mul(&acc, &acc);
                acc = self.mont_mul(&acc, &acc);
                acc = self.mont_mul(&acc, &acc);
                if w != 0 {
                    acc = self.mont_mul(&acc, &table[w]);
                }
            } else if w != 0 {
                acc = table[w].clone();
                started = true;
            }
        }
        self.from_mont(&acc)
    }

    /// Modular multiplication `a * b mod n` through Montgomery form.
    pub fn mul_mod(&self, a: &UBig, b: &UBig) -> UBig {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }
}

/// Inverse of an odd `x` modulo 2^64 (Newton iteration, 6 steps).
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

fn pad(limbs: &[u64], len: usize) -> Vec<u64> {
    let mut v = limbs.to_vec();
    v.resize(len, 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_tiny_modulus() {
        assert!(Mont::new(&UBig::from_u64(10)).is_err());
        assert!(Mont::new(&UBig::from_u64(0)).is_err());
        assert!(Mont::new(&UBig::from_u64(1)).is_err());
        assert!(Mont::new(&UBig::from_u64(3)).is_ok());
    }

    #[test]
    fn inv64_is_inverse() {
        for x in [1u64, 3, 5, 0xdeadbeefdeadbeef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv64(x)), 1);
        }
    }

    #[test]
    fn roundtrip_mont_form() {
        let m = Mont::new(&UBig::from_u64(1_000_000_007)).unwrap();
        for v in [0u64, 1, 2, 999, 1_000_000_006] {
            let x = UBig::from_u64(v);
            assert_eq!(m.from_mont(&m.to_mont(&x)), x);
        }
    }

    #[test]
    fn to_mont_reduces_large_inputs() {
        let m = Mont::new(&UBig::from_u64(97)).unwrap();
        let x = UBig::from_u64(97 * 5 + 13);
        assert_eq!(m.from_mont(&m.to_mont(&x)).to_u64(), Some(13));
    }

    #[test]
    fn mul_mod_matches_plain() {
        let n = UBig::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let m = Mont::new(&n).unwrap();
        let a = UBig::from_hex("deadbeefcafebabe112233445566").unwrap();
        let b = UBig::from_hex("aabbccddeeff00112233445566778899a").unwrap();
        let expect = (&a * &b).rem(&n);
        assert_eq!(m.mul_mod(&a, &b), expect);
    }

    #[test]
    fn pow_matches_naive_small() {
        let n = UBig::from_u64(1_000_000_007);
        let m = Mont::new(&n).unwrap();
        for (b, e) in [(2u64, 10u64), (3, 0), (7, 1), (31337, 65537), (5, 123456)] {
            let expect = UBig::from_u64(b).pow_mod(&UBig::from_u64(e), &n).unwrap();
            assert_eq!(
                m.pow(&UBig::from_u64(b), &UBig::from_u64(e)),
                expect,
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn pow_matches_naive_multi_limb() {
        let n = UBig::from_hex("c2446bf4ccd64d8b34a8a8f4e4ab7d1bb1e2f7c8d9a0b1c2d3e4f5a6b7c8d9e1")
            .unwrap(); // odd 256-bit
        let m = Mont::new(&n).unwrap();
        let b = UBig::from_hex("123456789abcdef0fedcba9876543210ffeeddccbbaa9988").unwrap();
        let e = UBig::from_u64(65537);
        assert_eq!(m.pow(&b, &e), b.pow_mod(&e, &n).unwrap());
    }

    #[test]
    fn pow_edge_exponents() {
        let n = UBig::from_u64(101);
        let m = Mont::new(&n).unwrap();
        // x^0 = 1
        assert!(m.pow(&UBig::from_u64(7), &UBig::zero()).is_one());
        // 0^e = 0 for e > 0
        assert!(m.pow(&UBig::zero(), &UBig::from_u64(9)).is_zero());
        // x^1 = x
        assert_eq!(m.pow(&UBig::from_u64(42), &UBig::one()).to_u64(), Some(42));
    }

    #[test]
    fn fermat_little_theorem_512bit() {
        // p = 2^512 - 569 skips: use a known 512-bit prime written in hex.
        // This one is 2^255 - 19 extended -- instead use a verified small one:
        // p = 2^127 - 1 is a Mersenne prime.
        let p = UBig::one().shl(127).sub(&UBig::one());
        let m = Mont::new(&p).unwrap();
        let a = UBig::from_u64(0x1234_5678_9abc_def1);
        let r = m.pow(&a, &p.sub(&UBig::one()));
        assert!(r.is_one());
    }
}
