//! [`UBig`]: unsigned arbitrary-precision integers.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (zero is the empty limb vector). All public constructors normalize, and
//! every operation preserves the invariant.

use crate::BigError;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Unsigned arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs; empty means zero; last limb (if any) is nonzero.
    limbs: Vec<u64>,
}

impl UBig {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Builds from a single machine word.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }

    /// Builds from a 128-bit value.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            UBig {
                limbs: vec![lo, hi],
            }
        }
    }

    /// Builds from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Read-only access to the little-endian limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of limbs (zero has none).
    #[inline]
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// True iff the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (LSB = bit 0); bits beyond the length read as 0.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Reads `width` bits starting at bit `pos` (LSB = bit 0) as a word,
    /// limb-wise — the window-extraction primitive for exponent scanning
    /// (no per-bit [`UBig::bit`] calls). Bits beyond the length read as 0.
    ///
    /// # Panics
    /// Panics when `width` is 0 or exceeds 32.
    pub fn bits_at(&self, pos: usize, width: usize) -> u64 {
        assert!((1..=32).contains(&width), "window width must be in 1..=32");
        let (limb, off) = (pos / 64, pos % 64);
        let mut v = self.limbs.get(limb).copied().unwrap_or(0) >> off;
        if off + width > 64 {
            if let Some(&hi) = self.limbs.get(limb + 1) {
                v |= hi << (64 - off);
            }
        }
        v & ((1u64 << width) - 1)
    }

    /// Sets bit `i` to 1, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    // ---- byte / string conversions -------------------------------------

    /// Parses big-endian bytes (leading zeros permitted).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (zero -> empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let bits = self.bit_len();
        let len = bits.div_ceil(8);
        self.to_bytes_be_padded(len)
    }

    /// Serializes to exactly `len` big-endian bytes.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        assert!(
            self.bit_len().div_ceil(8) <= len,
            "value needs {} bytes, asked for {len}",
            self.bit_len().div_ceil(8)
        );
        let mut out = vec![0u8; len];
        let mut pos = len;
        'outer: for limb in &self.limbs {
            let bytes = limb.to_le_bytes();
            for b in bytes {
                if pos == 0 {
                    break 'outer;
                }
                pos -= 1;
                out[pos] = b;
            }
        }
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, BigError> {
        if s.is_empty() {
            return Err(BigError::Parse(s.into()));
        }
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.chars() {
            let v = c.to_digit(16).ok_or_else(|| BigError::Parse(s.into()))?;
            nibbles.push(v as u64);
        }
        let mut limbs = Vec::with_capacity(nibbles.len() / 16 + 1);
        // Consume nibbles from the end (least-significant) in groups of 16.
        let mut idx = nibbles.len();
        while idx > 0 {
            let start = idx.saturating_sub(16);
            let mut limb = 0u64;
            for &n in &nibbles[start..idx] {
                limb = (limb << 4) | n;
            }
            limbs.push(limb);
            idx = start;
        }
        Ok(Self::from_limbs(limbs))
    }

    /// Lowercase hexadecimal rendering without leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        let mut first = true;
        for limb in self.limbs.iter().rev() {
            if first {
                s.push_str(&format!("{limb:x}"));
                first = false;
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Result<Self, BigError> {
        if s.is_empty() {
            return Err(BigError::Parse(s.into()));
        }
        let mut acc = UBig::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or_else(|| BigError::Parse(s.into()))? as u64;
            acc = acc.mul_u64(10);
            acc = &acc + &UBig::from_u64(d);
        }
        Ok(acc)
    }

    /// Decimal rendering.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        // Peel 19 decimal digits at a time via division by 10^19.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            digits.push(r);
            cur = q;
        }
        let mut s = format!("{}", digits.pop().unwrap());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }

    // ---- comparison -----------------------------------------------------

    fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    // ---- addition / subtraction ----------------------------------------

    /// `self + other`.
    #[allow(clippy::needless_range_loop)] // long[i] pairs with short.get(i)
    pub fn add(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }

    /// `self - other`, or `None` when the result would be negative.
    pub fn checked_sub(&self, other: &UBig) -> Option<UBig> {
        if Self::cmp_limbs(&self.limbs, &other.limbs) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(UBig::from_limbs(out))
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics when `other > self`.
    pub fn sub(&self, other: &UBig) -> UBig {
        self.checked_sub(other)
            .expect("UBig::sub underflow: subtrahend exceeds minuend")
    }

    // ---- multiplication --------------------------------------------------

    /// `self * small`.
    pub fn mul_u64(&self, small: u64) -> UBig {
        if small == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let cur = l as u128 * small as u128 + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    // Karatsuba pays off well above typical RSA sizes; threshold chosen
    // by the e9 ablation bench (32 limbs = 2048 bits).
    const KARATSUBA_THRESHOLD: usize = 32;

    /// Schoolbook product with a Karatsuba fast path for large operands.
    /// Self-multiplication (same allocation or equal value) routes through
    /// the cheaper [`UBig::square`] partial-product-symmetric path.
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        if std::ptr::eq(self, other) || self == other {
            return self.square();
        }
        if self.limbs.len() >= Self::KARATSUBA_THRESHOLD
            && other.limbs.len() >= Self::KARATSUBA_THRESHOLD
        {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    fn mul_schoolbook(&self, other: &UBig) -> UBig {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    fn mul_karatsuba(&self, other: &UBig) -> UBig {
        let half = self.limbs.len().min(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at(half);
        let (b0, b1) = other.split_at(half);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = (&a0 + &a1).mul(&(&b0 + &b1)).sub(&z0).sub(&z2);
        let mut acc = z2.shl_limbs(2 * half);
        acc = &acc + &z1.shl_limbs(half);
        &acc + &z0
    }

    /// Splits into (low `at` limbs, remaining high limbs).
    fn split_at(&self, at: usize) -> (UBig, UBig) {
        if at >= self.limbs.len() {
            return (self.clone(), UBig::zero());
        }
        (
            UBig::from_limbs(self.limbs[..at].to_vec()),
            UBig::from_limbs(self.limbs[at..].to_vec()),
        )
    }

    fn shl_limbs(&self, n: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let mut limbs = vec![0u64; n];
        limbs.extend_from_slice(&self.limbs);
        UBig::from_limbs(limbs)
    }

    /// `self * self` via dedicated squaring: each cross product
    /// `limb[i]·limb[j]` (`i < j`) is computed once and doubled, roughly
    /// halving the multiplication count of the schoolbook product; above
    /// the Karatsuba threshold the three recursive half-size products are
    /// squarings too.
    pub fn square(&self) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        if self.limbs.len() >= Self::KARATSUBA_THRESHOLD {
            return self.sqr_karatsuba();
        }
        self.sqr_schoolbook()
    }

    fn sqr_schoolbook(&self) -> UBig {
        let s = self.limbs.len();
        let mut out = vec![0u64; 2 * s];
        // Cross products a[i]*a[j] for i < j.
        for i in 0..s {
            let ai = self.limbs[i];
            if ai == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in (i + 1)..s {
                let cur = out[i + j] as u128 + ai as u128 * self.limbs[j] as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Position i + s is untouched by earlier iterations.
            out[i + s] = carry as u64;
        }
        // Double the cross products; the final carry is always zero
        // because 2 * cross < a^2 fits in 2s limbs.
        let mut dcarry = 0u64;
        for limb in out.iter_mut() {
            let v = *limb;
            *limb = (v << 1) | dcarry;
            dcarry = v >> 63;
        }
        debug_assert_eq!(dcarry, 0);
        // Add the diagonal terms a[i]^2 at position 2i.
        let mut carry = 0u64;
        for i in 0..s {
            let sq = self.limbs[i] as u128 * self.limbs[i] as u128;
            let cur = out[2 * i] as u128 + (sq as u64) as u128 + carry as u128;
            out[2 * i] = cur as u64;
            let cur2 = out[2 * i + 1] as u128 + (sq >> 64) + (cur >> 64);
            out[2 * i + 1] = cur2 as u64;
            carry = (cur2 >> 64) as u64;
        }
        debug_assert_eq!(carry, 0);
        UBig::from_limbs(out)
    }

    fn sqr_karatsuba(&self) -> UBig {
        let half = self.limbs.len() / 2;
        let (a0, a1) = self.split_at(half);
        // (a1*B + a0)^2 = a1^2*B^2 + ((a0+a1)^2 - a0^2 - a1^2)*B + a0^2
        let z0 = a0.square();
        let z2 = a1.square();
        let z1 = (&a0 + &a1).square().sub(&z0).sub(&z2);
        let mut acc = z2.shl_limbs(2 * half);
        acc = &acc + &z1.shl_limbs(half);
        &acc + &z0
    }

    // ---- shifts -----------------------------------------------------------

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> UBig {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        UBig::from_limbs(out)
    }

    /// Right shift by `bits` (towards zero).
    #[allow(clippy::needless_range_loop)] // src[i] and src[i+1] pair per step
    pub fn shr(&self, bits: usize) -> UBig {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return UBig::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = src.get(i + 1).copied().unwrap_or(0) << (64 - bit_shift);
            out.push(lo | hi);
        }
        UBig::from_limbs(out)
    }

    /// Count of trailing zero bits (`None` for zero).
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    // ---- division ----------------------------------------------------------

    /// Quotient and remainder by a single limb.
    ///
    /// # Panics
    /// Panics when `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (UBig::from_limbs(out), rem as u64)
    }

    /// Quotient and remainder (Knuth Algorithm D).
    ///
    /// # Panics
    /// Panics when `divisor` is zero.
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "division by zero");
        match Self::cmp_limbs(&self.limbs, &divisor.limbs) {
            Ordering::Less => return (UBig::zero(), self.clone()),
            Ordering::Equal => return (UBig::one(), UBig::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, UBig::from_u64(r));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let mut u_limbs = u.limbs.clone();
        u_limbs.push(0); // u gets one extra high limb
        let m = u_limbs.len() - n - 1;
        let v_limbs = &v.limbs;
        let v_top = v_limbs[n - 1];
        let v_second = v_limbs[n - 2];

        let mut q_limbs = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two/three limbs.
            let numer = ((u_limbs[j + n] as u128) << 64) | u_limbs[j + n - 1] as u128;
            let mut qhat = numer / v_top as u128;
            let mut rhat = numer % v_top as u128;
            while qhat >> 64 != 0
                || qhat * v_second as u128 > ((rhat << 64) | u_limbs[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from u[j..j+n+1].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * v_limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u_limbs[j + i] as i128) - ((p as u64) as i128) + borrow;
                u_limbs[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift keeps the sign
            }
            let sub = (u_limbs[j + n] as i128) - (carry as i128) + borrow;
            u_limbs[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow < 0 {
                // qhat was one too large: add v back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let cur = u_limbs[j + i] as u128 + v_limbs[i] as u128 + carry;
                    u_limbs[j + i] = cur as u64;
                    carry = cur >> 64;
                }
                u_limbs[j + n] = u_limbs[j + n].wrapping_add(carry as u64);
            }
            q_limbs[j] = qhat as u64;
        }

        let rem = UBig::from_limbs(u_limbs[..n].to_vec()).shr(shift);
        (UBig::from_limbs(q_limbs), rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &UBig) -> UBig {
        self.div_rem(m).1
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &UBig) -> UBig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros().unwrap();
        let bz = b.trailing_zeros().unwrap();
        let common = az.min(bz);
        a = a.shr(az);
        b = b.shr(bz);
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(common);
            }
            b = b.shr(b.trailing_zeros().unwrap());
        }
    }

    /// `self^exp mod m` using plain square-and-multiply (works for any
    /// modulus; the Montgomery path in [`crate::Mont`] is faster for odd m).
    pub fn pow_mod(&self, exp: &UBig, m: &UBig) -> Result<UBig, BigError> {
        if m.is_zero() {
            return Err(BigError::DivideByZero);
        }
        if m.is_one() {
            return Ok(UBig::zero());
        }
        let mut base = self.rem(m);
        let mut acc = UBig::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = acc.mul(&base).rem(m);
            }
            if i + 1 < exp.bit_len() {
                base = base.square().rem(m);
            }
        }
        Ok(acc)
    }
}

// ---- operator impls ----------------------------------------------------

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        Self::cmp_limbs(&self.limbs, &other.limbs)
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::ops::Add for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        UBig::add(self, rhs)
    }
}

impl std::ops::Sub for &UBig {
    type Output = UBig;
    fn sub(self, rhs: &UBig) -> UBig {
        UBig::sub(self, rhs)
    }
}

impl std::ops::Mul for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        UBig::mul(self, rhs)
    }
}

impl std::ops::Div for &UBig {
    type Output = UBig;
    fn div(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).0
    }
}

impl std::ops::Rem for &UBig {
    type Output = UBig;
    fn rem(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).1
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig(0x{})", self.to_hex())
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl FromStr for UBig {
    type Err = BigError;
    /// Accepts decimal, or hexadecimal with an `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            UBig::from_hex(hex)
        } else {
            UBig::from_decimal(s)
        }
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig::from_u64(v)
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from_u64(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> UBig {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(UBig::zero().is_zero());
        assert!(UBig::one().is_one());
        assert!(UBig::zero().is_even());
        assert!(UBig::one().is_odd());
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::one().bit_len(), 1);
        assert_eq!(UBig::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn from_limbs_normalizes() {
        let x = UBig::from_limbs(vec![5, 0, 0]);
        assert_eq!(x.limb_len(), 1);
        assert_eq!(x.to_u64(), Some(5));
    }

    #[test]
    fn add_with_carry_chain() {
        let a = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = UBig::one();
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 0, 1]);
        assert_eq!(s.sub(&b), a);
    }

    #[test]
    fn sub_underflow_is_checked() {
        assert!(UBig::from_u64(3).checked_sub(&UBig::from_u64(4)).is_none());
        assert_eq!(
            UBig::from_u64(4).checked_sub(&UBig::from_u64(4)),
            Some(UBig::zero())
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = UBig::from_u64(1).sub(&UBig::from_u64(2));
    }

    #[test]
    fn mul_known_values() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        let expect = big("121932631137021795226185032733622923332237463801111263526900");
        assert_eq!(&a * &b, expect);
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = big("340282366920938463463374607431768211456"); // 2^128
        assert_eq!(a.mul_u64(7), &a * &UBig::from_u64(7));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Construct operands above the Karatsuba threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..40 {
            x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(1);
            limbs_a.push(x);
            x = x.wrapping_mul(0x94d049bb133111eb).wrapping_add(3);
            limbs_b.push(x);
        }
        let a = UBig::from_limbs(limbs_a);
        let b = UBig::from_limbs(limbs_b);
        assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn square_matches_schoolbook_mul() {
        // Compare against (a+1)(a-1) + 1 = a^2 computed through the
        // ordinary (unequal-operand) multiplication path, so the check
        // does not route through `square` itself.
        let mut x = 0x9e3779b97f4a7c15u64;
        for limbs in [1usize, 2, 5, 31, 32, 40, 65] {
            let mut v = Vec::with_capacity(limbs);
            for _ in 0..limbs {
                x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(7);
                v.push(x | 1);
            }
            let a = UBig::from_limbs(v);
            let via_mul = &(&(&a + &UBig::one()) * &a.sub(&UBig::one())) + &UBig::one();
            assert_eq!(a.square(), via_mul, "limbs={limbs}");
        }
        assert_eq!(UBig::zero().square(), UBig::zero());
        assert_eq!(UBig::one().square(), UBig::one());
    }

    #[test]
    fn mul_detects_self_multiplication() {
        let a = big("0xdeadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff");
        let b = a.clone();
        // Same allocation and equal-value cases both agree with square().
        assert_eq!(&a * &a, a.square());
        assert_eq!(&a * &b, a.square());
    }

    #[test]
    fn div_rem_single_limb() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(&(q.mul_u64(97)) + &UBig::from_u64(r), a);
        assert!(r < 97);
    }

    #[test]
    fn div_rem_multi_limb_roundtrip() {
        let a = big("0xdeadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff");
        let b = big("0xfedcba98765432100f0e0d0c0b0a0908");
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_needs_correction_step() {
        // Divisor with maximal top limb forces the qhat correction path.
        let b = UBig::from_limbs(vec![0, u64::MAX]);
        let a = UBig::from_limbs(vec![u64::MAX, u64::MAX, u64::MAX - 1, u64::MAX]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("0x123456789abcdef0fedcba9876543210");
        for bits in [1usize, 7, 63, 64, 65, 130] {
            assert_eq!(a.shl(bits).shr(bits), a, "bits={bits}");
        }
        assert_eq!(a.shr(1000), UBig::zero());
    }

    #[test]
    fn bytes_roundtrip_padded() {
        let a = big("0x0102030405");
        assert_eq!(a.to_bytes_be(), vec![1, 2, 3, 4, 5]);
        assert_eq!(a.to_bytes_be_padded(8), vec![0, 0, 0, 1, 2, 3, 4, 5]);
        assert_eq!(UBig::from_bytes_be(&[0, 0, 1, 2, 3, 4, 5]), a);
    }

    #[test]
    #[should_panic(expected = "bytes")]
    fn padded_bytes_too_small_panics() {
        big("0x010203").to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            assert_eq!(UBig::from_hex(s).unwrap().to_hex(), s, "hex {s}");
        }
        // Leading zeros and uppercase are accepted on input, canonicalized out.
        assert_eq!(UBig::from_hex("000A").unwrap().to_hex(), "a");
        assert!(UBig::from_hex("").is_err());
        assert!(UBig::from_hex("xyz").is_err());
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999999999999",
        ] {
            assert_eq!(big(s).to_decimal(), s);
        }
    }

    #[test]
    fn display_and_fromstr_agree() {
        let v = big("123456789123456789123456789");
        assert_eq!(v.to_string().parse::<UBig>().unwrap(), v);
        assert_eq!(format!("0x{}", v.to_hex()).parse::<UBig>().unwrap(), v);
    }

    #[test]
    fn gcd_known() {
        assert_eq!(
            UBig::from_u64(48).gcd(&UBig::from_u64(36)),
            UBig::from_u64(12)
        );
        assert_eq!(UBig::zero().gcd(&UBig::from_u64(7)), UBig::from_u64(7));
        assert_eq!(UBig::from_u64(7).gcd(&UBig::zero()), UBig::from_u64(7));
        let a = big("123456789012345678901234567890");
        let g = a.gcd(&a);
        assert_eq!(g, a);
    }

    #[test]
    fn pow_mod_small_cases() {
        let m = UBig::from_u64(1_000_000_007);
        let r = UBig::from_u64(2).pow_mod(&UBig::from_u64(10), &m).unwrap();
        assert_eq!(r.to_u64(), Some(1024));
        // Fermat: a^(p-1) = 1 mod p
        let r = UBig::from_u64(31337)
            .pow_mod(&UBig::from_u64(1_000_000_006), &m)
            .unwrap();
        assert!(r.is_one());
        // mod 1 is always 0
        let r = UBig::from_u64(5)
            .pow_mod(&UBig::from_u64(5), &UBig::one())
            .unwrap();
        assert!(r.is_zero());
    }

    #[test]
    fn bit_access() {
        let mut v = UBig::zero();
        v.set_bit(0);
        v.set_bit(100);
        assert!(v.bit(0) && v.bit(100) && !v.bit(50));
        assert_eq!(v.bit_len(), 101);
        assert!(!v.bit(5000));
    }

    #[test]
    fn trailing_zeros_cases() {
        assert_eq!(UBig::zero().trailing_zeros(), None);
        assert_eq!(UBig::from_u64(1).trailing_zeros(), Some(0));
        assert_eq!(UBig::from_u64(8).trailing_zeros(), Some(3));
        assert_eq!(UBig::one().shl(200).trailing_zeros(), Some(200));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big("0xffffffffffffffff") < big("0x10000000000000000"));
        assert!(big("5") > big("4"));
        assert_eq!(big("5").cmp(&big("5")), Ordering::Equal);
    }
}
