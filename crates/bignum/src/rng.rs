//! Randomness plumbing: a minimal byte-filling trait plus uniform sampling
//! of big integers.
//!
//! [`BigRng`] is blanket-implemented for every [`rand::RngCore`], so callers
//! can hand in `StdRng::seed_from_u64(..)` for deterministic tests or an OS
//! RNG in examples.

use crate::ubig::UBig;

/// Byte-level randomness source. Blanket-implemented for all `rand` RNGs.
pub trait BigRng {
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: rand::RngCore> BigRng for T {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(self, dest)
    }
}

/// Uniform random integer with at most `bits` bits.
pub fn random_bits<R: BigRng + ?Sized>(rng: &mut R, bits: usize) -> UBig {
    if bits == 0 {
        return UBig::zero();
    }
    let nbytes = bits.div_ceil(8);
    let mut buf = vec![0u8; nbytes];
    rng.fill_bytes(&mut buf);
    let excess = nbytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    UBig::from_bytes_be(&buf)
}

/// Uniform random integer in `[0, bound)` via rejection sampling.
///
/// # Panics
/// Panics when `bound` is zero.
pub fn random_below<R: BigRng + ?Sized>(rng: &mut R, bound: &UBig) -> UBig {
    assert!(!bound.is_zero(), "random_below of zero bound");
    let bits = bound.bit_len();
    loop {
        let cand = random_bits(rng, bits);
        if &cand < bound {
            return cand;
        }
    }
}

/// Uniform random integer in `[lo, hi)`.
///
/// # Panics
/// Panics when `lo >= hi`.
pub fn random_range<R: BigRng + ?Sized>(rng: &mut R, lo: &UBig, hi: &UBig) -> UBig {
    assert!(lo < hi, "empty range");
    lo + &random_below(rng, &hi.sub(lo))
}

/// Uniform random element of the multiplicative group `(Z/nZ)*`.
pub fn random_coprime<R: BigRng + ?Sized>(rng: &mut R, n: &UBig) -> UBig {
    loop {
        let cand = random_range(rng, &UBig::one(), n);
        if cand.gcd(n).is_one() {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for bits in [0usize, 1, 7, 8, 9, 63, 64, 65, 257] {
            for _ in 0..20 {
                let v = random_bits(&mut r, bits);
                assert!(v.bit_len() <= bits, "bits={bits} got {}", v.bit_len());
            }
        }
    }

    #[test]
    fn random_bits_hits_top_bit_sometimes() {
        let mut r = rng();
        let hit = (0..200).any(|_| random_bits(&mut r, 16).bit(15));
        assert!(hit, "top bit should be reachable");
    }

    #[test]
    fn random_below_in_range_and_covers() {
        let mut r = rng();
        let bound = UBig::from_u64(10);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = random_below(&mut r, &bound);
            assert!(v < bound);
            seen[v.to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn random_range_stays_inside() {
        let mut r = rng();
        let lo = UBig::from_u64(100);
        let hi = UBig::from_u64(110);
        for _ in 0..200 {
            let v = random_range(&mut r, &lo, &hi);
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn random_coprime_is_coprime() {
        let mut r = rng();
        let n = UBig::from_u64(360); // plenty of shared factors to reject
        for _ in 0..50 {
            let v = random_coprime(&mut r, &n);
            assert!(v.gcd(&n).is_one());
        }
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn random_below_zero_panics() {
        random_below(&mut rng(), &UBig::zero());
    }
}
