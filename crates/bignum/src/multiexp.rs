//! Simultaneous multi-exponentiation: `Π bᵢ^eᵢ mod n` in one pass.
//!
//! Computing a product of powers naively costs one full exponentiation per
//! base — every base pays its own squaring chain. Both algorithms here
//! share that chain across all bases, so `k` bases of `ℓ`-bit exponents
//! cost `ℓ` squarings total instead of `k·ℓ`:
//!
//! * [`straus`] — Straus interleaving: one fixed-window table per base,
//!   one shared squaring chain, one table multiplication per base per
//!   window. Best for small batches (a handful of bases) and the classic
//!   `g^a·y^b` verification shapes.
//! * [`pippenger`] — Pippenger bucketing: per window position, bases are
//!   multiplied into the bucket selected by their exponent digit, and the
//!   buckets are folded with a running suffix product. The per-base cost
//!   falls toward one multiplication per window, which wins once the batch
//!   is large (batch signature verification).
//! * [`multi_pow`] — size-based dispatcher between the two, switching to
//!   Pippenger at [`PIPPENGER_THRESHOLD`] bases (threshold backed by the
//!   `prim_multiexp` benchmark group in `crates/bench`). It also honors
//!   the process-wide [`crate::mont::Kernel`] knob: under
//!   `Kernel::Reference` it falls back to iterated reference
//!   exponentiations, so A/B experiment runs compare against the honest
//!   pre-optimization baseline.
//!
//! All three operate on [`MontForm`] values (callers stay in Montgomery
//! form across the whole computation) and allocate only setup buffers: the
//! inner loops run entirely on preallocated scratch via
//! [`Mont::mont_mul_into`]/[`Mont::mont_sqr_into`] — a property pinned by
//! the counting-allocator regression in `crates/bignum/tests`.
//!
//! # Example
//!
//! ```
//! use p2drm_bignum::{multiexp, Mont, UBig};
//!
//! let mont = Mont::new(&UBig::from_u64(1_000_003)).unwrap();
//! let bases = [
//!     mont.to_form(&UBig::from_u64(2)),
//!     mont.to_form(&UBig::from_u64(3)),
//! ];
//! let exps = [UBig::from_u64(10), UBig::from_u64(5)];
//! let r = multiexp::multi_pow(&mont, &bases, &exps);
//! // 2^10 · 3^5 = 1024 · 243 = 248832  (well below the modulus)
//! assert_eq!(mont.from_form(&r), UBig::from_u64(248_832));
//! ```

use crate::mont::{kernel, window_bits, Kernel, Mont, MontForm};
use crate::ubig::UBig;

/// Batch size at which [`multi_pow`] switches from [`straus`] to
/// [`pippenger`]. Below it, per-base window tables amortize well and
/// Straus does strictly fewer multiplications; above it, Pippenger's
/// bucket folding (whose table cost is per *batch*, not per base) pulls
/// ahead. Backed by the `prim_multiexp` crossover benchmark.
pub const PIPPENGER_THRESHOLD: usize = 16;

/// `Π bases[i] ^ exps[i] mod n`, dispatching on batch size: [`straus`]
/// below [`PIPPENGER_THRESHOLD`] bases, [`pippenger`] at or above it.
///
/// Under the process-wide [`Kernel::Reference`] knob the product is
/// instead computed as iterated reference-kernel exponentiations
/// ([`Mont::pow_reference`]), so experiment A/B runs measure the real
/// pre-optimization cost of the same work.
///
/// # Panics
/// Panics when `bases` and `exps` have different lengths.
pub fn multi_pow(mont: &Mont, bases: &[MontForm], exps: &[UBig]) -> MontForm {
    assert_eq!(
        bases.len(),
        exps.len(),
        "multi_pow needs one exponent per base"
    );
    if kernel() == Kernel::Reference {
        let mut acc = mont.one_form();
        for (base, exp) in bases.iter().zip(exps.iter()) {
            let p = mont.pow_reference(&mont.from_form(base), exp);
            acc = mont.form_mul(&acc, &mont.to_form(&p));
        }
        return acc;
    }
    if bases.len() >= PIPPENGER_THRESHOLD {
        pippenger(mont, bases, exps)
    } else {
        straus(mont, bases, exps)
    }
}

/// Straus simultaneous exponentiation: per-base fixed-window tables, one
/// squaring chain shared by every base.
///
/// Cost for `k` bases with `ℓ`-bit exponents and `w`-bit windows:
/// `ℓ` squarings + `k·(2^w − 2)` table multiplications +
/// `≈ k·(ℓ/w)` window multiplications — versus `k·ℓ` squarings for `k`
/// independent [`Mont::pow_form`] calls. After the setup allocations
/// (one flat table, accumulator, temporary, scratch) the main loop is
/// allocation-free.
///
/// # Panics
/// Panics when `bases` and `exps` have different lengths.
pub fn straus(mont: &Mont, bases: &[MontForm], exps: &[UBig]) -> MontForm {
    assert_eq!(
        bases.len(),
        exps.len(),
        "straus needs one exponent per base"
    );
    let k = bases.len();
    if k == 0 {
        return mont.one_form();
    }
    if k == 1 {
        return mont.pow_form(&bases[0], &exps[0]);
    }
    let s = mont.limb_len();
    let bits = exps.iter().map(UBig::bit_len).max().unwrap_or(0);
    if bits == 0 {
        return mont.one_form();
    }
    let w = window_bits(bits);
    let tsize = 1usize << w;
    let mut scratch = mont.alloc_scratch();

    // Flat per-base tables: entry(i, d) = bases[i]^d for d in 1..tsize,
    // one allocation for the whole batch.
    let row = (tsize - 1) * s;
    let mut table = vec![0u64; k * row];
    for (i, base) in bases.iter().enumerate() {
        let chunk = &mut table[i * row..(i + 1) * row];
        chunk[..s].copy_from_slice(base.as_limbs());
        for d in 2..tsize {
            let (built, rest) = chunk.split_at_mut((d - 1) * s);
            mont.mont_mul_into(
                &built[(d - 2) * s..],
                base.as_limbs(),
                &mut rest[..s],
                &mut scratch,
            );
        }
    }
    let entry = |i: usize, d: usize| &table[i * row + (d - 1) * s..i * row + d * s];

    let nwin = bits.div_ceil(w);
    let mut acc = vec![0u64; s];
    let mut tmp = vec![0u64; s];
    // Top window: seed the accumulator from the first nonzero digit (the
    // base whose exponent reaches `bits` guarantees one exists).
    let mut started = false;
    for (i, exp) in exps.iter().enumerate() {
        let d = exp.bits_at((nwin - 1) * w, w) as usize;
        if d != 0 {
            if started {
                mont.mont_mul_into(&acc, entry(i, d), &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            } else {
                acc.copy_from_slice(entry(i, d));
                started = true;
            }
        }
    }
    debug_assert!(started, "top window of the longest exponent is nonzero");
    for win in (0..nwin - 1).rev() {
        for _ in 0..w {
            mont.mont_sqr_into(&acc, &mut tmp, &mut scratch);
            std::mem::swap(&mut acc, &mut tmp);
        }
        for (i, exp) in exps.iter().enumerate() {
            let d = exp.bits_at(win * w, w) as usize;
            if d != 0 {
                mont.mont_mul_into(&acc, entry(i, d), &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
    }
    MontForm::from_limbs(acc)
}

/// Pippenger bucket multi-exponentiation for large batches.
///
/// Exponents are scanned `c` bits at a time; within each window every base
/// is multiplied into the bucket named by its digit, and the `2^c − 1`
/// buckets are folded high-to-low with a running suffix product (the
/// standard `Σ d·Bd = Σ suffix products` identity, multiplicatively).
/// Bucket storage is one flat allocation per *batch* — growing the batch
/// adds zero allocations, which the counting-allocator regression pins.
///
/// # Panics
/// Panics when `bases` and `exps` have different lengths.
pub fn pippenger(mont: &Mont, bases: &[MontForm], exps: &[UBig]) -> MontForm {
    assert_eq!(
        bases.len(),
        exps.len(),
        "pippenger needs one exponent per base"
    );
    let k = bases.len();
    if k == 0 {
        return mont.one_form();
    }
    if k == 1 {
        return mont.pow_form(&bases[0], &exps[0]);
    }
    let s = mont.limb_len();
    let bits = exps.iter().map(UBig::bit_len).max().unwrap_or(0);
    if bits == 0 {
        return mont.one_form();
    }
    let c = bucket_bits(k).min(bits);
    let nbuckets = (1usize << c) - 1;
    let nwin = bits.div_ceil(c);
    let mut scratch = mont.alloc_scratch();

    // All buffers for the whole batch, allocated once.
    let mut buckets = vec![0u64; nbuckets * s];
    let mut occupied = vec![false; nbuckets];
    let mut acc = vec![0u64; s];
    let mut run = vec![0u64; s];
    let mut fold = vec![0u64; s];
    let mut tmp = vec![0u64; s];
    let mut acc_started = false;

    for win in (0..nwin).rev() {
        if acc_started {
            for _ in 0..c {
                mont.mont_sqr_into(&acc, &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        occupied.fill(false);
        for (base, exp) in bases.iter().zip(exps.iter()) {
            let d = exp.bits_at(win * c, c) as usize;
            if d != 0 {
                let slot = &mut buckets[(d - 1) * s..d * s];
                if occupied[d - 1] {
                    mont.mont_mul_into(slot, base.as_limbs(), &mut tmp, &mut scratch);
                    slot.copy_from_slice(&tmp[..s]);
                } else {
                    slot.copy_from_slice(base.as_limbs());
                    occupied[d - 1] = true;
                }
            }
        }
        // Fold: run = Π_{j>=d} B_j (suffix product), fold = Π_d run,
        // giving Π_d B_d^d without per-bucket exponentiations.
        let mut run_started = false;
        let mut fold_started = false;
        for d in (0..nbuckets).rev() {
            if occupied[d] {
                let slot = &buckets[d * s..(d + 1) * s];
                if run_started {
                    mont.mont_mul_into(&run, slot, &mut tmp, &mut scratch);
                    std::mem::swap(&mut run, &mut tmp);
                } else {
                    run.copy_from_slice(slot);
                    run_started = true;
                }
            }
            if run_started {
                if fold_started {
                    mont.mont_mul_into(&fold, &run, &mut tmp, &mut scratch);
                    std::mem::swap(&mut fold, &mut tmp);
                } else {
                    fold.copy_from_slice(&run);
                    fold_started = true;
                }
            }
        }
        if fold_started {
            if acc_started {
                mont.mont_mul_into(&acc, &fold, &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            } else {
                acc.copy_from_slice(&fold);
                acc_started = true;
            }
        }
    }
    if !acc_started {
        return mont.one_form();
    }
    MontForm::from_limbs(acc)
}

/// Bucket window width for a `k`-base Pippenger pass: roughly `log2 k`,
/// clamped so bucket storage stays small at protocol batch sizes.
fn bucket_bits(k: usize) -> usize {
    match k {
        0..=3 => 1,
        4..=7 => 2,
        8..=15 => 3,
        16..=63 => 4,
        64..=255 => 5,
        _ => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng as brng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn modulus(bits: usize, seed: u64) -> UBig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = brng::random_bits(&mut rng, bits);
        m.set_bit(bits - 1);
        m.set_bit(0);
        m
    }

    fn iterated(mont: &Mont, bases: &[MontForm], exps: &[UBig]) -> MontForm {
        let mut acc = mont.one_form();
        for (b, e) in bases.iter().zip(exps.iter()) {
            acc = mont.form_mul(&acc, &mont.pow_form(b, e));
        }
        acc
    }

    fn fixture(
        k: usize,
        bits: usize,
        exp_bits: usize,
        seed: u64,
    ) -> (Mont, Vec<MontForm>, Vec<UBig>) {
        let n = modulus(bits, seed);
        let mont = Mont::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let bases: Vec<MontForm> = (0..k)
            .map(|_| mont.to_form(&brng::random_below(&mut rng, &n)))
            .collect();
        let exps: Vec<UBig> = (0..k)
            .map(|_| brng::random_bits(&mut rng, exp_bits))
            .collect();
        (mont, bases, exps)
    }

    #[test]
    fn straus_matches_iterated_pow_across_shapes() {
        for (k, bits, exp_bits, seed) in [
            (2usize, 256usize, 256usize, 1u64),
            (3, 512, 128, 2),
            (4, 512, 512, 3),
            (5, 192, 64, 4),
        ] {
            let (mont, bases, exps) = fixture(k, bits, exp_bits, seed);
            assert_eq!(
                straus(&mont, &bases, &exps),
                iterated(&mont, &bases, &exps),
                "k={k} bits={bits} exp_bits={exp_bits}"
            );
        }
    }

    #[test]
    fn pippenger_matches_straus_across_sizes() {
        for (k, exp_bits, seed) in [
            (2usize, 64usize, 7u64),
            (8, 16, 8),
            (16, 8, 9),
            (40, 32, 10),
        ] {
            let (mont, bases, exps) = fixture(k, 256, exp_bits, seed);
            assert_eq!(
                pippenger(&mont, &bases, &exps),
                straus(&mont, &bases, &exps),
                "k={k} exp_bits={exp_bits}"
            );
        }
    }

    #[test]
    fn dispatcher_handles_edges_and_reference_kernel() {
        let (mont, bases, exps) = fixture(3, 256, 64, 11);
        // Empty and zero-exponent batches are the identity.
        assert_eq!(multi_pow(&mont, &[], &[]), mont.one_form());
        assert_eq!(
            multi_pow(&mont, &bases, &vec![UBig::zero(); 3]),
            mont.one_form()
        );
        // Single base routes through pow_form.
        assert_eq!(
            multi_pow(&mont, &bases[..1], &exps[..1]),
            mont.pow_form(&bases[0], &exps[0])
        );
        let fast = multi_pow(&mont, &bases, &exps);
        crate::mont::set_kernel(Kernel::Reference);
        let reference = multi_pow(&mont, &bases, &exps);
        crate::mont::set_kernel(Kernel::Fast);
        assert_eq!(fast, reference, "kernels must agree on the same batch");
    }

    #[test]
    #[should_panic(expected = "one exponent per base")]
    fn mismatched_lengths_panic() {
        let (mont, bases, exps) = fixture(2, 128, 32, 12);
        multi_pow(&mont, &bases, &exps[..1]);
    }

    #[test]
    fn mixed_exponent_lengths_including_zero() {
        let (mont, bases, _) = fixture(4, 256, 0, 13);
        let exps = vec![
            UBig::zero(),
            UBig::one(),
            UBig::from_u64(u64::MAX),
            brng::random_bits(&mut StdRng::seed_from_u64(99), 200),
        ];
        assert_eq!(straus(&mont, &bases, &exps), iterated(&mont, &bases, &exps));
        assert_eq!(
            pippenger(&mont, &bases, &exps),
            iterated(&mont, &bases, &exps)
        );
    }
}
