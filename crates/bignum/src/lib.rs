//! Arbitrary-precision unsigned integer arithmetic for the P2DRM workspace.
//!
//! The offline environment provides no big-integer or cryptography crates, so
//! every primitive the paper's protocols need (RSA, Chaum blind signatures,
//! ElGamal identity escrow) is built on this crate. It provides:
//!
//! * [`UBig`] — an unsigned arbitrary-precision integer (little-endian `u64`
//!   limbs) with full arithmetic, bit operations, and byte/hex/decimal
//!   conversions.
//! * [`Mont`] — a Montgomery reduction context (CIOS) for fast modular
//!   exponentiation with odd moduli, the workhorse of all public-key
//!   operations; [`MontForm`] keeps values in Montgomery form across a
//!   whole computation so conversions are paid at the boundary only.
//! * [`multiexp`] — simultaneous multi-exponentiation (Straus interleaving
//!   and Pippenger bucketing) so batched verifications share one squaring
//!   chain instead of paying one full exponentiation per term.
//! * [`modring`] — plain modular arithmetic, extended GCD, modular inverse
//!   and the Jacobi symbol.
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation.
//! * [`BigRng`] — a minimal randomness trait (blanket-implemented for every
//!   [`rand::RngCore`]) so callers can inject deterministic generators in
//!   tests.
//!
//! # Example
//!
//! ```
//! use p2drm_bignum::UBig;
//!
//! let a = UBig::from_u64(1_000_000_007);
//! let b = UBig::from_u64(998_244_353);
//! let m = &a * &b;
//! assert_eq!(&m / &b, a);
//! assert_eq!(&m % &a, UBig::zero());
//! ```
//!
//! # Security note
//!
//! This is a *reference implementation for protocol research*: operations are
//! not constant-time and no blinding is applied at this layer. Do not reuse
//! for production secrets.

pub mod modring;
pub mod mont;
pub mod multiexp;
pub mod prime;
pub mod rng;
pub mod ubig;

pub use mont::{Mont, MontForm};
pub use rng::BigRng;
pub use ubig::UBig;

/// Errors produced by parsing and arithmetic entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigError {
    /// Input string was empty or contained an invalid digit.
    Parse(String),
    /// Division or reduction by zero.
    DivideByZero,
    /// An operand was outside the required range (message explains).
    OutOfRange(&'static str),
    /// No modular inverse exists (operand shares a factor with the modulus).
    NotInvertible,
    /// The modulus handed to a Montgomery context was even or < 3.
    BadModulus,
}

impl std::fmt::Display for BigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BigError::Parse(s) => write!(f, "invalid number literal: {s:?}"),
            BigError::DivideByZero => write!(f, "division by zero"),
            BigError::OutOfRange(m) => write!(f, "operand out of range: {m}"),
            BigError::NotInvertible => write!(f, "element is not invertible modulo n"),
            BigError::BadModulus => write!(f, "modulus must be odd and >= 3"),
        }
    }
}

impl std::error::Error for BigError {}
