//! Miller–Rabin primality testing and random prime generation.
//!
//! Prime generation drives RSA key generation in `p2drm-crypto`; the tests
//! there use 256–512-bit keys so the suite stays fast, while benches sweep
//! real-world sizes.

use crate::mont::Mont;
use crate::rng::BigRng;
use crate::ubig::UBig;
use std::sync::OnceLock;

/// Trial-division table bound. 2048 keeps the sieve tiny while rejecting
/// ~89% of random odd candidates before a Miller-Rabin round is spent.
const SMALL_PRIME_BOUND: usize = 2048;

fn small_primes() -> &'static [u64] {
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut sieve = vec![true; SMALL_PRIME_BOUND];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..SMALL_PRIME_BOUND {
            if sieve[i] {
                let mut j = i * i;
                while j < SMALL_PRIME_BOUND {
                    sieve[j] = false;
                    j += i;
                }
            }
        }
        sieve
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| i as u64)
            .collect()
    })
}

/// One Miller–Rabin round with witness `a` against odd `n = d * 2^r + 1`.
fn miller_rabin_round(mont: &Mont, n_minus_1: &UBig, d: &UBig, r: usize, a: &UBig) -> bool {
    let mut x = mont.pow(a, d);
    if x.is_one() || x == *n_minus_1 {
        return true;
    }
    for _ in 1..r {
        x = mont.mul_mod(&x, &x);
        if x == *n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false; // nontrivial square root of 1
        }
    }
    false
}

/// Probabilistic primality test.
///
/// Performs trial division by all primes below 2048, then `rounds`
/// Miller–Rabin rounds: the 12 smallest prime bases (which make the test
/// deterministic for `n < 3.3 * 10^24`) followed by random bases from `rng`.
pub fn is_prime<R: BigRng + ?Sized>(n: &UBig, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in small_primes() {
        let pb = UBig::from_u64(p);
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Beyond the table and not divisible by any table prime; n is odd here.
    debug_assert!(n.is_odd());
    let mont = Mont::new(n).expect("odd modulus");
    let n_minus_1 = n.sub(&UBig::one());
    let r = n_minus_1.trailing_zeros().expect("n-1 of odd n>2 is even");
    let d = n_minus_1.shr(r);

    const FIXED_BASES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
    for &a in FIXED_BASES.iter().take(rounds.clamp(1, 12)) {
        if !miller_rabin_round(&mont, &n_minus_1, &d, r, &UBig::from_u64(a)) {
            return false;
        }
    }
    let extra = rounds.saturating_sub(12);
    let two = UBig::from_u64(2);
    let span = n.sub(&UBig::from_u64(3)); // witnesses in [2, n-2]
    for _ in 0..extra {
        let a = &crate::rng::random_below(rng, &span) + &two;
        if !miller_rabin_round(&mont, &n_minus_1, &d, r, &a) {
            return false;
        }
    }
    true
}

/// Generates a random prime of exactly `bits` bits.
///
/// The top two bits are forced to 1 (so a product of two such primes has the
/// full expected bit length) and the value is forced odd.
///
/// # Panics
/// Panics if `bits < 16`.
pub fn gen_prime<R: BigRng + ?Sized>(bits: usize, rounds: usize, rng: &mut R) -> UBig {
    assert!(bits >= 16, "prime sizes below 16 bits are not supported");
    loop {
        let mut cand = crate::rng::random_bits(rng, bits);
        cand.set_bit(bits - 1);
        cand.set_bit(bits - 2);
        cand.set_bit(0);
        if is_prime(&cand, rounds, rng) {
            return cand;
        }
    }
}

/// Generates a prime `p` of exactly `bits` bits with `gcd(p-1, e) == 1`,
/// as RSA key generation requires for public exponent `e`.
pub fn gen_prime_coprime<R: BigRng + ?Sized>(
    bits: usize,
    rounds: usize,
    e: &UBig,
    rng: &mut R,
) -> UBig {
    loop {
        let p = gen_prime(bits, rounds, rng);
        if p.sub(&UBig::one()).gcd(e).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn small_prime_table_starts_correctly() {
        let t = small_primes();
        assert_eq!(&t[..10], &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(t.iter().all(|&p| p < 2048));
    }

    #[test]
    fn classifies_small_numbers() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 101, 1009, 2003, 7919, 104729];
        let composites = [0u64, 1, 4, 6, 9, 100, 1001, 2047, 7917, 104730];
        for p in primes {
            assert!(is_prime(&UBig::from_u64(p), 16, &mut r), "{p} is prime");
        }
        for c in composites {
            assert!(
                !is_prime(&UBig::from_u64(c), 16, &mut r),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn rejects_carmichael_numbers() {
        let mut r = rng();
        // Classic Carmichael numbers fool Fermat but not Miller-Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&UBig::from_u64(c), 16, &mut r), "{c}");
        }
    }

    #[test]
    fn recognizes_known_big_primes() {
        let mut r = rng();
        // 2^127 - 1 (Mersenne) and 2^255 - 19.
        let m127 = UBig::one().shl(127).sub(&UBig::one());
        assert!(is_prime(&m127, 16, &mut r));
        let p25519 = UBig::one().shl(255).sub(&UBig::from_u64(19));
        assert!(is_prime(&p25519, 16, &mut r));
        // 2^127 - 3 is composite.
        let c = UBig::one().shl(127).sub(&UBig::from_u64(3));
        assert!(!is_prime(&c, 16, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_size_and_pass() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = gen_prime(bits, 12, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(p.bit(bits - 2), "second-top bit forced");
            assert!(p.is_odd());
            assert!(is_prime(&p, 20, &mut r));
        }
    }

    #[test]
    fn coprime_generation_respects_e() {
        let mut r = rng();
        let e = UBig::from_u64(65537);
        let p = gen_prime_coprime(96, 12, &e, &mut r);
        assert!(p.sub(&UBig::one()).gcd(&e).is_one());
    }

    #[test]
    fn deterministic_given_seed() {
        let p1 = gen_prime(128, 12, &mut rng());
        let p2 = gen_prime(128, 12, &mut rng());
        assert_eq!(p1, p2);
    }
}
