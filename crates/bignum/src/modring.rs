//! Plain modular arithmetic helpers: addition/subtraction/multiplication
//! modulo `n`, the extended Euclidean algorithm, modular inverses, and the
//! Jacobi symbol.
//!
//! These are ring-entry/ring-exit utilities; the hot exponentiation path
//! lives in [`crate::Mont`].

use crate::ubig::UBig;
use crate::BigError;

/// `(a + b) mod n`.
pub fn add_mod(a: &UBig, b: &UBig, n: &UBig) -> UBig {
    (&a.rem(n) + &b.rem(n)).rem(n)
}

/// `(a - b) mod n` (wrapping into `[0, n)`).
pub fn sub_mod(a: &UBig, b: &UBig, n: &UBig) -> UBig {
    let a = a.rem(n);
    let b = b.rem(n);
    if a >= b {
        a.sub(&b)
    } else {
        (&a + n).sub(&b)
    }
}

/// `(a * b) mod n`.
pub fn mul_mod(a: &UBig, b: &UBig, n: &UBig) -> UBig {
    (&a.rem(n) * &b.rem(n)).rem(n)
}

/// A signed magnitude wrapper used inside the extended Euclid loop.
#[derive(Clone, Debug)]
struct Signed {
    mag: UBig,
    neg: bool,
}

impl Signed {
    fn pos(mag: UBig) -> Self {
        Signed { mag, neg: false }
    }

    /// self - other
    fn sub(&self, other: &Signed) -> Signed {
        match (self.neg, other.neg) {
            (false, true) => Signed::pos(&self.mag + &other.mag),
            (true, false) => Signed {
                mag: &self.mag + &other.mag,
                neg: true,
            },
            (sn, _) => {
                // same sign: magnitude subtraction, sign flips if |other|>|self|
                if self.mag >= other.mag {
                    Signed {
                        mag: self.mag.sub(&other.mag),
                        neg: sn && !self.mag.sub(&other.mag).is_zero(),
                    }
                } else {
                    Signed {
                        mag: other.mag.sub(&self.mag),
                        neg: !sn,
                    }
                }
            }
        }
    }

    fn mul(&self, q: &UBig) -> Signed {
        Signed {
            mag: &self.mag * q,
            neg: self.neg && !q.is_zero(),
        }
    }
}

/// Extended GCD: returns `(g, x)` with `a*x ≡ g (mod n)` and `g = gcd(a, n)`.
///
/// `x` is returned already reduced into `[0, n)`.
pub fn ext_gcd_mod(a: &UBig, n: &UBig) -> Result<(UBig, UBig), BigError> {
    if n.is_zero() {
        return Err(BigError::DivideByZero);
    }
    let mut old_r = a.rem(n);
    let mut r = n.clone();
    let mut old_s = Signed::pos(UBig::one());
    let mut s = Signed::pos(UBig::zero());
    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let new_s = old_s.sub(&s.mul(&q));
        old_s = std::mem::replace(&mut s, new_s);
    }
    // old_r = gcd, old_s = Bezout coefficient for a.
    let x = if old_s.neg {
        sub_mod(n, &old_s.mag.rem(n), n)
    } else {
        old_s.mag.rem(n)
    };
    Ok((old_r, x))
}

/// Modular inverse: `a^{-1} mod n`, failing when `gcd(a, n) != 1`.
pub fn inv_mod(a: &UBig, n: &UBig) -> Result<UBig, BigError> {
    let (g, x) = ext_gcd_mod(a, n)?;
    if g.is_one() {
        Ok(x)
    } else {
        Err(BigError::NotInvertible)
    }
}

/// Jacobi symbol `(a / n)` for odd positive `n`; returns -1, 0 or 1.
pub fn jacobi(a: &UBig, n: &UBig) -> Result<i32, BigError> {
    if n.is_even() || n.is_zero() {
        return Err(BigError::OutOfRange("jacobi requires odd positive n"));
    }
    let mut a = a.rem(n);
    let mut n = n.clone();
    let mut sign = 1i32;
    while !a.is_zero() {
        while a.is_even() {
            a = a.shr(1);
            // (2/n) = -1 iff n ≡ 3,5 (mod 8)
            let n_mod8 = n.limbs().first().copied().unwrap_or(0) & 7;
            if n_mod8 == 3 || n_mod8 == 5 {
                sign = -sign;
            }
        }
        std::mem::swap(&mut a, &mut n);
        // Quadratic reciprocity: flip if both ≡ 3 (mod 4).
        let a4 = a.limbs().first().copied().unwrap_or(0) & 3;
        let n4 = n.limbs().first().copied().unwrap_or(0) & 3;
        if a4 == 3 && n4 == 3 {
            sign = -sign;
        }
        a = a.rem(&n);
    }
    if n.is_one() {
        Ok(sign)
    } else {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> UBig {
        UBig::from_u64(v)
    }

    #[test]
    fn add_sub_mod_wrap() {
        let n = u(97);
        assert_eq!(add_mod(&u(96), &u(5), &n), u(4));
        assert_eq!(sub_mod(&u(3), &u(5), &n), u(95));
        assert_eq!(sub_mod(&u(5), &u(5), &n), u(0));
        assert_eq!(mul_mod(&u(96), &u(96), &n), u(1));
    }

    #[test]
    fn inv_mod_small_field() {
        let p = u(101);
        for a in 1..101u64 {
            let inv = inv_mod(&u(a), &p).unwrap();
            assert_eq!(mul_mod(&u(a), &inv, &p), u(1), "a={a}");
        }
    }

    #[test]
    fn inv_mod_rejects_noncoprime() {
        assert_eq!(inv_mod(&u(6), &u(9)), Err(BigError::NotInvertible));
        assert_eq!(inv_mod(&u(0), &u(7)), Err(BigError::NotInvertible));
    }

    #[test]
    fn inv_mod_large() {
        let n = UBig::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff").unwrap();
        let a = UBig::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        let inv = inv_mod(&a, &n).unwrap();
        assert_eq!(mul_mod(&a, &inv, &n), UBig::one());
    }

    #[test]
    fn ext_gcd_reports_gcd() {
        let (g, _) = ext_gcd_mod(&u(12), &u(18)).unwrap();
        assert_eq!(g, u(6));
        let (g, x) = ext_gcd_mod(&u(7), &u(13)).unwrap();
        assert_eq!(g, u(1));
        assert_eq!(mul_mod(&u(7), &x, &u(13)), u(1));
    }

    #[test]
    fn jacobi_prime_is_legendre() {
        // For p = 11: squares are 1,3,4,5,9.
        let p = u(11);
        let squares = [1u64, 3, 4, 5, 9];
        for a in 1..11u64 {
            let expect = if squares.contains(&a) { 1 } else { -1 };
            assert_eq!(jacobi(&u(a), &p).unwrap(), expect, "a={a}");
        }
        assert_eq!(jacobi(&u(0), &p).unwrap(), 0);
        assert_eq!(jacobi(&u(22), &p).unwrap(), 0);
    }

    #[test]
    fn jacobi_rejects_even_n() {
        assert!(jacobi(&u(3), &u(8)).is_err());
    }

    #[test]
    fn jacobi_composite() {
        // (2/15) = (2/3)(2/5) = (-1)(-1) = 1
        assert_eq!(jacobi(&u(2), &u(15)).unwrap(), 1);
        // (7/15): (7/3)=(1/3)=1, (7/5)=(2/5)=-1 -> -1
        assert_eq!(jacobi(&u(7), &u(15)).unwrap(), -1);
    }
}
