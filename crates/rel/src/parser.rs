//! Recursive-descent parser for the REL text form.
//!
//! Grammar (statements separated by `;`):
//!
//! ```text
//! rights     := statement*
//! statement  := grant | valid | bind | region
//! grant      := "grant" action ("count" "=" NUMBER | "unlimited")?
//! action     := "play" | "copy" | "transfer"
//! valid      := "valid" ("from" "=" NUMBER)? ("until" "=" NUMBER)?
//! bind       := "bind" ("device" "=" HEX32 | "domain" "=" STRING)
//! region     := "region" STRING+
//! ```
//!
//! A bare `grant play;` means `count=1`.

use crate::ast::{Limit, Rights, Window};
use crate::lexer::{lex, LexError, Token, TokenKind};
use std::fmt;

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (offset, found, expected).
    Unexpected {
        /// Byte offset.
        offset: usize,
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Input ended mid-statement.
    UnexpectedEnd {
        /// What was expected.
        expected: &'static str,
    },
    /// Semantic problem (duplicate grant, bad device id length, ...).
    Semantic(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                offset,
                found,
                expected,
            } => {
                write!(f, "at byte {offset}: found {found}, expected {expected}")
            }
            ParseError::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self, expected: &'static str) -> Result<&Token, ParseError> {
        let tok = self
            .tokens
            .get(self.pos)
            .ok_or(ParseError::UnexpectedEnd { expected })?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<(String, usize), ParseError> {
        let tok = self.next(expected)?;
        match &tok.kind {
            TokenKind::Ident(s) => Ok((s.clone(), tok.offset)),
            other => Err(ParseError::Unexpected {
                offset: tok.offset,
                found: other.to_string(),
                expected,
            }),
        }
    }

    fn expect_kind(&mut self, want: TokenKind, expected: &'static str) -> Result<(), ParseError> {
        let tok = self.next(expected)?;
        if tok.kind == want {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                offset: tok.offset,
                found: tok.kind.to_string(),
                expected,
            })
        }
    }

    fn expect_number(&mut self, expected: &'static str) -> Result<u64, ParseError> {
        let tok = self.next(expected)?;
        match tok.kind {
            TokenKind::Number(n) => Ok(n),
            ref other => Err(ParseError::Unexpected {
                offset: tok.offset,
                found: other.to_string(),
                expected,
            }),
        }
    }
}

/// Parses REL source into [`Rights`].
pub fn parse(src: &str) -> Result<Rights, ParseError> {
    let mut p = Parser {
        tokens: lex(src)?,
        pos: 0,
    };
    let mut rights = Rights::default();
    let mut granted = [false; 3];
    let mut window_seen = false;

    while p.peek().is_some() {
        let (word, offset) = p.expect_ident("statement keyword")?;
        match word.as_str() {
            "grant" => {
                let (action_word, a_off) = p.expect_ident("action (play/copy/transfer)")?;
                let idx = match action_word.as_str() {
                    "play" => 0usize,
                    "copy" => 1,
                    "transfer" => 2,
                    _ => {
                        return Err(ParseError::Unexpected {
                            offset: a_off,
                            found: format!("identifier `{action_word}`"),
                            expected: "play, copy or transfer",
                        })
                    }
                };
                if granted[idx] {
                    return Err(ParseError::Semantic(format!(
                        "duplicate grant for `{action_word}`"
                    )));
                }
                granted[idx] = true;
                let limit = match p.peek() {
                    Some(TokenKind::Semicolon) => Limit::Count(1),
                    Some(TokenKind::Ident(kw)) if kw == "unlimited" => {
                        p.next("unlimited")?;
                        Limit::Unlimited
                    }
                    Some(TokenKind::Ident(kw)) if kw == "count" => {
                        p.next("count")?;
                        p.expect_kind(TokenKind::Equals, "`=` after count")?;
                        let n = p.expect_number("count value")?;
                        if n > u32::MAX as u64 {
                            return Err(ParseError::Semantic("count exceeds u32".into()));
                        }
                        Limit::Count(n as u32)
                    }
                    _ => {
                        return Err(ParseError::Unexpected {
                            offset,
                            found: p
                                .peek()
                                .map(|k| k.to_string())
                                .unwrap_or_else(|| "end of input".into()),
                            expected: "`count=N`, `unlimited` or `;`",
                        })
                    }
                };
                match idx {
                    0 => rights.play = limit,
                    1 => rights.copy = limit,
                    _ => rights.transfer = limit,
                }
            }
            "valid" => {
                if window_seen {
                    return Err(ParseError::Semantic("duplicate valid statement".into()));
                }
                window_seen = true;
                let mut window = Window::default();
                while let Some(TokenKind::Ident(kw)) = p.peek() {
                    let bound = kw.clone();
                    match bound.as_str() {
                        "from" | "until" => {
                            p.next("bound")?;
                            p.expect_kind(TokenKind::Equals, "`=` after bound")?;
                            let n = p.expect_number("timestamp")?;
                            if bound == "from" {
                                if window.from.is_some() {
                                    return Err(ParseError::Semantic("duplicate from".into()));
                                }
                                window.from = Some(n);
                            } else {
                                if window.until.is_some() {
                                    return Err(ParseError::Semantic("duplicate until".into()));
                                }
                                window.until = Some(n);
                            }
                        }
                        _ => break,
                    }
                }
                if window.is_unbounded() {
                    return Err(ParseError::Semantic(
                        "valid statement needs from= and/or until=".into(),
                    ));
                }
                if let (Some(f), Some(u)) = (window.from, window.until) {
                    if f > u {
                        return Err(ParseError::Semantic("window from > until".into()));
                    }
                }
                rights.window = window;
            }
            "bind" => {
                let (what, w_off) = p.expect_ident("device or domain")?;
                p.expect_kind(TokenKind::Equals, "`=` after bind target")?;
                match what.as_str() {
                    "device" => {
                        if rights.device.is_some() {
                            return Err(ParseError::Semantic("duplicate device bind".into()));
                        }
                        let tok = p.next("hex device id")?;
                        match &tok.kind {
                            TokenKind::Hex(bytes) if bytes.len() == 32 => {
                                rights.device = Some(bytes.as_slice().try_into().unwrap());
                            }
                            TokenKind::Hex(bytes) => {
                                return Err(ParseError::Semantic(format!(
                                    "device id must be 32 bytes, got {}",
                                    bytes.len()
                                )))
                            }
                            other => {
                                return Err(ParseError::Unexpected {
                                    offset: tok.offset,
                                    found: other.to_string(),
                                    expected: "hex device id",
                                })
                            }
                        }
                    }
                    "domain" => {
                        if rights.domain.is_some() {
                            return Err(ParseError::Semantic("duplicate domain bind".into()));
                        }
                        let tok = p.next("domain string")?;
                        match &tok.kind {
                            TokenKind::Str(s) => rights.domain = Some(s.clone()),
                            other => {
                                return Err(ParseError::Unexpected {
                                    offset: tok.offset,
                                    found: other.to_string(),
                                    expected: "quoted domain string",
                                })
                            }
                        }
                    }
                    _ => {
                        return Err(ParseError::Unexpected {
                            offset: w_off,
                            found: format!("identifier `{what}`"),
                            expected: "device or domain",
                        })
                    }
                }
            }
            "region" => {
                let mut any = false;
                while let Some(TokenKind::Str(_)) = p.peek() {
                    let tok = p.next("region string")?;
                    if let TokenKind::Str(s) = &tok.kind {
                        rights.regions.push(s.to_uppercase());
                        any = true;
                    }
                }
                if !any {
                    return Err(ParseError::Semantic(
                        "region needs at least one code".into(),
                    ));
                }
            }
            _ => {
                return Err(ParseError::Unexpected {
                    offset,
                    found: format!("identifier `{word}`"),
                    expected: "grant, valid, bind or region",
                })
            }
        }
        p.expect_kind(TokenKind::Semicolon, "`;` to end statement")?;
    }
    rights.regions.sort();
    rights.regions.dedup();
    Ok(rights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Action;

    #[test]
    fn full_example() {
        let r = parse(
            "grant play count=5; grant copy unlimited; grant transfer; \
             valid from=100 until=200; bind domain=\"home\"; region \"eu\" \"us\";",
        )
        .unwrap();
        assert_eq!(r.play, Limit::Count(5));
        assert_eq!(r.copy, Limit::Unlimited);
        assert_eq!(r.transfer, Limit::Count(1));
        assert_eq!(r.window.from, Some(100));
        assert_eq!(r.window.until, Some(200));
        assert_eq!(r.domain.as_deref(), Some("home"));
        assert_eq!(r.regions, vec!["EU".to_string(), "US".to_string()]);
    }

    #[test]
    fn device_bind_roundtrip() {
        let hex: String = (0..32).map(|i| format!("{i:02x}")).collect();
        let r = parse(&format!("bind device=0x{hex};")).unwrap();
        let d = r.device.unwrap();
        assert_eq!(d[0], 0);
        assert_eq!(d[31], 31);
    }

    #[test]
    fn empty_source_is_empty_rights() {
        let r = parse("").unwrap();
        assert_eq!(r, Rights::default());
        for a in Action::ALL {
            assert_eq!(r.limit(a), Limit::None);
        }
    }

    #[test]
    fn duplicate_grant_rejected() {
        assert!(matches!(
            parse("grant play; grant play;"),
            Err(ParseError::Semantic(_))
        ));
    }

    #[test]
    fn window_sanity_checks() {
        assert!(parse("valid;").is_err());
        assert!(parse("valid from=5 until=4;").is_err());
        assert!(parse("valid from=1 from=2;").is_err());
        assert!(parse("valid until=9;").is_ok());
    }

    #[test]
    fn missing_semicolon() {
        // "grant play" ends where a limit or `;` should follow.
        assert!(matches!(
            parse("grant play"),
            Err(ParseError::UnexpectedEnd { .. }) | Err(ParseError::Unexpected { .. })
        ));
        assert!(matches!(
            parse("grant play count=3"),
            Err(ParseError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn bad_keyword_reports_offset() {
        match parse("  frobnicate;") {
            Err(ParseError::Unexpected { offset, .. }) => assert_eq!(offset, 2),
            other => panic!("expected Unexpected, got {other:?}"),
        }
    }

    #[test]
    fn wrong_device_length_rejected() {
        assert!(matches!(
            parse("bind device=0xdeadbeef;"),
            Err(ParseError::Semantic(_))
        ));
    }

    #[test]
    fn count_overflow_rejected() {
        assert!(matches!(
            parse("grant play count=4294967296;"),
            Err(ParseError::Semantic(_))
        ));
        assert!(parse("grant play count=4294967295;").is_ok());
    }

    #[test]
    fn region_requires_codes_and_dedups() {
        assert!(parse("region;").is_err());
        let r = parse("region \"us\" \"US\" \"eu\";").unwrap();
        assert_eq!(r.regions, vec!["EU".to_string(), "US".to_string()]);
    }
}
