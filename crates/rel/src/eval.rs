//! Stateful rights enforcement: the decision procedure a compliant device
//! runs before rendering, copying or transferring.

use crate::ast::{Action, Rights};
use crate::RightsState;
use std::fmt;

/// A concrete access request evaluated against a license.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessRequest {
    /// Requested action.
    pub action: Action,
    /// Evaluation time (unix seconds).
    pub now: u64,
    /// Requesting device id.
    pub device: [u8; 32],
    /// Domain the device belongs to, if any.
    pub domain: Option<String>,
    /// Region the device reports, if any.
    pub region: Option<String>,
}

impl AccessRequest {
    /// Play request with minimal context.
    pub fn play(now: u64, device: [u8; 32]) -> Self {
        AccessRequest {
            action: Action::Play,
            now,
            device,
            domain: None,
            region: None,
        }
    }

    /// Same request with a different action.
    pub fn with_action(mut self, action: Action) -> Self {
        self.action = action;
        self
    }

    /// Sets the domain context.
    pub fn in_domain(mut self, domain: impl Into<String>) -> Self {
        self.domain = Some(domain.into());
        self
    }

    /// Sets the region context.
    pub fn in_region(mut self, region: impl Into<String>) -> Self {
        self.region = Some(region.into().to_uppercase());
        self
    }
}

/// Why a request was denied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DenyReason {
    /// The action is not granted at all.
    NotGranted(Action),
    /// The action's count is used up.
    CountExhausted(Action),
    /// Request time before the window.
    NotYetValid { from: u64, now: u64 },
    /// Request time after the window.
    Expired { until: u64, now: u64 },
    /// License bound to a different device.
    WrongDevice,
    /// License bound to a different domain (or device has none).
    WrongDomain,
    /// Region not in the allowlist (or device reports none).
    RegionBlocked,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::NotGranted(a) => write!(f, "{} not granted", a.keyword()),
            DenyReason::CountExhausted(a) => write!(f, "{} count exhausted", a.keyword()),
            DenyReason::NotYetValid { from, now } => {
                write!(f, "not valid until {from} (now {now})")
            }
            DenyReason::Expired { until, now } => write!(f, "expired at {until} (now {now})"),
            DenyReason::WrongDevice => write!(f, "license bound to a different device"),
            DenyReason::WrongDomain => write!(f, "license bound to a different domain"),
            DenyReason::RegionBlocked => write!(f, "region not permitted"),
        }
    }
}

/// Outcome of evaluating a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Allowed; the caller must then [`RightsState::consume`] the action.
    Permit,
    /// Denied with the first failing check.
    Deny(DenyReason),
}

impl Decision {
    /// True for [`Decision::Permit`].
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::Permit)
    }
}

impl Rights {
    /// Evaluates `req` against these rights and accumulated `state`.
    ///
    /// Check order (first failure wins): validity window, device binding,
    /// domain binding, region, grant/count. The order is part of the public
    /// contract — transcripts in experiment E4 depend on it.
    pub fn evaluate(&self, state: &RightsState, req: &AccessRequest) -> Decision {
        if let Some(from) = self.window.from {
            if req.now < from {
                return Decision::Deny(DenyReason::NotYetValid { from, now: req.now });
            }
        }
        if let Some(until) = self.window.until {
            if req.now > until {
                return Decision::Deny(DenyReason::Expired {
                    until,
                    now: req.now,
                });
            }
        }
        if let Some(bound) = &self.device {
            if bound != &req.device {
                return Decision::Deny(DenyReason::WrongDevice);
            }
        }
        if let Some(domain) = &self.domain {
            if req.domain.as_deref() != Some(domain.as_str()) {
                return Decision::Deny(DenyReason::WrongDomain);
            }
        }
        if !self.regions.is_empty() {
            match &req.region {
                Some(r) if self.regions.iter().any(|allowed| allowed == r) => {}
                _ => return Decision::Deny(DenyReason::RegionBlocked),
            }
        }
        let limit = self.limit(req.action);
        if limit == crate::Limit::None {
            return Decision::Deny(DenyReason::NotGranted(req.action));
        }
        if !limit.allows(state.used(req.action)) {
            return Decision::Deny(DenyReason::CountExhausted(req.action));
        }
        Decision::Permit
    }

    /// Evaluates and, on permit, consumes in one step.
    pub fn evaluate_and_consume(&self, state: &mut RightsState, req: &AccessRequest) -> Decision {
        let d = self.evaluate(state, req);
        if d.is_permit() {
            state.consume(req.action);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Limit, RightsBuilder};

    const DEV_A: [u8; 32] = [1u8; 32];
    const DEV_B: [u8; 32] = [2u8; 32];

    fn play_rights(n: u32) -> Rights {
        RightsBuilder::default().play(Limit::Count(n)).build()
    }

    #[test]
    fn count_exhaustion() {
        let r = play_rights(2);
        let mut state = RightsState::new();
        let req = AccessRequest::play(0, DEV_A);
        assert!(r.evaluate_and_consume(&mut state, &req).is_permit());
        assert!(r.evaluate_and_consume(&mut state, &req).is_permit());
        assert_eq!(
            r.evaluate_and_consume(&mut state, &req),
            Decision::Deny(DenyReason::CountExhausted(Action::Play))
        );
        // Failed attempts must not consume.
        assert_eq!(state.plays_used, 2);
    }

    #[test]
    fn not_granted_action() {
        let r = play_rights(5);
        let req = AccessRequest::play(0, DEV_A).with_action(Action::Copy);
        assert_eq!(
            r.evaluate(&RightsState::new(), &req),
            Decision::Deny(DenyReason::NotGranted(Action::Copy))
        );
    }

    #[test]
    fn window_checks_dominate() {
        let r = RightsBuilder::default()
            .play(Limit::Unlimited)
            .window(Some(100), Some(200))
            .build();
        let s = RightsState::new();
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(99, DEV_A)),
            Decision::Deny(DenyReason::NotYetValid { from: 100, now: 99 })
        );
        assert!(r.evaluate(&s, &AccessRequest::play(100, DEV_A)).is_permit());
        assert!(r.evaluate(&s, &AccessRequest::play(200, DEV_A)).is_permit());
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(201, DEV_A)),
            Decision::Deny(DenyReason::Expired {
                until: 200,
                now: 201
            })
        );
    }

    #[test]
    fn device_binding() {
        let r = RightsBuilder::default()
            .play(Limit::Unlimited)
            .device(DEV_A)
            .build();
        let s = RightsState::new();
        assert!(r.evaluate(&s, &AccessRequest::play(0, DEV_A)).is_permit());
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(0, DEV_B)),
            Decision::Deny(DenyReason::WrongDevice)
        );
    }

    #[test]
    fn domain_binding() {
        let r = RightsBuilder::default()
            .play(Limit::Unlimited)
            .domain("home")
            .build();
        let s = RightsState::new();
        assert!(r
            .evaluate(&s, &AccessRequest::play(0, DEV_A).in_domain("home"))
            .is_permit());
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(0, DEV_A).in_domain("work")),
            Decision::Deny(DenyReason::WrongDomain)
        );
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(0, DEV_A)),
            Decision::Deny(DenyReason::WrongDomain)
        );
    }

    #[test]
    fn region_allowlist() {
        let r = RightsBuilder::default()
            .play(Limit::Unlimited)
            .region("EU")
            .region("JP")
            .build();
        let s = RightsState::new();
        assert!(r
            .evaluate(&s, &AccessRequest::play(0, DEV_A).in_region("eu"))
            .is_permit());
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(0, DEV_A).in_region("US")),
            Decision::Deny(DenyReason::RegionBlocked)
        );
        assert_eq!(
            r.evaluate(&s, &AccessRequest::play(0, DEV_A)),
            Decision::Deny(DenyReason::RegionBlocked)
        );
    }

    #[test]
    fn check_order_window_before_device() {
        // Both window and device fail; window must be reported.
        let r = RightsBuilder::default()
            .play(Limit::Unlimited)
            .window(Some(10), None)
            .device(DEV_A)
            .build();
        assert_eq!(
            r.evaluate(&RightsState::new(), &AccessRequest::play(0, DEV_B)),
            Decision::Deny(DenyReason::NotYetValid { from: 10, now: 0 })
        );
    }

    #[test]
    fn transfers_counted_independently() {
        let r = RightsBuilder::default()
            .play(Limit::Unlimited)
            .transfer(Limit::Count(1))
            .build();
        let mut s = RightsState::new();
        let t = AccessRequest::play(0, DEV_A).with_action(Action::Transfer);
        assert!(r.evaluate_and_consume(&mut s, &t).is_permit());
        assert!(!r.evaluate_and_consume(&mut s, &t).is_permit());
        // plays unaffected
        assert!(r.evaluate(&s, &AccessRequest::play(0, DEV_A)).is_permit());
    }
}
