//! Hand-written lexer for the REL text form.

use std::fmt;

/// A lexical token with its source offset (for error messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Bare identifier/keyword (`grant`, `play`, `count`, ...).
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// Double-quoted string literal (no escapes, no inner quotes).
    Str(String),
    /// Hex byte-string literal (`0x` prefix, even length).
    Hex(Vec<u8>),
    /// `=`
    Equals,
    /// `;`
    Semicolon,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Hex(b) => write!(f, "hex literal ({} bytes)", b.len()),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::Semicolon => write!(f, "`;`"),
        }
    }
}

/// Lexing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable complaint.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Equals,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string".into(),
                        });
                    }
                    let ch = bytes[i] as char;
                    if ch == '"' {
                        i += 1;
                        break;
                    }
                    if ch == '\n' {
                        return Err(LexError {
                            offset: start,
                            message: "newline in string".into(),
                        });
                    }
                    s.push(ch);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '0' if i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') => {
                let start = i;
                i += 2;
                let hex_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let hex = &src[hex_start..i];
                if hex.is_empty() || !hex.len().is_multiple_of(2) {
                    return Err(LexError {
                        offset: start,
                        message: "hex literal must have even nonzero length".into(),
                    });
                }
                let v = (0..hex.len())
                    .step_by(2)
                    .map(|j| u8::from_str_radix(&hex[j..j + 2], 16).unwrap())
                    .collect();
                tokens.push(Token {
                    kind: TokenKind::Hex(v),
                    offset: start,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = src[start..i].parse().map_err(|_| LexError {
                    offset: start,
                    message: "number too large".into(),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            kinds("grant play count=5;"),
            vec![
                TokenKind::Ident("grant".into()),
                TokenKind::Ident("play".into()),
                TokenKind::Ident("count".into()),
                TokenKind::Equals,
                TokenKind::Number(5),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn strings_hex_comments() {
        assert_eq!(
            kinds("bind domain=\"home net\"; # comment\n0xdeadBEEF"),
            vec![
                TokenKind::Ident("bind".into()),
                TokenKind::Ident("domain".into()),
                TokenKind::Equals,
                TokenKind::Str("home net".into()),
                TokenKind::Semicolon,
                TokenKind::Hex(vec![0xde, 0xad, 0xbe, 0xef]),
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("  grant\nplay").unwrap();
        assert_eq!(toks[0].offset, 2);
        assert_eq!(toks[1].offset, 8);
    }

    #[test]
    fn error_cases() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("0x1").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("@").is_err());
        assert!(lex("99999999999999999999999").is_err());
        assert!(lex("\"line\nbreak\"").is_err());
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n\t# only a comment").unwrap().is_empty());
    }
}
