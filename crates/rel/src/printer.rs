//! Canonical pretty-printer: `parse(print(r)) == r` for every `Rights`.

use crate::ast::{Limit, Rights};
use std::fmt::Write as _;

/// Renders `rights` in canonical statement order: grants (play, copy,
/// transfer), validity, device bind, domain bind, regions.
pub fn print(rights: &Rights) -> String {
    let mut out = String::new();
    for (name, limit) in [
        ("play", rights.play),
        ("copy", rights.copy),
        ("transfer", rights.transfer),
    ] {
        match limit {
            Limit::None => {}
            Limit::Count(1) => {
                let _ = write!(out, "grant {name}; ");
            }
            Limit::Count(n) => {
                let _ = write!(out, "grant {name} count={n}; ");
            }
            Limit::Unlimited => {
                let _ = write!(out, "grant {name} unlimited; ");
            }
        }
    }
    if !rights.window.is_unbounded() {
        let _ = write!(out, "valid");
        if let Some(f) = rights.window.from {
            let _ = write!(out, " from={f}");
        }
        if let Some(u) = rights.window.until {
            let _ = write!(out, " until={u}");
        }
        let _ = write!(out, "; ");
    }
    if let Some(device) = &rights.device {
        let hex: String = device.iter().map(|b| format!("{b:02x}")).collect();
        let _ = write!(out, "bind device=0x{hex}; ");
    }
    if let Some(domain) = &rights.domain {
        let _ = write!(out, "bind domain=\"{domain}\"; ");
    }
    if !rights.regions.is_empty() {
        let _ = write!(out, "region");
        for r in &rights.regions {
            let _ = write!(out, " \"{r}\"");
        }
        let _ = write!(out, "; ");
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RightsBuilder;
    use crate::parse;

    #[test]
    fn print_then_parse_identity() {
        let r = RightsBuilder::default()
            .play(Limit::Count(5))
            .copy(Limit::Unlimited)
            .transfer(Limit::Count(1))
            .window(Some(10), Some(99))
            .device([0xab; 32])
            .domain("family")
            .region("jp")
            .build();
        let text = print(&r);
        assert_eq!(parse(&text).unwrap(), r);
    }

    #[test]
    fn empty_rights_prints_empty() {
        assert_eq!(print(&Rights::default()), "");
        assert_eq!(parse("").unwrap(), Rights::default());
    }

    #[test]
    fn count_one_prints_bare_grant() {
        let r = RightsBuilder::default().play(Limit::Count(1)).build();
        assert_eq!(print(&r), "grant play;");
    }

    #[test]
    fn printing_is_deterministic() {
        let r = RightsBuilder::default()
            .region("us")
            .region("eu")
            .play(Limit::Unlimited)
            .build();
        assert_eq!(print(&r), print(&r.clone()));
        assert!(print(&r).starts_with("grant play unlimited; region"));
    }
}
