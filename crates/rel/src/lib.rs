//! Rights Expression Language (REL) for P2DRM.
//!
//! Licenses carry a [`Rights`] value describing what the holder may do:
//! bounded or unlimited *play*/*copy*/*transfer* actions, a validity
//! window, device binding, domain binding and region restrictions. Compliant
//! devices evaluate requests against the rights **and** the license's
//! accumulated [`RightsState`], then persist the updated state — that is
//! the enforcement loop the paper's compliant-device model requires.
//!
//! The language has three interchangeable forms:
//!
//! * a typed AST ([`Rights`]) used programmatically,
//! * a canonical text form (`grant play count=5; valid until=...;`) with a
//!   hand-written lexer/parser and pretty-printer (`parse ∘ print = id`),
//! * a canonical binary form via [`p2drm_codec`] for embedding in signed
//!   licenses.
//!
//! ```
//! use p2drm_rel::{parse, Action, AccessRequest, Decision, Rights, RightsState};
//!
//! let rights = parse("grant play count=2; valid from=100 until=200;").unwrap();
//! let mut state = RightsState::new();
//! let req = AccessRequest::play(150, [0u8; 32]);
//! assert_eq!(rights.evaluate(&state, &req), Decision::Permit);
//! state.consume(Action::Play);
//! state.consume(Action::Play);
//! assert!(matches!(rights.evaluate(&state, &req), Decision::Deny(_)));
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{Action, Limit, Rights, RightsBuilder, Window};
pub use eval::{AccessRequest, Decision, DenyReason};
pub use parser::{parse, ParseError};

/// Per-license consumption counters, persisted by the enforcing device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RightsState {
    /// Plays consumed so far.
    pub plays_used: u32,
    /// Copies made so far.
    pub copies_used: u32,
    /// Transfers performed so far.
    pub transfers_used: u32,
}

impl RightsState {
    /// Fresh state (nothing consumed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Usage counter for `action`.
    pub fn used(&self, action: Action) -> u32 {
        match action {
            Action::Play => self.plays_used,
            Action::Copy => self.copies_used,
            Action::Transfer => self.transfers_used,
        }
    }

    /// Records one consumption of `action`.
    pub fn consume(&mut self, action: Action) {
        match action {
            Action::Play => self.plays_used += 1,
            Action::Copy => self.copies_used += 1,
            Action::Transfer => self.transfers_used += 1,
        }
    }
}

impl p2drm_codec::Encode for RightsState {
    fn encode(&self, w: &mut p2drm_codec::Writer) {
        w.put_u32(self.plays_used);
        w.put_u32(self.copies_used);
        w.put_u32(self.transfers_used);
    }
}

impl p2drm_codec::Decode for RightsState {
    fn decode(r: &mut p2drm_codec::Reader) -> p2drm_codec::Result<Self> {
        Ok(RightsState {
            plays_used: r.get_u32()?,
            copies_used: r.get_u32()?,
            transfers_used: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_counters() {
        let mut s = RightsState::new();
        assert_eq!(s.used(Action::Play), 0);
        s.consume(Action::Play);
        s.consume(Action::Play);
        s.consume(Action::Transfer);
        assert_eq!(s.used(Action::Play), 2);
        assert_eq!(s.used(Action::Copy), 0);
        assert_eq!(s.used(Action::Transfer), 1);
    }

    #[test]
    fn state_codec_roundtrip() {
        let s = RightsState {
            plays_used: 1,
            copies_used: 2,
            transfers_used: 3,
        };
        let bytes = p2drm_codec::to_bytes(&s);
        assert_eq!(p2drm_codec::from_bytes::<RightsState>(&bytes).unwrap(), s);
    }
}
