//! The typed rights AST: actions, limits, windows, bindings.

use p2drm_codec::{Decode, Encode, Reader, Writer};

/// An action a license holder may request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Render the content.
    Play,
    /// Make a (protected) copy for another owned device.
    Copy,
    /// Transfer the license to another user.
    Transfer,
}

impl Action {
    /// All actions, in canonical order.
    pub const ALL: [Action; 3] = [Action::Play, Action::Copy, Action::Transfer];

    /// Canonical keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Action::Play => "play",
            Action::Copy => "copy",
            Action::Transfer => "transfer",
        }
    }

    fn discriminant(self) -> u8 {
        match self {
            Action::Play => 0,
            Action::Copy => 1,
            Action::Transfer => 2,
        }
    }

    fn from_discriminant(d: u8) -> Option<Self> {
        Some(match d {
            0 => Action::Play,
            1 => Action::Copy,
            2 => Action::Transfer,
            _ => return None,
        })
    }
}

impl Encode for Action {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.discriminant());
    }
}

impl Decode for Action {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        let d = r.get_u8()?;
        Self::from_discriminant(d).ok_or(p2drm_codec::CodecError::BadDiscriminant(d))
    }
}

/// Usage limit for an action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limit {
    /// Action not granted at all.
    None,
    /// Up to `n` uses.
    Count(u32),
    /// Unlimited uses.
    Unlimited,
}

impl Limit {
    /// Whether `used` consumptions still leave headroom.
    pub fn allows(&self, used: u32) -> bool {
        match self {
            Limit::None => false,
            Limit::Count(n) => used < *n,
            Limit::Unlimited => true,
        }
    }

    /// Remaining uses (`None` for unlimited).
    pub fn remaining(&self, used: u32) -> Option<u32> {
        match self {
            Limit::None => Some(0),
            Limit::Count(n) => Some(n.saturating_sub(used)),
            Limit::Unlimited => None,
        }
    }
}

impl Encode for Limit {
    fn encode(&self, w: &mut Writer) {
        match self {
            Limit::None => w.put_u8(0),
            Limit::Count(n) => {
                w.put_u8(1);
                w.put_u32(*n);
            }
            Limit::Unlimited => w.put_u8(2),
        }
    }
}

impl Decode for Limit {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        match r.get_u8()? {
            0 => Ok(Limit::None),
            1 => Ok(Limit::Count(r.get_u32()?)),
            2 => Ok(Limit::Unlimited),
            d => Err(p2drm_codec::CodecError::BadDiscriminant(d)),
        }
    }
}

/// Half-open-free validity window `[from, until]` in unix seconds; either
/// bound may be absent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Window {
    /// Earliest valid second (None = no lower bound).
    pub from: Option<u64>,
    /// Latest valid second (None = no upper bound).
    pub until: Option<u64>,
}

impl Window {
    /// True when `now` is inside the window.
    pub fn contains(&self, now: u64) -> bool {
        self.from.is_none_or(|f| now >= f) && self.until.is_none_or(|u| now <= u)
    }

    /// True when no bounds are set.
    pub fn is_unbounded(&self) -> bool {
        self.from.is_none() && self.until.is_none()
    }
}

impl Encode for Window {
    fn encode(&self, w: &mut Writer) {
        w.put_option(&self.from);
        w.put_option(&self.until);
    }
}

impl Decode for Window {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(Window {
            from: r.get_option()?,
            until: r.get_option()?,
        })
    }
}

/// A complete rights expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rights {
    /// Play limit.
    pub play: Limit,
    /// Copy limit.
    pub copy: Limit,
    /// Transfer limit.
    pub transfer: Limit,
    /// Validity window.
    pub window: Window,
    /// Device binding: if set, only this device (by 32-byte id) may render.
    pub device: Option<[u8; 32]>,
    /// Authorized-domain binding (domain name).
    pub domain: Option<String>,
    /// Region allowlist (empty = everywhere); uppercase codes.
    pub regions: Vec<String>,
}

impl Rights {
    /// Limit for `action`.
    pub fn limit(&self, action: Action) -> Limit {
        match action {
            Action::Play => self.play,
            Action::Copy => self.copy,
            Action::Transfer => self.transfer,
        }
    }

    /// Starts a builder with nothing granted.
    pub fn builder() -> RightsBuilder {
        RightsBuilder::default()
    }

    /// Common default: unlimited personal playback, one transfer.
    pub fn standard_purchase() -> Rights {
        Rights::builder()
            .play(Limit::Unlimited)
            .transfer(Limit::Count(1))
            .build()
    }
}

impl Default for Rights {
    fn default() -> Self {
        Rights {
            play: Limit::None,
            copy: Limit::None,
            transfer: Limit::None,
            window: Window::default(),
            device: None,
            domain: None,
            regions: Vec::new(),
        }
    }
}

impl Encode for Rights {
    fn encode(&self, w: &mut Writer) {
        self.play.encode(w);
        self.copy.encode(w);
        self.transfer.encode(w);
        self.window.encode(w);
        match &self.device {
            None => w.put_u8(0),
            Some(d) => {
                w.put_u8(1);
                w.put_raw(d);
            }
        }
        w.put_option(&self.domain);
        w.put_seq(&self.regions);
    }
}

impl Decode for Rights {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        let play = Limit::decode(r)?;
        let copy = Limit::decode(r)?;
        let transfer = Limit::decode(r)?;
        let window = Window::decode(r)?;
        let device = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_raw(32)?.try_into().expect("fixed width")),
            d => return Err(p2drm_codec::CodecError::BadDiscriminant(d)),
        };
        Ok(Rights {
            play,
            copy,
            transfer,
            window,
            device,
            domain: r.get_option()?,
            regions: r.get_seq()?,
        })
    }
}

/// Fluent constructor for [`Rights`].
#[derive(Default, Clone, Debug)]
pub struct RightsBuilder {
    rights: Rights,
}

impl RightsBuilder {
    /// Sets the play limit.
    pub fn play(mut self, limit: Limit) -> Self {
        self.rights.play = limit;
        self
    }

    /// Sets the copy limit.
    pub fn copy(mut self, limit: Limit) -> Self {
        self.rights.copy = limit;
        self
    }

    /// Sets the transfer limit.
    pub fn transfer(mut self, limit: Limit) -> Self {
        self.rights.transfer = limit;
        self
    }

    /// Sets the validity window.
    pub fn window(mut self, from: Option<u64>, until: Option<u64>) -> Self {
        self.rights.window = Window { from, until };
        self
    }

    /// Binds to a device id.
    pub fn device(mut self, id: [u8; 32]) -> Self {
        self.rights.device = Some(id);
        self
    }

    /// Binds to an authorized domain.
    pub fn domain(mut self, name: impl Into<String>) -> Self {
        self.rights.domain = Some(name.into());
        self
    }

    /// Adds a permitted region code (stored uppercase).
    pub fn region(mut self, code: impl Into<String>) -> Self {
        self.rights.regions.push(code.into().to_uppercase());
        self
    }

    /// Finishes, normalizing region order for canonical encoding.
    pub fn build(mut self) -> Rights {
        self.rights.regions.sort();
        self.rights.regions.dedup();
        self.rights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_allows() {
        assert!(!Limit::None.allows(0));
        assert!(Limit::Count(2).allows(1));
        assert!(!Limit::Count(2).allows(2));
        assert!(Limit::Unlimited.allows(u32::MAX));
        assert_eq!(Limit::Count(5).remaining(2), Some(3));
        assert_eq!(Limit::Count(5).remaining(9), Some(0));
        assert_eq!(Limit::Unlimited.remaining(9), None);
        assert_eq!(Limit::None.remaining(0), Some(0));
    }

    #[test]
    fn window_contains() {
        let w = Window {
            from: Some(10),
            until: Some(20),
        };
        assert!(!w.contains(9) && w.contains(10) && w.contains(20) && !w.contains(21));
        assert!(Window::default().contains(0));
        assert!(Window::default().contains(u64::MAX));
        let half = Window {
            from: Some(5),
            until: None,
        };
        assert!(!half.contains(4) && half.contains(u64::MAX));
    }

    #[test]
    fn builder_normalizes_regions() {
        let r = Rights::builder()
            .region("us")
            .region("EU")
            .region("US")
            .build();
        assert_eq!(r.regions, vec!["EU".to_string(), "US".to_string()]);
    }

    #[test]
    fn rights_codec_roundtrip() {
        let r = Rights::builder()
            .play(Limit::Count(3))
            .copy(Limit::Unlimited)
            .transfer(Limit::Count(1))
            .window(Some(100), Some(200))
            .device([7u8; 32])
            .domain("home")
            .region("EU")
            .build();
        let bytes = p2drm_codec::to_bytes(&r);
        assert_eq!(p2drm_codec::from_bytes::<Rights>(&bytes).unwrap(), r);
    }

    #[test]
    fn default_grants_nothing() {
        let r = Rights::default();
        for a in Action::ALL {
            assert_eq!(r.limit(a), Limit::None);
        }
    }

    #[test]
    fn standard_purchase_shape() {
        let r = Rights::standard_purchase();
        assert_eq!(r.play, Limit::Unlimited);
        assert_eq!(r.transfer, Limit::Count(1));
        assert_eq!(r.copy, Limit::None);
    }
}
