//! Property tests: print/parse identity, codec roundtrips, and enforcement
//! invariants for arbitrary rights expressions.

use p2drm_rel::ast::{Limit, Rights, RightsBuilder, Window};
use p2drm_rel::printer::print;
use p2drm_rel::{parse, AccessRequest, Action, Decision, RightsState};
use proptest::prelude::*;

fn limit() -> impl Strategy<Value = Limit> {
    prop_oneof![
        Just(Limit::None),
        (1u32..1000).prop_map(Limit::Count),
        Just(Limit::Unlimited),
    ]
}

fn window() -> impl Strategy<Value = Window> {
    prop_oneof![
        Just(Window::default()),
        (0u64..1000).prop_map(|f| Window {
            from: Some(f),
            until: None
        }),
        (0u64..1000).prop_map(|u| Window {
            from: None,
            until: Some(u)
        }),
        (0u64..1000, 0u64..1000).prop_map(|(a, b)| Window {
            from: Some(a.min(b)),
            until: Some(a.max(b)),
        }),
    ]
}

fn rights() -> impl Strategy<Value = Rights> {
    (
        limit(),
        limit(),
        limit(),
        window(),
        proptest::option::of(any::<[u8; 32]>()),
        proptest::option::of("[a-z]{1,12}"),
        proptest::collection::vec("[A-Z]{2}", 0..4),
    )
        .prop_map(|(play, copy, transfer, w, device, domain, regions)| {
            let mut b = RightsBuilder::default()
                .play(play)
                .copy(copy)
                .transfer(transfer)
                .window(w.from, w.until);
            if let Some(d) = device {
                b = b.device(d);
            }
            if let Some(dom) = domain {
                b = b.domain(dom);
            }
            for r in regions {
                b = b.region(r);
            }
            b.build()
        })
}

fn request() -> impl Strategy<Value = AccessRequest> {
    (
        prop_oneof![
            Just(Action::Play),
            Just(Action::Copy),
            Just(Action::Transfer)
        ],
        0u64..1200,
        any::<[u8; 32]>(),
        proptest::option::of("[a-z]{1,12}"),
        proptest::option::of("[A-Z]{2}"),
    )
        .prop_map(|(action, now, device, domain, region)| {
            let mut r = AccessRequest::play(now, device).with_action(action);
            if let Some(d) = domain {
                r = r.in_domain(d);
            }
            if let Some(reg) = region {
                r = r.in_region(reg);
            }
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_identity(r in rights()) {
        let text = print(&r);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, r, "text was: {}", text);
    }

    #[test]
    fn codec_roundtrip(r in rights()) {
        let bytes = p2drm_codec::to_bytes(&r);
        prop_assert_eq!(p2drm_codec::from_bytes::<Rights>(&bytes).unwrap(), r);
    }

    #[test]
    fn evaluation_is_pure(r in rights(), req in request()) {
        let state = RightsState::new();
        let d1 = r.evaluate(&state, &req);
        let d2 = r.evaluate(&state, &req);
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn consume_monotone(r in rights(), req in request(), uses in 0u32..50) {
        // Once denied for count exhaustion, more consumption never re-permits.
        let mut state = RightsState::new();
        for _ in 0..uses {
            state.consume(req.action);
        }
        let before = r.evaluate(&state, &req).is_permit();
        state.consume(req.action);
        let after = r.evaluate(&state, &req).is_permit();
        prop_assert!(!after || before, "permit must be monotone non-increasing in usage");
    }

    #[test]
    fn permit_requires_grant(r in rights(), req in request()) {
        if r.evaluate(&RightsState::new(), &req).is_permit() {
            prop_assert!(r.limit(req.action) != Limit::None);
            prop_assert!(r.window.contains(req.now));
            if let Some(dev) = r.device {
                prop_assert_eq!(dev, req.device);
            }
        }
    }

    #[test]
    fn count_limits_respected_exactly(n in 1u32..30) {
        let r = RightsBuilder::default().play(Limit::Count(n)).build();
        let mut state = RightsState::new();
        let req = AccessRequest::play(0, [0; 32]);
        let mut permits = 0;
        for _ in 0..(n + 10) {
            if let Decision::Permit = r.evaluate_and_consume(&mut state, &req) {
                permits += 1;
            }
        }
        prop_assert_eq!(permits, n);
    }
}
