//! Transport-layer fault wrapper.

use crate::plan::FaultPlan;
use p2drm_core::service::{
    ApiError, ApiErrorCode, ResponseEnvelope, Transport, TransportError, WireResponse,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Injection sites [`FaultTransport`] consults, in evaluation order.
pub mod sites {
    /// Submit fails `Broken` after the request may have partially left
    /// (ambiguous — the client must park, not unwind).
    pub const RESET_MID_WRITE: &str = "transport.reset_mid_write";
    /// Submit reports success but the request is swallowed; the eventual
    /// completion wait surfaces as an ambiguous channel failure.
    pub const DROP_REQUEST: &str = "transport.drop_request";
    /// Submit is answered locally with a synthesized busy envelope
    /// (ServiceUnavailable + `retry_after_ms`) without reaching the
    /// service — a load-shedding storm.
    pub const BUSY_STORM: &str = "transport.busy_storm";
    /// Submit stalls for a deterministic pause before forwarding.
    pub const DELAY: &str = "transport.delay";
    /// A completed reply is discarded and reported as a channel failure.
    pub const DROP_REPLY: &str = "transport.drop_reply";
    /// A completed reply is truncated mid-frame (decode fails).
    pub const TORN_FRAME: &str = "transport.torn_frame";
    /// A completed reply is delivered, then delivered *again* on the
    /// next completion (exercises duplicate/unknown-id defenses).
    pub const DUPLICATE_REPLY: &str = "transport.duplicate_reply";
}

/// `retry_after_ms` carried by synthesized busy-storm envelopes.
const STORM_RETRY_AFTER_MS: u32 = 2;

#[derive(Default)]
struct State {
    /// Correlation ids whose requests were swallowed ([`sites::DROP_REQUEST`]).
    blackholed: Vec<u64>,
    /// Locally synthesized replies (busy storms), delivered before the
    /// inner transport is consulted.
    synthesized: VecDeque<(u64, Vec<u8>)>,
    /// A duplicate of an already-delivered reply, re-delivered on the
    /// next completion.
    duplicate: Option<(u64, Vec<u8>)>,
}

/// Fault-injecting wrapper around any [`Transport`]. With every site at
/// [`crate::Schedule::Never`] it is byte-for-byte pass-through.
pub struct FaultTransport<T: Transport> {
    inner: T,
    plan: Arc<FaultPlan>,
    state: Mutex<State>,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, consulting `plan` at the [`sites`].
    pub fn new(inner: T, plan: Arc<FaultPlan>) -> Self {
        FaultTransport {
            inner,
            plan,
            state: Mutex::new(State::default()),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The plan driving this wrapper.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn submit(&self, corr_id: u64, request: &[u8]) -> Result<(), TransportError> {
        if self.plan.decide(sites::RESET_MID_WRITE) {
            return Err(TransportError::Broken(
                "injected: connection reset mid-write".to_string(),
            ));
        }
        if self.plan.decide(sites::DROP_REQUEST) {
            self.lock().blackholed.push(corr_id);
            return Ok(());
        }
        if self.plan.decide(sites::BUSY_STORM) {
            let frame = ResponseEnvelope {
                correlation_id: corr_id,
                body: WireResponse::Error(
                    ApiError::new(
                        ApiErrorCode::ServiceUnavailable,
                        "injected: busy-envelope storm",
                    )
                    .with_retry_after(STORM_RETRY_AFTER_MS),
                ),
            }
            .to_bytes();
            self.lock().synthesized.push_back((corr_id, frame));
            return Ok(());
        }
        if self.plan.decide(sites::DELAY) {
            // Small deterministic stall: enough to reorder against other
            // clients without slowing drills meaningfully.
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.submit(corr_id, request)
    }

    fn complete(
        &self,
        deadline: Option<Instant>,
    ) -> Result<Option<(u64, Vec<u8>)>, TransportError> {
        {
            let mut st = self.lock();
            if let Some(reply) = st.synthesized.pop_front() {
                return Ok(Some(reply));
            }
            if let Some(dup) = st.duplicate.take() {
                return Ok(Some(dup));
            }
        }
        let completed = match self.inner.complete(deadline) {
            Ok(Some(reply)) => reply,
            Ok(None) => {
                // Nothing in flight inner-side. If requests were
                // swallowed, their outcome is now formally unknown:
                // surface the loss as a channel failure exactly once.
                let mut st = self.lock();
                if st.blackholed.is_empty() {
                    return Ok(None);
                }
                st.blackholed.clear();
                return Err(TransportError::Broken(
                    "injected: request dropped in flight".to_string(),
                ));
            }
            Err(e) => return Err(e),
        };
        if self.plan.decide(sites::DROP_REPLY) {
            return Err(TransportError::Broken(
                "injected: reply dropped in flight".to_string(),
            ));
        }
        if self.plan.decide(sites::TORN_FRAME) {
            let (corr, bytes) = completed;
            return Ok(Some((corr, bytes[..bytes.len() / 2].to_vec())));
        }
        if self.plan.decide(sites::DUPLICATE_REPLY) {
            self.lock().duplicate = Some(completed.clone());
        }
        Ok(Some(completed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;

    /// Echo transport: replies with a valid envelope echoing the id.
    struct Echo;
    impl Transport for Echo {
        fn submit(&self, corr_id: u64, _request: &[u8]) -> Result<(), TransportError> {
            let _ = corr_id;
            Ok(())
        }
        fn complete(
            &self,
            _deadline: Option<Instant>,
        ) -> Result<Option<(u64, Vec<u8>)>, TransportError> {
            Ok(None)
        }
    }

    /// Queueing echo: submit enqueues a decodable error envelope reply.
    struct Queue(Mutex<VecDeque<(u64, Vec<u8>)>>);
    impl Queue {
        fn new() -> Self {
            Queue(Mutex::new(VecDeque::new()))
        }
    }
    impl Transport for Queue {
        fn submit(&self, corr_id: u64, _request: &[u8]) -> Result<(), TransportError> {
            let frame = ResponseEnvelope {
                correlation_id: corr_id,
                body: WireResponse::Error(ApiError::new(ApiErrorCode::Internal, "echo")),
            }
            .to_bytes();
            self.0.lock().unwrap().push_back((corr_id, frame));
            Ok(())
        }
        fn complete(
            &self,
            _deadline: Option<Instant>,
        ) -> Result<Option<(u64, Vec<u8>)>, TransportError> {
            Ok(self.0.lock().unwrap().pop_front())
        }
    }

    #[test]
    fn passthrough_when_unconfigured() {
        let t = FaultTransport::new(Queue::new(), Arc::new(FaultPlan::new(1)));
        t.submit(7, b"x").unwrap();
        let (corr, bytes) = t.complete(None).unwrap().unwrap();
        assert_eq!(corr, 7);
        assert!(ResponseEnvelope::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn dropped_request_surfaces_as_broken_once() {
        let plan = Arc::new(FaultPlan::new(1).with(sites::DROP_REQUEST, Schedule::OneShot(1)));
        let t = FaultTransport::new(Echo, plan);
        t.submit(1, b"x").unwrap();
        assert!(matches!(t.complete(None), Err(TransportError::Broken(_))));
        assert!(matches!(t.complete(None), Ok(None)), "loss reported once");
    }

    #[test]
    fn busy_storm_synthesizes_decodable_busy_reply() {
        let plan = Arc::new(FaultPlan::new(1).with(sites::BUSY_STORM, Schedule::OneShot(1)));
        let t = FaultTransport::new(Queue::new(), plan);
        t.submit(9, b"x").unwrap();
        let (corr, bytes) = t.complete(None).unwrap().unwrap();
        assert_eq!(corr, 9);
        let envelope = ResponseEnvelope::from_bytes(&bytes).unwrap();
        match envelope.body {
            WireResponse::Error(e) => {
                assert_eq!(e.code, ApiErrorCode::ServiceUnavailable);
                assert_eq!(e.retry_after_ms, STORM_RETRY_AFTER_MS);
            }
            other => panic!("expected busy error, got {other:?}"),
        }
        assert!(
            matches!(t.complete(None), Ok(None)),
            "request never forwarded"
        );
    }

    #[test]
    fn torn_frame_fails_decode_and_duplicate_redelivers() {
        let plan = Arc::new(
            FaultPlan::new(1)
                .with(sites::TORN_FRAME, Schedule::OneShot(1))
                .with(sites::DUPLICATE_REPLY, Schedule::OneShot(1)),
        );
        let t = FaultTransport::new(Queue::new(), plan);
        t.submit(1, b"x").unwrap();
        let (_, torn) = t.complete(None).unwrap().unwrap();
        assert!(ResponseEnvelope::from_bytes(&torn).is_err(), "torn frame");

        t.submit(2, b"y").unwrap();
        let first = t.complete(None).unwrap().unwrap();
        let second = t.complete(None).unwrap().unwrap();
        assert_eq!(first, second, "duplicate of the same reply");
    }
}
