//! Deterministic fault injection for recovery drills.
//!
//! A seeded [`FaultPlan`] holds one [`Schedule`] per named injection
//! *site* (`"transport.drop_reply"`, `"kv.fail_flush"`, …) and decides,
//! per call, whether the fault fires. Every decision is a pure function
//! of `(seed, site, call number)`, so the same seed replays the same
//! fault schedule byte-for-byte — a failing chaos run is a repro, not an
//! anecdote.
//!
//! The plan is exercised through wrappers at three layers:
//!
//! * [`FaultTransport`] around any [`p2drm_core::service::Transport`] —
//!   dropped requests, dropped/duplicated/torn replies, injected delay,
//!   mid-write resets, and synthesized busy-envelope storms;
//! * [`FaultKv`] around any [`p2drm_store::ConcurrentKv`] — failed
//!   puts/inserts/flushes and slow commits (plus
//!   [`crash::tear_shard_tail`] and
//!   [`p2drm_store::WalShardedKv::inject_sync_failure`] for the durable
//!   backend's poisoning/replay paths);
//! * [`FaultService`] around any [`p2drm_net::NetService`] — worker
//!   stalls that hold a request hostage server-side.
//!
//! None of the wrappers change behavior when their sites stay
//! [`Schedule::Never`]; they are strictly pass-through.

mod kv;
mod plan;
mod service;
mod transport;

pub mod crash;

pub use kv::{sites as kv_sites, FaultKv};
pub use plan::{Decision, FaultPlan, Schedule};
pub use service::{sites as service_sites, FaultService};
pub use transport::{sites as transport_sites, FaultTransport};
