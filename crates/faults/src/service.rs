//! Server-side fault wrapper.

use crate::plan::FaultPlan;
use p2drm_net::NetService;
use std::sync::Arc;
use std::time::Duration;

/// Injection sites [`FaultService`] consults.
pub mod sites {
    /// The worker stalls before answering — a request held hostage
    /// server-side while the client's deadline runs.
    pub const WORKER_STALL: &str = "server.worker_stall";
}

/// Fault-injecting wrapper around any [`NetService`]: holds selected
/// requests hostage for a configurable stall before forwarding them.
/// With [`sites::WORKER_STALL`] at [`crate::Schedule::Never`] it is
/// pass-through.
pub struct FaultService<S: NetService> {
    inner: S,
    plan: Arc<FaultPlan>,
    stall: Duration,
}

impl<S: NetService> FaultService<S> {
    /// Wraps `inner`; stalled requests wait `stall` before being served.
    pub fn new(inner: S, plan: Arc<FaultPlan>, stall: Duration) -> Self {
        FaultService { inner, plan, stall }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: NetService> NetService for FaultService<S> {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        if self.plan.decide(sites::WORKER_STALL) {
            std::thread::sleep(self.stall);
        }
        self.inner.handle(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;
    use p2drm_net::ServiceFn;
    use std::time::Instant;

    #[test]
    fn stalls_only_scheduled_requests() {
        let plan = Arc::new(FaultPlan::new(1).with(sites::WORKER_STALL, Schedule::OneShot(2)));
        let svc = FaultService::new(
            ServiceFn(|req: &[u8]| req.to_vec()),
            plan.clone(),
            Duration::from_millis(10),
        );
        assert_eq!(svc.handle(b"a"), b"a");
        let start = Instant::now();
        assert_eq!(svc.handle(b"b"), b"b");
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "second call stalled"
        );
        assert_eq!(plan.fired(sites::WORKER_STALL), 1);
    }
}
