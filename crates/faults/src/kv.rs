//! Store-layer fault wrapper.

use crate::plan::FaultPlan;
use p2drm_store::{ConcurrentKv, StoreError};
use std::sync::Arc;
use std::time::Duration;

/// Injection sites [`FaultKv`] consults.
pub mod sites {
    /// `put` fails with an injected I/O error (write not applied).
    pub const FAIL_PUT: &str = "kv.fail_put";
    /// `insert_if_absent` fails with an injected I/O error.
    pub const FAIL_INSERT: &str = "kv.fail_insert";
    /// `flush` fails with an injected I/O error.
    pub const FAIL_FLUSH: &str = "kv.fail_flush";
    /// Writes stall briefly before committing — a slow disk, not a
    /// broken one.
    pub const SLOW_COMMIT: &str = "kv.slow_commit";
}

/// How long a [`sites::SLOW_COMMIT`] stall lasts.
const SLOW_COMMIT_STALL: Duration = Duration::from_millis(1);

/// Fault-injecting wrapper around any [`ConcurrentKv`]. Failed writes
/// are rejected *before* reaching the inner store, so an injected error
/// means the mutation was definitely not applied (fail-stop, matching
/// [`p2drm_store::WalShardedKv`]'s discipline). With every site at
/// [`crate::Schedule::Never`] it is pass-through.
pub struct FaultKv<S: ConcurrentKv> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: ConcurrentKv> FaultKv<S> {
    /// Wraps `inner`, consulting `plan` at the [`sites`].
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        FaultKv { inner, plan }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn stall_if_slow(&self) {
        if self.plan.decide(sites::SLOW_COMMIT) {
            std::thread::sleep(SLOW_COMMIT_STALL);
        }
    }
}

fn injected(what: &str) -> StoreError {
    std::io::Error::other(format!("injected: {what}")).into()
}

impl<S: ConcurrentKv> ConcurrentKv for FaultKv<S> {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        if self.plan.decide(sites::FAIL_PUT) {
            return Err(injected("put failure"));
        }
        self.stall_if_slow();
        self.inner.put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        self.stall_if_slow();
        self.inner.delete(key)
    }

    fn insert_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, StoreError> {
        if self.plan.decide(sites::FAIL_INSERT) {
            return Err(injected("insert failure"));
        }
        self.stall_if_slow();
        self.inner.insert_if_absent(key, value)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.inner.scan_prefix(prefix)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.inner.contains(key)
    }

    fn flush(&self) -> Result<(), StoreError> {
        if self.plan.decide(sites::FAIL_FLUSH) {
            return Err(injected("flush failure"));
        }
        self.inner.flush()
    }

    fn collect_metrics(&self, out: &mut p2drm_obs::SnapshotBuilder) {
        self.inner.collect_metrics(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;
    use p2drm_store::{MemKv, SharedKv};

    #[test]
    fn passthrough_when_unconfigured() {
        let kv = FaultKv::new(SharedKv::new(MemKv::new()), Arc::new(FaultPlan::new(1)));
        kv.put(b"a", b"1").unwrap();
        assert!(kv.insert_if_absent(b"b", b"2").unwrap());
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.len(), 2);
        kv.flush().unwrap();
        assert!(kv.delete(b"a").unwrap());
    }

    #[test]
    fn injected_put_failure_is_fail_stop() {
        let plan = Arc::new(FaultPlan::new(1).with(sites::FAIL_PUT, Schedule::OneShot(2)));
        let kv = FaultKv::new(SharedKv::new(MemKv::new()), plan);
        kv.put(b"a", b"1").unwrap();
        assert!(kv.put(b"a", b"2").is_err(), "second put injected to fail");
        assert_eq!(
            kv.get(b"a"),
            Some(b"1".to_vec()),
            "failed write not applied"
        );
        kv.put(b"a", b"3").unwrap();
        assert_eq!(kv.get(b"a"), Some(b"3".to_vec()));
    }

    #[test]
    fn injected_insert_and_flush_failures() {
        let plan = Arc::new(
            FaultPlan::new(1)
                .with(sites::FAIL_INSERT, Schedule::OneShot(1))
                .with(sites::FAIL_FLUSH, Schedule::OneShot(1)),
        );
        let kv = FaultKv::new(SharedKv::new(MemKv::new()), plan);
        assert!(kv.insert_if_absent(b"k", b"v").is_err());
        assert!(!kv.contains(b"k"), "failed insert not applied");
        assert!(kv.flush().is_err());
        assert!(kv.insert_if_absent(b"k", b"v").unwrap());
        kv.flush().unwrap();
    }
}
