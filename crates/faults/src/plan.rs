//! The seeded fault plan: per-site schedules and a decision trace.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// When a site's fault fires, as a function of the site's 1-based call
/// counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Never fires (the default for unconfigured sites).
    Never,
    /// Fires on call `first`, then every `every` calls after it
    /// (`every == 0` fires on call `first` only — equivalent to
    /// [`Schedule::OneShot`]).
    Nth {
        /// First firing call number (1-based; `0` never fires).
        first: u64,
        /// Repeat period after the first firing (`0`: no repeat).
        every: u64,
    },
    /// Fires with this probability per call, decided by a deterministic
    /// per-`(seed, site, call)` coin — same seed, same coin flips.
    Probability(f64),
    /// Fires exactly once, on this call number (1-based).
    OneShot(u64),
}

impl Schedule {
    fn fires(&self, seed: u64, site_hash: u64, call: u64) -> bool {
        match *self {
            Schedule::Never => false,
            Schedule::OneShot(n) => n != 0 && call == n,
            Schedule::Nth { first, every } => {
                if first == 0 || call < first {
                    false
                } else if every == 0 {
                    call == first
                } else {
                    (call - first).is_multiple_of(every)
                }
            }
            Schedule::Probability(p) => {
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                let x = splitmix64(seed ^ site_hash ^ call.wrapping_mul(0x9E37_79B9));
                ((x >> 11) as f64 / (1u64 << 53) as f64) < p
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the site name — the per-site component of the coin.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct SiteState {
    schedule: Schedule,
    calls: u64,
    fired: u64,
}

/// One fault-injection decision, recorded in call order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Site name.
    pub site: &'static str,
    /// 1-based call number at that site.
    pub call: u64,
    /// Whether the fault fired.
    pub fired: bool,
}

/// Seeded, deterministic fault plan: a [`Schedule`] per named site,
/// per-site call counters, and a trace of every decision taken.
/// Shared behind an `Arc` by all wrappers of one drill; interior
/// mutability keeps the wrappers' `&self` APIs intact.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    sites: Mutex<BTreeMap<&'static str, SiteState>>,
    trace: Mutex<Vec<Decision>>,
}

impl FaultPlan {
    /// Empty plan (all sites [`Schedule::Never`]) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// The seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets `site`'s schedule (builder form).
    pub fn with(self, site: &'static str, schedule: Schedule) -> Self {
        self.set(site, schedule);
        self
    }

    /// Sets `site`'s schedule. The site's call counter is preserved —
    /// re-arming mid-run continues the same call numbering.
    pub fn set(&self, site: &'static str, schedule: Schedule) {
        let mut sites = lock(&self.sites);
        sites
            .entry(site)
            .and_modify(|s| s.schedule = schedule)
            .or_insert(SiteState {
                schedule,
                calls: 0,
                fired: 0,
            });
    }

    /// One decision: advances `site`'s call counter and reports whether
    /// the fault fires on this call. Unconfigured sites count calls but
    /// never fire.
    pub fn decide(&self, site: &'static str) -> bool {
        let (call, fired) = {
            let mut sites = lock(&self.sites);
            let st = sites.entry(site).or_insert(SiteState {
                schedule: Schedule::Never,
                calls: 0,
                fired: 0,
            });
            st.calls += 1;
            let fired = st.schedule.fires(self.seed, site_hash(site), st.calls);
            if fired {
                st.fired += 1;
            }
            (st.calls, fired)
        };
        lock(&self.trace).push(Decision { site, call, fired });
        fired
    }

    /// Times `site` has been consulted.
    pub fn calls(&self, site: &str) -> u64 {
        lock(&self.sites).get(site).map_or(0, |s| s.calls)
    }

    /// Times `site` has fired.
    pub fn fired(&self, site: &str) -> u64 {
        lock(&self.sites).get(site).map_or(0, |s| s.fired)
    }

    /// Total decisions that fired, across all sites.
    pub fn total_fired(&self) -> u64 {
        lock(&self.sites).values().map(|s| s.fired).sum()
    }

    /// The decision trace so far (call order).
    pub fn trace(&self) -> Vec<Decision> {
        lock(&self.trace).clone()
    }

    /// Canonical byte rendering of the decision trace — one
    /// `site#call=0|1` line per decision. Two runs of the same seeded
    /// workload produce byte-identical schedules; the chaos drill
    /// asserts exactly that.
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for d in lock(&self.trace).iter() {
            out.extend_from_slice(d.site.as_bytes());
            out.push(b'#');
            out.extend_from_slice(d.call.to_string().as_bytes());
            out.push(b'=');
            out.push(if d.fired { b'1' } else { b'0' });
            out.push(b'\n');
        }
        out
    }

    /// Pure preview of `schedule` at `site` under `seed` for calls
    /// `1..=calls` — no plan state touched. Lets tests assert
    /// byte-identical schedules without running a workload.
    pub fn preview(seed: u64, site: &str, schedule: Schedule, calls: u64) -> Vec<bool> {
        let h = site_hash(site);
        (1..=calls).map(|c| schedule.fires(seed, h, c)).collect()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Plan state is counters and a trace; the last consistent write is
    // safe to observe after a panic elsewhere.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_oneshot_and_never() {
        let fires = |s: Schedule, n: u64| {
            FaultPlan::preview(1, "t", s, n)
                .iter()
                .map(|b| *b as u32)
                .sum::<u32>()
        };
        assert_eq!(fires(Schedule::Never, 100), 0);
        assert_eq!(fires(Schedule::OneShot(3), 100), 1);
        assert_eq!(fires(Schedule::Nth { first: 2, every: 3 }, 11), 4); // 2,5,8,11
        assert_eq!(fires(Schedule::Nth { first: 4, every: 0 }, 100), 1);
        assert_eq!(fires(Schedule::Nth { first: 0, every: 1 }, 100), 0);
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let a = FaultPlan::preview(7, "x", Schedule::Probability(0.1), 10_000);
        let b = FaultPlan::preview(7, "x", Schedule::Probability(0.1), 10_000);
        assert_eq!(a, b, "same seed, same coin flips");
        let c = FaultPlan::preview(8, "x", Schedule::Probability(0.1), 10_000);
        assert_ne!(a, c, "different seed, different flips");
        let hits = a.iter().filter(|f| **f).count();
        assert!((700..1300).contains(&hits), "~10% of 10k, got {hits}");
        // Different sites under the same seed are decorrelated.
        let d = FaultPlan::preview(7, "y", Schedule::Probability(0.1), 10_000);
        assert_ne!(a, d);
    }

    #[test]
    fn decide_counts_and_traces() {
        let plan = FaultPlan::new(3).with("s", Schedule::OneShot(2));
        assert!(!plan.decide("s"));
        assert!(plan.decide("s"));
        assert!(!plan.decide("s"));
        assert!(!plan.decide("other"), "unconfigured site never fires");
        assert_eq!(plan.calls("s"), 3);
        assert_eq!(plan.fired("s"), 1);
        assert_eq!(plan.total_fired(), 1);
        assert_eq!(plan.trace_bytes(), b"s#1=0\ns#2=1\ns#3=0\nother#1=0\n");
    }

    #[test]
    fn same_seed_same_trace_bytes() {
        let run = || {
            let plan = FaultPlan::new(99)
                .with("a", Schedule::Probability(0.5))
                .with("b", Schedule::Nth { first: 1, every: 2 });
            for _ in 0..50 {
                plan.decide("a");
                plan.decide("b");
            }
            plan.trace_bytes()
        };
        assert_eq!(run(), run());
    }
}
