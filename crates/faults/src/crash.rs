//! Crash-shaped damage to durable state, applied while the store is
//! *down* — the moral equivalent of power loss mid-append.
//!
//! [`p2drm_store::WalShardedKv`] names its shard logs `shard-{i:03}.wal`
//! inside its directory; these helpers reach into that layout the way a
//! real crash would, so restart drills can assert the recovery contract:
//! other shards replay fully, the damaged shard keeps its last durable
//! prefix and drops the torn tail.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

/// File name of shard `index`'s log inside a [`p2drm_store::WalShardedKv`]
/// directory.
pub fn shard_wal_name(index: usize) -> String {
    format!("shard-{index:03}.wal")
}

/// Appends garbage to shard `index`'s WAL in `dir`, simulating a crash
/// mid-append: a frame that started writing but never completed. On
/// restart, replay must keep every record before the tear and discard
/// the tail. Call only while no [`p2drm_store::WalShardedKv`] holds the
/// directory open.
pub fn tear_shard_tail(dir: &Path, index: usize) -> io::Result<()> {
    let path = dir.join(shard_wal_name(index));
    let mut f = OpenOptions::new().append(true).open(&path)?;
    // A plausible partial frame: a length prefix promising more bytes
    // than follow, then a truncated body.
    f.write_all(&[0xFF, 0xFF, 0x00, 0x00, 0xDE, 0xAD, 0xBE])?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_names_match_walsharded_layout() {
        assert_eq!(shard_wal_name(0), "shard-000.wal");
        assert_eq!(shard_wal_name(42), "shard-042.wal");
    }
}
