//! The anonymity-revocation trusted third party.
//!
//! Every pseudonym certificate carries `ElGamal_TTP(user id ‖ nonce)`. The
//! TTP opens an escrow **only** against verifiable abuse evidence — the
//! paper's conditional anonymity. Every opening is logged, so the TTP
//! itself is auditable.

use crate::ids::UserId;
use crate::protocol::revocation::AbuseEvidence;
use crate::CoreError;
use p2drm_crypto::elgamal::{ElGamalGroup, ElGamalKeyPair, ElGamalPublicKey};
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::RsaPublicKey;
use p2drm_pki::cert::{KeyId, PseudonymCertificate};

/// Domain tag prefixing every escrow plaintext.
pub const ESCROW_TAG: &[u8] = b"p2drm-escrow-v1";

/// A logged de-anonymization event.
#[derive(Clone, Debug)]
pub struct DeanonymizationRecord {
    /// The pseudonym that was opened.
    pub pseudonym: KeyId,
    /// The identity found inside.
    pub user: UserId,
    /// Evidence category that justified the opening.
    pub reason: &'static str,
}

/// The trusted third party.
pub struct Ttp {
    keys: ElGamalKeyPair,
    log: Vec<DeanonymizationRecord>,
}

impl Ttp {
    /// Creates a TTP with a fresh escrow key in `group`.
    pub fn new<R: CryptoRng + ?Sized>(group: &ElGamalGroup, rng: &mut R) -> Self {
        Ttp {
            keys: ElGamalKeyPair::generate(group, rng),
            log: Vec::new(),
        }
    }

    /// The public escrow key smart cards encrypt identities under.
    pub fn escrow_key(&self) -> &ElGamalPublicKey {
        self.keys.public()
    }

    /// Builds the escrow plaintext for `user` (used by smart cards).
    pub fn escrow_plaintext<R: CryptoRng + ?Sized>(user: &UserId, rng: &mut R) -> Vec<u8> {
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        let mut out = Vec::with_capacity(ESCROW_TAG.len() + 32);
        out.extend_from_slice(ESCROW_TAG);
        out.extend_from_slice(user.as_bytes());
        out.extend_from_slice(&nonce);
        out
    }

    /// Opens the escrow in `cert`, but only if `evidence` independently
    /// verifies. Forged or mismatched evidence is rejected without
    /// decrypting anything.
    pub fn open_escrow(
        &mut self,
        evidence: &AbuseEvidence,
        cert: &PseudonymCertificate,
        ra_blind_key: &RsaPublicKey,
    ) -> Result<UserId, CoreError> {
        cert.verify(ra_blind_key)
            .map_err(|_| CoreError::BadEvidence("pseudonym certificate invalid"))?;
        evidence.verify(cert)?;

        let plaintext = self
            .keys
            .decrypt(&cert.body.escrow)
            .map_err(|_| CoreError::BadEvidence("escrow does not decrypt under TTP key"))?;
        if plaintext.len() != ESCROW_TAG.len() + 32 || !plaintext.starts_with(ESCROW_TAG) {
            return Err(CoreError::BadEvidence("escrow payload malformed"));
        }
        let user = UserId(
            plaintext[ESCROW_TAG.len()..ESCROW_TAG.len() + 16]
                .try_into()
                .expect("sliced to width"),
        );
        self.log.push(DeanonymizationRecord {
            pseudonym: cert.pseudonym_id(),
            user,
            reason: evidence.kind(),
        });
        Ok(user)
    }

    /// The audit log of every opening.
    pub fn audit_log(&self) -> &[DeanonymizationRecord] {
        &self.log
    }
}
