//! The content provider / license server.
//!
//! Sells content to **pseudonyms**: verifies blind-issued certificates,
//! deposits anonymous coins, issues uniquely-identified anonymous licenses,
//! executes privacy-preserving transfers, and maintains the spent-ID store
//! that makes each license id redeemable exactly once.

use crate::content::ContentCatalog;
use crate::ids::{ContentId, LicenseId};
use crate::license::{License, LicenseBody};
use crate::protocol::messages::{self, PurchaseRequest, TransferRequest};
use crate::CoreError;
use p2drm_crypto::envelope;
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::RsaPublicKey;
use p2drm_payment::Mint;
use p2drm_pki::authority::CertificateAuthority;
use p2drm_pki::cert::{digest_id, Certificate, KeyId, PseudonymCertificate};
use p2drm_pki::crl::{RevocationList, SignedCrl};
use p2drm_rel::{Limit, Rights};
use p2drm_store::typed::Table;
use p2drm_store::{Kv, MemKv};
use std::collections::HashMap;

/// Provider construction parameters.
#[derive(Clone, Debug)]
pub struct ProviderConfig {
    /// RSA modulus bits for the license-signing key.
    pub key_bits: usize,
    /// How many epochs old a pseudonym certificate may be.
    pub epoch_window: u32,
    /// Certificate validity window.
    pub validity: p2drm_pki::cert::Validity,
}

impl ProviderConfig {
    /// Small keys, generous windows — unit-test defaults.
    pub fn fast_test() -> Self {
        ProviderConfig {
            key_bits: 512,
            epoch_window: 4,
            validity: p2drm_pki::cert::Validity::new(0, u64::MAX / 2),
        }
    }
}

/// What the provider logs per sale — the adversarial-provider view used by
/// the linkability experiment (E7). Note: pseudonym ids only, no identity.
#[derive(Clone, Debug)]
pub struct PurchaseRecord {
    /// Buyer pseudonym.
    pub pseudonym: KeyId,
    /// What was bought.
    pub content: ContentId,
    /// When (epoch granularity).
    pub epoch: u32,
}

/// A transfer the provider witnessed: two pseudonyms, no identities.
#[derive(Clone, Debug)]
pub struct TransferRecord {
    /// Old holder pseudonym.
    pub from_pseudonym: KeyId,
    /// New holder pseudonym.
    pub to_pseudonym: KeyId,
    /// Content involved.
    pub content: ContentId,
}

/// The content provider, generic over its durable store.
pub struct ContentProvider<S: Kv = MemKv> {
    keys: p2drm_crypto::rsa::RsaKeyPair,
    cert: Certificate,
    catalog: ContentCatalog,
    rights_templates: HashMap<ContentId, Rights>,
    store: S,
    licenses: Table<License>,
    spent: Table<u32>,
    content_table: Table<crate::content::PackagedContent>,
    rights_table: Table<Rights>,
    crl_table: Table<u64>,
    pseudonym_crl: RevocationList,
    license_crl: RevocationList,
    license_crl_seq: u64,
    pseudonym_crl_seq: u64,
    /// (sequence, id) event logs backing incremental CRL sync.
    license_crl_events: Vec<(u64, KeyId)>,
    pseudonym_crl_events: Vec<(u64, KeyId)>,
    mint: Mint,
    ra_blind_key: RsaPublicKey,
    /// Trusted per-attribute RA verification keys.
    attribute_trust: HashMap<String, RsaPublicKey>,
    root_key: RsaPublicKey,
    config: ProviderConfig,
    purchase_log: Vec<PurchaseRecord>,
    transfer_log: Vec<TransferRecord>,
}

impl ContentProvider<MemKv> {
    /// Provider with a volatile store.
    pub fn new<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_store(root, mint, ra_blind_key, MemKv::new(), config, rng)
    }
}

impl<S: Kv> ContentProvider<S> {
    /// Provider over a caller-supplied store (e.g. [`p2drm_store::WalKv`]
    /// so the spent-ID set survives restarts).
    pub fn with_store<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: S,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Self {
        let keys = p2drm_crypto::rsa::RsaKeyPair::generate(config.key_bits, rng);
        let cert = root.issue(
            p2drm_pki::cert::EntityKind::ContentProvider,
            p2drm_pki::cert::SubjectKey::Rsa(keys.public().clone()),
            config.validity,
            vec![],
        );
        let root_key = root.public_key().clone();
        Self::assemble(keys, cert, root_key, mint, ra_blind_key, store, config)
    }

    fn assemble(
        keys: p2drm_crypto::rsa::RsaKeyPair,
        cert: Certificate,
        root_key: RsaPublicKey,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: S,
        config: ProviderConfig,
    ) -> Self {
        ContentProvider {
            keys,
            cert,
            catalog: ContentCatalog::new(),
            rights_templates: HashMap::new(),
            store,
            licenses: Table::new("lic/"),
            spent: Table::new("spent/"),
            content_table: Table::new("content/"),
            rights_table: Table::new("rightst/"),
            crl_table: Table::new("crl/"),
            pseudonym_crl: RevocationList::new(),
            license_crl: RevocationList::new(),
            license_crl_seq: 0,
            pseudonym_crl_seq: 0,
            license_crl_events: Vec::new(),
            pseudonym_crl_events: Vec::new(),
            mint,
            ra_blind_key,
            attribute_trust: HashMap::new(),
            root_key,
            config,
            purchase_log: Vec::new(),
            transfer_log: Vec::new(),
        }
    }

    /// Restarts a provider from its persisted state: the serialized key
    /// pair + certificate (the operator's key vault) and the durable store
    /// holding catalog, licenses, spent ids and CRLs.
    ///
    /// After resume, previously issued licenses still verify, previously
    /// spent license ids are still rejected, and CRL sequence numbers
    /// continue monotonically.
    pub fn resume(
        keys: p2drm_crypto::rsa::RsaKeyPair,
        cert: Certificate,
        root_key: RsaPublicKey,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: S,
        config: ProviderConfig,
    ) -> Result<Self, CoreError> {
        let mut provider = Self::assemble(keys, cert, root_key, mint, ra_blind_key, store, config);
        // Catalog + rights templates.
        for (_, item) in provider.content_table.scan(&provider.store)? {
            provider
                .rights_templates
                .insert(item.meta.id, provider.rights_table
                    .get(&provider.store, item.meta.id.as_bytes())?
                    .unwrap_or_else(Rights::standard_purchase));
            provider.catalog.restore(item);
        }
        // CRLs: "crl/l/<id>" and "crl/p/<id>" entries whose value is the
        // sequence number at which the revocation happened.
        for (key, seq) in provider.crl_table.scan(&provider.store)? {
            if let Some(id_bytes) = key.strip_prefix(b"l/") {
                if id_bytes.len() == 32 {
                    let id = KeyId(id_bytes.try_into().expect("checked width"));
                    provider.license_crl.insert(id);
                    provider.license_crl_events.push((seq, id));
                    provider.license_crl_seq = provider.license_crl_seq.max(seq);
                }
            } else if let Some(id_bytes) = key.strip_prefix(b"p/") {
                if id_bytes.len() == 32 {
                    let id = KeyId(id_bytes.try_into().expect("checked width"));
                    provider.pseudonym_crl.insert(id);
                    provider.pseudonym_crl_events.push((seq, id));
                    provider.pseudonym_crl_seq = provider.pseudonym_crl_seq.max(seq);
                }
            }
        }
        provider.license_crl_events.sort_unstable();
        provider.pseudonym_crl_events.sort_unstable();
        Ok(provider)
    }

    /// Serialized private key material for the operator's key vault
    /// (pair this with [`ContentProvider::resume`]). **Secret bytes.**
    pub fn export_keys(&self) -> Vec<u8> {
        p2drm_codec::to_bytes(&self.keys)
    }

    fn persist_crl_entry(&mut self, kind: u8, id: &KeyId) -> Result<(), CoreError> {
        let seq = match kind {
            b'l' => self.license_crl_seq,
            _ => self.pseudonym_crl_seq,
        };
        let mut key = Vec::with_capacity(34);
        key.push(kind);
        key.push(b'/');
        key.extend_from_slice(&id.0);
        self.crl_table.put(&mut self.store, &key, &seq)?;
        match kind {
            b'l' => self.license_crl_events.push((seq, *id)),
            _ => self.pseudonym_crl_events.push((seq, *id)),
        }
        Ok(())
    }

    /// License verification key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Provider certificate (chains to the root).
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Publishes content with a rights template applied to every sale.
    /// The packaged item (including its content key) and the template are
    /// persisted so the catalog survives [`ContentProvider::resume`].
    pub fn publish<R: CryptoRng + ?Sized>(
        &mut self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rights: Rights,
        rng: &mut R,
    ) -> ContentId {
        let id = self.catalog.publish(title, price, payload, rng);
        let item = self.catalog.get(&id).expect("just published");
        self.content_table
            .put(&mut self.store, id.as_bytes(), item)
            .expect("catalog persistence");
        self.rights_table
            .put(&mut self.store, id.as_bytes(), &rights)
            .expect("template persistence");
        self.rights_templates.insert(id, rights);
        id
    }

    /// Publishes attribute-restricted content (e.g. age-rated): buyers
    /// must present a credential for `attribute` bound to their pseudonym.
    pub fn publish_restricted<R: CryptoRng + ?Sized>(
        &mut self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rights: Rights,
        attribute: &str,
        rng: &mut R,
    ) -> ContentId {
        let id = self.catalog.publish_with_requirement(
            title,
            price,
            payload,
            Some(attribute.to_string()),
            rng,
        );
        let item = self.catalog.get(&id).expect("just published");
        self.content_table
            .put(&mut self.store, id.as_bytes(), item)
            .expect("catalog persistence");
        self.rights_table
            .put(&mut self.store, id.as_bytes(), &rights)
            .expect("template persistence");
        self.rights_templates.insert(id, rights);
        id
    }

    /// Trusts an RA per-attribute verification key (operator setup).
    pub fn trust_attribute(&mut self, attribute: &str, key: RsaPublicKey) {
        self.attribute_trust.insert(attribute.to_string(), key);
    }

    /// Checks the attribute requirement of a purchase, if any.
    fn check_attribute_requirement(
        &self,
        req: &PurchaseRequest,
        required: Option<&str>,
        now_epoch: u32,
    ) -> Result<(), CoreError> {
        let Some(attr) = required else { return Ok(()) };
        let cert = req
            .attribute_cert
            .as_ref()
            .ok_or(CoreError::BadPseudonym("attribute credential required"))?;
        if cert.attribute != attr {
            return Err(CoreError::BadPseudonym("wrong attribute credential"));
        }
        let key = self
            .attribute_trust
            .get(attr)
            .ok_or(CoreError::BadPseudonym("attribute issuer not trusted"))?;
        cert.verify(key)
            .map_err(|_| CoreError::BadPseudonym("attribute signature invalid"))?;
        // The credential must bind to the very pseudonym making the
        // purchase — it cannot be lent to another card.
        if cert.pseudonym_id() != req.pseudonym_cert.pseudonym_id() {
            return Err(CoreError::BadPseudonym(
                "attribute bound to a different pseudonym",
            ));
        }
        if cert.body.epoch > now_epoch || now_epoch - cert.body.epoch > self.config.epoch_window {
            return Err(CoreError::BadPseudonym("attribute credential epoch stale"));
        }
        Ok(())
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &ContentCatalog {
        &self.catalog
    }

    /// Validates a pseudonym certificate: RA blind signature, epoch
    /// freshness, and the pseudonym CRL.
    pub fn verify_pseudonym(
        &self,
        cert: &PseudonymCertificate,
        now_epoch: u32,
    ) -> Result<(), CoreError> {
        cert.verify(&self.ra_blind_key)
            .map_err(|_| CoreError::BadPseudonym("RA signature invalid"))?;
        if cert.body.epoch > now_epoch {
            return Err(CoreError::BadPseudonym("epoch in the future"));
        }
        if now_epoch - cert.body.epoch > self.config.epoch_window {
            return Err(CoreError::BadPseudonym("epoch too old"));
        }
        if self.pseudonym_crl.contains(&cert.pseudonym_id()) {
            return Err(CoreError::BadPseudonym("pseudonym revoked"));
        }
        Ok(())
    }

    /// Anonymous purchase: verify pseudonym + coin, deposit, issue license.
    pub fn handle_purchase<R: CryptoRng + ?Sized>(
        &mut self,
        req: &PurchaseRequest,
        now_epoch: u32,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        self.verify_pseudonym(&req.pseudonym_cert, now_epoch)?;
        let item = self
            .catalog
            .get(&req.content_id)
            .ok_or(CoreError::UnknownContent(req.content_id))?;
        if req.coin.denomination < item.meta.price {
            return Err(CoreError::Payment(
                p2drm_payment::PaymentError::InsufficientFunds {
                    balance: req.coin.denomination,
                    requested: item.meta.price,
                },
            ));
        }
        let required = item.meta.required_attribute.clone();
        let content_key = item.key;
        self.check_attribute_requirement(req, required.as_deref(), now_epoch)?;
        // Deposit is the last fallible external step before issuance; a
        // double-spent coin is rejected here by the mint's spent store.
        self.mint.deposit(&req.coin)?;

        let rights = self
            .rights_templates
            .get(&req.content_id)
            .cloned()
            .unwrap_or_else(Rights::standard_purchase);
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id: req.content_id,
            holder: req.pseudonym_cert.body.pseudonym_key.clone(),
            rights,
            key_envelope: envelope::seal(&req.pseudonym_cert.body.pseudonym_key, &content_key, rng),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.keys);
        self.licenses
            .put(&mut self.store, license.id().as_bytes(), &license)?;
        self.purchase_log.push(PurchaseRecord {
            pseudonym: req.pseudonym_cert.pseudonym_id(),
            content: req.content_id,
            epoch: now_epoch,
        });
        Ok(license)
    }

    /// Privacy-preserving transfer: revoke the old anonymous license,
    /// issue a fresh one to the recipient pseudonym. The provider sees two
    /// pseudonyms and cannot link either to an identity.
    pub fn handle_transfer<R: CryptoRng + ?Sized>(
        &mut self,
        req: &TransferRequest,
        now_epoch: u32,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        req.license.verify(self.keys.public())?;
        self.verify_pseudonym(&req.recipient_cert, now_epoch)?;
        let lid = req.license.id();
        if self.license_crl.contains(&license_crl_id(&lid)) {
            return Err(CoreError::AlreadyRedeemed(lid));
        }
        // Transfer must be granted by the license's own rights.
        match req.license.body.rights.transfer {
            Limit::None => {
                return Err(CoreError::Denied(p2drm_rel::DenyReason::NotGranted(
                    p2drm_rel::Action::Transfer,
                )))
            }
            Limit::Count(0) => {
                return Err(CoreError::Denied(p2drm_rel::DenyReason::CountExhausted(
                    p2drm_rel::Action::Transfer,
                )))
            }
            _ => {}
        }
        // Holder proof: current holder signed (lid ‖ recipient key id).
        let proof_bytes =
            messages::transfer_proof_bytes(&lid, &req.recipient_cert.pseudonym_id());
        req.license
            .body
            .holder
            .verify(&proof_bytes, &req.proof)
            .map_err(|_| CoreError::BadProof)?;

        // The unique-ID rule: exactly one transfer of this lid ever
        // succeeds, atomically, even across restarts (WalKv-backed store).
        let fresh = self
            .spent
            .insert_if_absent(&mut self.store, lid.as_bytes(), &now_epoch)?;
        if !fresh {
            return Err(CoreError::AlreadyRedeemed(lid));
        }
        self.license_crl.insert(license_crl_id(&lid));
        self.license_crl_seq += 1;
        self.persist_crl_entry(b'l', &license_crl_id(&lid))?;

        let item = self
            .catalog
            .get(&req.license.body.content_id)
            .ok_or(CoreError::UnknownContent(req.license.body.content_id))?;
        let new_rights = decrement_transfer(&req.license.body.rights);
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id: req.license.body.content_id,
            holder: req.recipient_cert.body.pseudonym_key.clone(),
            rights: new_rights,
            key_envelope: envelope::seal(
                &req.recipient_cert.body.pseudonym_key,
                &item.key,
                rng,
            ),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.keys);
        self.licenses
            .put(&mut self.store, license.id().as_bytes(), &license)?;
        self.transfer_log.push(TransferRecord {
            from_pseudonym: KeyId::of_rsa(&req.license.body.holder),
            to_pseudonym: req.recipient_cert.pseudonym_id(),
            content: req.license.body.content_id,
        });
        Ok(license)
    }

    /// Domain purchase (authorized-domain extension, `p2drm-domain`):
    /// sells a license bound to a **domain manager key**. The provider
    /// verifies the manager is a certified domain manager and takes an
    /// anonymous coin; it learns "domain D bought X" but never which
    /// devices or people compose the domain.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_domain_purchase<R: CryptoRng + ?Sized>(
        &mut self,
        manager_cert: &Certificate,
        coin: &p2drm_payment::Coin,
        content_id: ContentId,
        domain_name: &str,
        now: u64,
        now_epoch: u32,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        manager_cert.verify(&self.root_key, now)?;
        if manager_cert.body.extension("domain-manager").is_none() {
            return Err(CoreError::BadLicense("not a certified domain manager"));
        }
        let manager_key = manager_cert.body.subject_key.as_rsa()?.clone();
        let item = self
            .catalog
            .get(&content_id)
            .ok_or(CoreError::UnknownContent(content_id))?;
        if coin.denomination < item.meta.price {
            return Err(CoreError::Payment(
                p2drm_payment::PaymentError::InsufficientFunds {
                    balance: coin.denomination,
                    requested: item.meta.price,
                },
            ));
        }
        let content_key = item.key;
        self.mint.deposit(coin)?;

        let mut rights = self
            .rights_templates
            .get(&content_id)
            .cloned()
            .unwrap_or_else(Rights::standard_purchase);
        rights.domain = Some(domain_name.to_string());
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id,
            holder: manager_key.clone(),
            rights,
            key_envelope: envelope::seal(&manager_key, &content_key, rng),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.keys);
        self.licenses
            .put(&mut self.store, license.id().as_bytes(), &license)?;
        self.purchase_log.push(PurchaseRecord {
            pseudonym: KeyId::of_rsa(&manager_key),
            content: content_id,
            epoch: now_epoch,
        });
        Ok(license)
    }

    /// Anonymous content download (no authentication — the payload is
    /// useless without a license).
    pub fn download(&self, content_id: &ContentId) -> Result<([u8; 12], Vec<u8>), CoreError> {
        let item = self
            .catalog
            .get(content_id)
            .ok_or(CoreError::UnknownContent(*content_id))?;
        Ok((item.nonce, item.ciphertext.clone()))
    }

    /// Revokes a pseudonym (after TTP de-anonymization).
    pub fn revoke_pseudonym(&mut self, id: KeyId) -> Result<(), CoreError> {
        self.pseudonym_crl.insert(id);
        self.pseudonym_crl_seq += 1;
        self.persist_crl_entry(b'p', &id)
    }

    /// Revokes a license id directly (e.g. refund, abuse).
    pub fn revoke_license(&mut self, lid: &LicenseId) -> Result<(), CoreError> {
        let id = license_crl_id(lid);
        self.license_crl.insert(id);
        self.license_crl_seq += 1;
        self.persist_crl_entry(b'l', &id)
    }

    /// Signed license CRL for full device sync.
    pub fn signed_license_crl(&self, issued_at: u64) -> SignedCrl {
        SignedCrl::create(&self.keys, self.license_crl_seq, issued_at, self.license_crl.clone())
    }

    /// Signed pseudonym CRL for full device sync.
    pub fn signed_pseudonym_crl(&self, issued_at: u64) -> SignedCrl {
        SignedCrl::create(&self.keys, self.pseudonym_crl_seq, issued_at, self.pseudonym_crl.clone())
    }

    /// Incremental license-CRL update for a device that already holds
    /// sequence `since` — O(changes) bytes instead of the full list.
    pub fn license_crl_delta(&self, since: u64, issued_at: u64) -> p2drm_pki::crl::SignedCrlDelta {
        let added = self
            .license_crl_events
            .iter()
            .filter(|(seq, _)| *seq > since)
            .map(|(_, id)| *id)
            .collect();
        p2drm_pki::crl::SignedCrlDelta::create(
            &self.keys,
            since,
            self.license_crl_seq,
            issued_at,
            added,
        )
    }

    /// Incremental pseudonym-CRL update.
    pub fn pseudonym_crl_delta(&self, since: u64, issued_at: u64) -> p2drm_pki::crl::SignedCrlDelta {
        let added = self
            .pseudonym_crl_events
            .iter()
            .filter(|(seq, _)| *seq > since)
            .map(|(_, id)| *id)
            .collect();
        p2drm_pki::crl::SignedCrlDelta::create(
            &self.keys,
            since,
            self.pseudonym_crl_seq,
            issued_at,
            added,
        )
    }

    /// Licenses issued so far.
    pub fn license_count(&self) -> usize {
        self.licenses.len(&self.store)
    }

    /// Spent (transferred/redeemed) license ids so far.
    pub fn spent_count(&self) -> usize {
        self.spent.len(&self.store)
    }

    /// The adversarial-provider purchase view.
    pub fn purchase_log(&self) -> &[PurchaseRecord] {
        &self.purchase_log
    }

    /// The adversarial-provider transfer view.
    pub fn transfer_log(&self) -> &[TransferRecord] {
        &self.transfer_log
    }

    /// Direct store access (storage metrics in E6).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable store access (maintenance: compaction etc.).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }
}

/// License ids enter CRLs as their SHA-256 [`KeyId`] image.
pub fn license_crl_id(lid: &LicenseId) -> KeyId {
    digest_id(lid.as_bytes())
}

/// Transfer semantics: the fresh license carries one fewer transfer use.
fn decrement_transfer(rights: &Rights) -> Rights {
    let mut r = rights.clone();
    r.transfer = match r.transfer {
        Limit::None => Limit::None,
        Limit::Count(n) => Limit::Count(n.saturating_sub(1)),
        Limit::Unlimited => Limit::Unlimited,
    };
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrement_transfer_semantics() {
        let r = Rights::builder().transfer(Limit::Count(2)).build();
        assert_eq!(decrement_transfer(&r).transfer, Limit::Count(1));
        let r = Rights::builder().transfer(Limit::Unlimited).build();
        assert_eq!(decrement_transfer(&r).transfer, Limit::Unlimited);
        let r = Rights::builder().build();
        assert_eq!(decrement_transfer(&r).transfer, Limit::None);
    }

    #[test]
    fn license_crl_id_is_stable() {
        let lid = LicenseId::from_label("x");
        assert_eq!(license_crl_id(&lid), license_crl_id(&lid));
        assert_ne!(
            license_crl_id(&lid),
            license_crl_id(&LicenseId::from_label("y"))
        );
    }
}
