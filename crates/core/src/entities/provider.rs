//! The content provider / license server.
//!
//! Sells content to **pseudonyms**: verifies blind-issued certificates,
//! deposits anonymous coins, issues uniquely-identified anonymous licenses,
//! executes privacy-preserving transfers, and maintains the spent-ID store
//! that makes each license id redeemable exactly once.
//!
//! # Concurrency architecture: core / state split
//!
//! The provider is the system's only serialization point — every purchase
//! must atomically consult the spent-ID store and sign a license — so it
//! is built as a **shared-state concurrent service**. One logical
//! [`ContentProvider`] serves N client threads through `&self`:
//!
//! * [`ProviderCore`] (`core` field) — the immutable identity: signing
//!   key pair, certificate, root/RA trust anchors, configuration. Written
//!   once at construction, read lock-free from every thread.
//! * [`ProviderState`] (`state` field) — the mutable tables, each behind
//!   its own lock so unrelated operations never contend:
//!   - the KV **backend** (any [`ConcurrentKv`]) holding the **spent-ID
//!     set**, license store, persisted catalog/rights/CRL tables;
//!     `insert_if_absent` (the double-redemption primitive) is atomic per
//!     key inside the backend;
//!   - the in-memory catalog + rights templates (`RwLock`, read-mostly);
//!   - trusted attribute keys (`RwLock`, read-mostly);
//!   - CRL state — both revocation lists, their sequence numbers and
//!     event logs — under one `RwLock` (revocation is rare, CRL reads are
//!     cheap);
//!   - the purchase/transfer observation logs (`Mutex`, append-only).
//!
//! Every protocol entry point (`handle_purchase`, `handle_transfer`,
//! `download`, CRL sync) takes `&self`; `ContentProvider<B>` is `Sync`
//! whenever the backend is, so threads share one provider by reference —
//! no shard cloning, no external mutex.
//!
//! # Backend matrix and durability
//!
//! The backend type parameter picks the deployment shape:
//!
//! * [`ShardedKv`]`<MemKv>` (the [`MemBackend`] default,
//!   [`ContentProvider::new`]) — volatile, lock-sharded; tests and
//!   simulations;
//! * [`ShardedKv`]`<S>` over a caller-supplied store
//!   ([`ContentProvider::with_store`]) — e.g. one `WalKv` as a
//!   single-shard durable store;
//! * [`WalShardedKv`] ([`ContentProvider::open_durable`]) — the
//!   production shape: per-shard WALs with group commit, so the provider
//!   survives an unclean drop. Reopen with
//!   [`ContentProvider::resume_durable`] (keys from the operator's
//!   vault): spent ids, licenses, catalog and CRLs are intact, and a
//!   double-redeem race spanning the restart still has exactly one
//!   winner — the claim is WAL-logged before the in-memory index changes,
//!   so the exactly-once decision is as durable as the chosen
//!   [`p2drm_store::SyncPolicy`].

use crate::content::{ContentCatalog, ContentMeta};
use crate::ids::{ContentId, LicenseId};
use crate::license::{License, LicenseBody};
use crate::protocol::messages::{self, LicenseStatus, PurchaseRequest, TransferRequest};
use crate::CoreError;
use p2drm_crypto::envelope;
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::RsaPublicKey;
use p2drm_payment::Mint;
use p2drm_pki::authority::CertificateAuthority;
use p2drm_pki::cert::{digest_id, Certificate, KeyId, PseudonymCertificate};
use p2drm_pki::crl::{RevocationList, SignedCrl};
use p2drm_rel::{Limit, Rights};
use p2drm_store::typed::Table;
use p2drm_store::{
    ConcurrentKv, Kv, MemKv, RecoveryReport, ShardedKv, WalShardedConfig, WalShardedKv,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::PathBuf;

/// The default volatile backend: lock-sharded in-memory store.
pub type MemBackend = ShardedKv<MemKv>;

/// Provider construction parameters.
#[derive(Clone, Debug)]
pub struct ProviderConfig {
    /// RSA modulus bits for the license-signing key.
    pub key_bits: usize,
    /// How many epochs old a pseudonym certificate may be.
    pub epoch_window: u32,
    /// Certificate validity window.
    pub validity: p2drm_pki::cert::Validity,
    /// Lock shards for the default in-memory store (ignored by
    /// [`ContentProvider::with_store`], which wraps the caller's single
    /// store).
    pub store_shards: usize,
    /// Entry bound of the signature-verification cache consulted by
    /// [`ContentProvider::verify_pseudonym`] and the attribute-credential
    /// check; `0` disables caching (every presentation pays the full RSA
    /// verify — the E11 ablation configuration).
    pub verify_cache_capacity: usize,
    /// Batch size of the verification valve
    /// ([`crate::valve::VerifyValve`]): cache-missing pseudonym
    /// verifications arriving concurrently stage in a bounded queue and
    /// are checked as one batch of up to this many items. `0` disables
    /// the valve (every miss verifies individually, the pre-batching
    /// behaviour); values of `1` are treated as `2`. The valve only pays
    /// off when several worker threads verify concurrently — leave it off
    /// for single-threaded callers, which would otherwise idle out the
    /// deadline on every cache miss.
    pub valve_batch: usize,
    /// How long the valve's first-in thread waits (in microseconds) for
    /// the batch to fill before flushing whatever has staged. Bounds the
    /// added latency of an enabled valve.
    pub valve_deadline_us: u64,
    /// Whether this endpoint answers the wire `MetricsDump` op
    /// (`opcode 9`). Off by default: the snapshot carries only static
    /// metric names, counts and durations — never pseudonyms, card ids,
    /// license ids or coin serials — but exposing load shape is still an
    /// operator decision.
    pub metrics_dump: bool,
}

impl ProviderConfig {
    /// Small keys, generous windows — unit-test defaults. The valve is
    /// off; concurrent-throughput runs opt in explicitly.
    pub fn fast_test() -> Self {
        ProviderConfig {
            key_bits: 512,
            epoch_window: 4,
            validity: p2drm_pki::cert::Validity::new(0, u64::MAX / 2),
            store_shards: 8,
            verify_cache_capacity: 4096,
            valve_batch: 0,
            valve_deadline_us: 50,
            metrics_dump: false,
        }
    }
}

/// What the provider logs per sale — the adversarial-provider view used by
/// the linkability experiment (E7). Note: pseudonym ids only, no identity.
#[derive(Clone, Debug)]
pub struct PurchaseRecord {
    /// Buyer pseudonym.
    pub pseudonym: KeyId,
    /// What was bought.
    pub content: ContentId,
    /// When (epoch granularity).
    pub epoch: u32,
}

/// A transfer the provider witnessed: two pseudonyms, no identities.
#[derive(Clone, Debug)]
pub struct TransferRecord {
    /// Old holder pseudonym.
    pub from_pseudonym: KeyId,
    /// New holder pseudonym.
    pub to_pseudonym: KeyId,
    /// Content involved.
    pub content: ContentId,
}

/// The provider's immutable identity: signing keys, certificate, trust
/// anchors and configuration. Shared lock-free across threads.
pub struct ProviderCore {
    keys: p2drm_crypto::rsa::RsaKeyPair,
    cert: Certificate,
    root_key: RsaPublicKey,
    ra_blind_key: RsaPublicKey,
    /// Cached fingerprint of `ra_blind_key` (cache-key component; hashing
    /// the key on every verification would eat into the cache win).
    ra_blind_key_fp: [u8; 32],
    config: ProviderConfig,
    /// Signature-verification cache: N requests presenting the same
    /// certificate bytes in the same epoch pay for one RSA verify.
    /// Interior-mutable and sharded, so it lives in the otherwise
    /// immutable core and is consulted lock-free-ish from every thread.
    vcache: p2drm_pki::VerifyCache,
    /// Batching valve in front of the RA-signature check (behind the
    /// cache: only misses stage here). `None` when
    /// [`ProviderConfig::valve_batch`] is 0.
    valve: Option<crate::valve::VerifyValve>,
}

/// CRL state: both revocation lists plus the sequence counters and
/// `(sequence, id)` event logs backing incremental sync.
struct CrlState {
    pseudonym_crl: RevocationList,
    license_crl: RevocationList,
    license_crl_seq: u64,
    pseudonym_crl_seq: u64,
    license_crl_events: Vec<(u64, KeyId)>,
    pseudonym_crl_events: Vec<(u64, KeyId)>,
}

impl CrlState {
    fn empty() -> Self {
        CrlState {
            pseudonym_crl: RevocationList::new(),
            license_crl: RevocationList::new(),
            license_crl_seq: 0,
            pseudonym_crl_seq: 0,
            license_crl_events: Vec::new(),
            pseudonym_crl_events: Vec::new(),
        }
    }
}

/// The provider's mutable tables, each behind its own lock. See the
/// module docs for the locking layout. Generic over the [`ConcurrentKv`]
/// backend holding the persisted tables.
pub struct ProviderState<B: ConcurrentKv> {
    store: B,
    licenses: Table<License>,
    spent: Table<u32>,
    content_table: Table<crate::content::PackagedContent>,
    rights_table: Table<Rights>,
    crl_table: Table<u64>,
    catalog: RwLock<ContentCatalog>,
    rights_templates: RwLock<HashMap<ContentId, Rights>>,
    /// Trusted per-attribute RA verification keys.
    attribute_trust: RwLock<HashMap<String, RsaPublicKey>>,
    crl: RwLock<CrlState>,
    purchase_log: Mutex<Vec<PurchaseRecord>>,
    transfer_log: Mutex<Vec<TransferRecord>>,
    mint: Mint,
}

/// The content provider, generic over its [`ConcurrentKv`] store backend.
/// Outcome of the first half of a split pseudonym verification: either
/// fully settled (cache hit, valve disabled, or structural failure already
/// returned as an error) or staged in the valve awaiting a batched
/// verdict.
enum PseudonymGate {
    /// Signature already settled as valid — nothing left to wait for.
    Clear,
    /// Staged in the valve; redeem the ticket and, on success, insert
    /// `key` into the verification cache.
    Staged {
        ticket: crate::valve::VerdictTicket,
        key: [u8; 32],
    },
}

pub struct ContentProvider<B: ConcurrentKv = MemBackend> {
    core: ProviderCore,
    state: ProviderState<B>,
}

/// One registry snapshot carries the provider's verify-cache, valve and
/// store metrics together; the wire service registers the provider as a
/// weak source at construction. Names are static, values are counts and
/// durations — no pseudonyms, card ids, license ids or coin serials.
impl<B: ConcurrentKv> p2drm_obs::MetricSource for ContentProvider<B> {
    fn collect(&self, out: &mut p2drm_obs::SnapshotBuilder) {
        let c = self.verify_cache_counters();
        out.counter("vcache_hits", c.hits);
        out.counter("vcache_misses", c.misses);
        out.counter("vcache_insertions", c.insertions);
        out.counter("vcache_evictions", c.evictions);
        if let Some(valve) = &self.core.valve {
            let v = valve.counters();
            out.counter("valve_batched", v.batched);
            out.counter("valve_timer_flushes", v.timer_flushes);
            out.counter("valve_size_flushes", v.size_flushes);
            out.counter("valve_fallback_splits", v.fallback_splits);
            out.histogram("valve_wait_ns", &valve.wait_hist().snapshot());
            out.histogram("valve_fill_ns", &valve.fill_hist().snapshot());
        }
        self.state.store.collect_metrics(out);
    }
}

impl ContentProvider<MemBackend> {
    /// Provider with a volatile store, lock-sharded per
    /// [`ProviderConfig::store_shards`].
    pub fn new<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Self {
        let shards = config.store_shards.max(1);
        Self::with_backend(
            root,
            mint,
            ra_blind_key,
            ShardedKv::new_with(shards, |_| MemKv::new()),
            config,
            rng,
        )
    }
}

impl<S: Kv> ContentProvider<ShardedKv<S>> {
    /// Provider over a caller-supplied store (e.g. [`p2drm_store::WalKv`]
    /// so the spent-ID set survives restarts). The single store becomes a
    /// one-shard [`ShardedKv`]: durability and recovery semantics are
    /// untouched, all operations still serialize through its lock.
    pub fn with_store<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: S,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_backend(
            root,
            mint,
            ra_blind_key,
            ShardedKv::single(store),
            config,
            rng,
        )
    }

    /// Provider over an explicitly sharded store.
    pub fn with_sharded_store<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: ShardedKv<S>,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_backend(root, mint, ra_blind_key, store, config, rng)
    }

    /// Restarts a provider from its persisted state: the serialized key
    /// pair + certificate (the operator's key vault) and the durable store
    /// holding catalog, licenses, spent ids and CRLs.
    ///
    /// After resume, previously issued licenses still verify, previously
    /// spent license ids are still rejected, and CRL sequence numbers
    /// continue monotonically.
    pub fn resume(
        keys: p2drm_crypto::rsa::RsaKeyPair,
        cert: Certificate,
        root_key: RsaPublicKey,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: S,
        config: ProviderConfig,
    ) -> Result<Self, CoreError> {
        Self::resume_backend(
            keys,
            cert,
            root_key,
            mint,
            ra_blind_key,
            ShardedKv::single(store),
            config,
        )
    }
}

impl ContentProvider<WalShardedKv> {
    /// Opens a **durable** provider over a [`WalShardedKv`] directory:
    /// N per-shard write-ahead logs with group commit at
    /// `durable.policy`. All shard logs are replayed (in parallel) and
    /// any persisted catalog/rights/CRL/spent state is restored, so an
    /// existing directory reopens with its tables intact.
    ///
    /// A **fresh signing identity** is generated; licenses issued by a
    /// previous identity will not verify against the new key. For a true
    /// restart — same keys, old licenses still valid — pair
    /// [`ContentProvider::export_keys`] with
    /// [`ContentProvider::resume_durable`].
    pub fn open_durable<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        dir: impl Into<PathBuf>,
        durable: WalShardedConfig,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Result<(Self, RecoveryReport), CoreError> {
        let (store, report) = WalShardedKv::open(dir, durable)?;
        let provider = Self::with_backend(root, mint, ra_blind_key, store, config, rng);
        provider.restore_from_store()?;
        Ok((provider, report))
    }

    /// The full durable restart: signing keys from the operator's vault
    /// (see [`ContentProvider::export_keys`]), state replayed from the
    /// WAL directory. Old licenses verify, spent ids stay spent, CRL
    /// sequences continue monotonically.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_durable(
        keys: p2drm_crypto::rsa::RsaKeyPair,
        cert: Certificate,
        root_key: RsaPublicKey,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        dir: impl Into<PathBuf>,
        durable: WalShardedConfig,
        config: ProviderConfig,
    ) -> Result<(Self, RecoveryReport), CoreError> {
        let (store, report) = WalShardedKv::open(dir, durable)?;
        let provider =
            Self::resume_backend(keys, cert, root_key, mint, ra_blind_key, store, config)?;
        Ok((provider, report))
    }
}

impl<B: ConcurrentKv> ContentProvider<B> {
    /// Provider over any concurrent store backend — the most general
    /// constructor ([`ContentProvider::new`], [`with_store`] and
    /// [`open_durable`] are conveniences over it).
    ///
    /// [`with_store`]: ContentProvider::with_store
    /// [`open_durable`]: ContentProvider::open_durable
    pub fn with_backend<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        backend: B,
        config: ProviderConfig,
        rng: &mut R,
    ) -> Self {
        let keys = p2drm_crypto::rsa::RsaKeyPair::generate(config.key_bits, rng);
        let cert = root.issue(
            p2drm_pki::cert::EntityKind::ContentProvider,
            p2drm_pki::cert::SubjectKey::Rsa(keys.public().clone()),
            config.validity,
            vec![],
        );
        let root_key = root.public_key().clone();
        Self::assemble(keys, cert, root_key, mint, ra_blind_key, backend, config)
    }

    fn assemble(
        keys: p2drm_crypto::rsa::RsaKeyPair,
        cert: Certificate,
        root_key: RsaPublicKey,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        store: B,
        config: ProviderConfig,
    ) -> Self {
        ContentProvider {
            core: ProviderCore {
                ra_blind_key_fp: ra_blind_key.fingerprint(),
                vcache: p2drm_pki::VerifyCache::new(config.verify_cache_capacity),
                valve: match config.valve_batch {
                    0 => None,
                    b => Some(crate::valve::VerifyValve::new(
                        ra_blind_key.clone(),
                        b,
                        std::time::Duration::from_micros(config.valve_deadline_us),
                    )),
                },
                keys,
                cert,
                root_key,
                ra_blind_key,
                config,
            },
            state: ProviderState {
                store,
                licenses: Table::new("lic/"),
                spent: Table::new("spent/"),
                content_table: Table::new("content/"),
                rights_table: Table::new("rightst/"),
                crl_table: Table::new("crl/"),
                catalog: RwLock::new(ContentCatalog::new()),
                rights_templates: RwLock::new(HashMap::new()),
                attribute_trust: RwLock::new(HashMap::new()),
                crl: RwLock::new(CrlState::empty()),
                purchase_log: Mutex::new(Vec::new()),
                transfer_log: Mutex::new(Vec::new()),
                mint,
            },
        }
    }

    /// Restarts a provider over any backend from its persisted state: the
    /// serialized key pair + certificate (the operator's key vault) and
    /// the store holding catalog, licenses, spent ids and CRLs.
    ///
    /// After resume, previously issued licenses still verify, previously
    /// spent license ids are still rejected, and CRL sequence numbers
    /// continue monotonically.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_backend(
        keys: p2drm_crypto::rsa::RsaKeyPair,
        cert: Certificate,
        root_key: RsaPublicKey,
        mint: Mint,
        ra_blind_key: RsaPublicKey,
        backend: B,
        config: ProviderConfig,
    ) -> Result<Self, CoreError> {
        let provider = Self::assemble(keys, cert, root_key, mint, ra_blind_key, backend, config);
        provider.restore_from_store()?;
        Ok(provider)
    }

    /// Rebuilds the in-memory mirrors (catalog, rights templates, CRL
    /// sets/sequences) from the persisted tables in the store backend.
    /// Idempotent; called by every resume/open-durable path.
    pub fn restore_from_store(&self) -> Result<(), CoreError> {
        {
            // Catalog + rights templates.
            let state = &self.state;
            let mut catalog = state.catalog.write();
            let mut templates = state.rights_templates.write();
            for (_, item) in state.content_table.scan_shared(&state.store)? {
                templates.insert(
                    item.meta.id,
                    state
                        .rights_table
                        .get_shared(&state.store, item.meta.id.as_bytes())?
                        .unwrap_or_else(Rights::standard_purchase),
                );
                catalog.restore(item);
            }
        }
        {
            // CRLs: "crl/l/<id>" and "crl/p/<id>" entries whose value is
            // the sequence number at which the revocation happened.
            let state = &self.state;
            let mut crl = state.crl.write();
            crl.license_crl_events.clear();
            crl.pseudonym_crl_events.clear();
            for (key, seq) in state.crl_table.scan_shared(&state.store)? {
                if let Some(id_bytes) = key.strip_prefix(b"l/") {
                    if id_bytes.len() == 32 {
                        let id = KeyId(id_bytes.try_into().expect("checked width"));
                        crl.license_crl.insert(id);
                        crl.license_crl_events.push((seq, id));
                        crl.license_crl_seq = crl.license_crl_seq.max(seq);
                    }
                } else if let Some(id_bytes) = key.strip_prefix(b"p/") {
                    if id_bytes.len() == 32 {
                        let id = KeyId(id_bytes.try_into().expect("checked width"));
                        crl.pseudonym_crl.insert(id);
                        crl.pseudonym_crl_events.push((seq, id));
                        crl.pseudonym_crl_seq = crl.pseudonym_crl_seq.max(seq);
                    }
                }
            }
            crl.license_crl_events.sort_unstable();
            crl.pseudonym_crl_events.sort_unstable();
        }
        Ok(())
    }

    /// Serialized private key material for the operator's key vault
    /// (pair this with [`ContentProvider::resume`]). **Secret bytes.**
    pub fn export_keys(&self) -> Vec<u8> {
        p2drm_codec::to_bytes(&self.core.keys)
    }

    /// Persists one revocation into the CRL table. Caller holds the CRL
    /// write lock and has already bumped the relevant sequence counter.
    fn persist_crl_entry(&self, crl: &mut CrlState, kind: u8, id: &KeyId) -> Result<(), CoreError> {
        let seq = match kind {
            b'l' => crl.license_crl_seq,
            _ => crl.pseudonym_crl_seq,
        };
        let mut key = Vec::with_capacity(34);
        key.push(kind);
        key.push(b'/');
        key.extend_from_slice(&id.0);
        self.state
            .crl_table
            .put_shared(&self.state.store, &key, &seq)?;
        match kind {
            b'l' => crl.license_crl_events.push((seq, *id)),
            _ => crl.pseudonym_crl_events.push((seq, *id)),
        }
        Ok(())
    }

    /// License verification key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.core.keys.public()
    }

    /// Provider certificate (chains to the root).
    pub fn certificate(&self) -> &Certificate {
        &self.core.cert
    }

    /// Publishes content with a rights template applied to every sale.
    /// The packaged item (including its content key) and the template are
    /// persisted so the catalog survives [`ContentProvider::resume`].
    pub fn publish<R: CryptoRng + ?Sized>(
        &self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rights: Rights,
        rng: &mut R,
    ) -> ContentId {
        self.publish_with_requirement(title, price, payload, rights, None, rng)
    }

    /// Publishes attribute-restricted content (e.g. age-rated): buyers
    /// must present a credential for `attribute` bound to their pseudonym.
    pub fn publish_restricted<R: CryptoRng + ?Sized>(
        &self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rights: Rights,
        attribute: &str,
        rng: &mut R,
    ) -> ContentId {
        self.publish_with_requirement(
            title,
            price,
            payload,
            rights,
            Some(attribute.to_string()),
            rng,
        )
    }

    fn publish_with_requirement<R: CryptoRng + ?Sized>(
        &self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rights: Rights,
        required_attribute: Option<String>,
        rng: &mut R,
    ) -> ContentId {
        let mut catalog = self.state.catalog.write();
        let id = catalog.publish_with_requirement(title, price, payload, required_attribute, rng);
        let item = catalog.get(&id).expect("just published");
        self.state
            .content_table
            .put_shared(&self.state.store, id.as_bytes(), item)
            .expect("catalog persistence");
        self.state
            .rights_table
            .put_shared(&self.state.store, id.as_bytes(), &rights)
            .expect("template persistence");
        self.state.rights_templates.write().insert(id, rights);
        id
    }

    /// Trusts an RA per-attribute verification key (operator setup).
    pub fn trust_attribute(&self, attribute: &str, key: RsaPublicKey) {
        self.state
            .attribute_trust
            .write()
            .insert(attribute.to_string(), key);
    }

    /// Checks the attribute requirement of a purchase, if any.
    fn check_attribute_requirement(
        &self,
        req: &PurchaseRequest,
        required: Option<&str>,
        now_epoch: u32,
    ) -> Result<(), CoreError> {
        let Some(attr) = required else { return Ok(()) };
        let cert = req
            .attribute_cert
            .as_ref()
            .ok_or(CoreError::BadPseudonym("attribute credential required"))?;
        if cert.attribute != attr {
            return Err(CoreError::BadPseudonym("wrong attribute credential"));
        }
        let trust = self.state.attribute_trust.read();
        let key = trust
            .get(attr)
            .ok_or(CoreError::BadPseudonym("attribute issuer not trusted"))?;
        // Cached like the pseudonym check: repeat presentations of the
        // same credential skip the RSA verify; the binding and epoch
        // checks below always re-run.
        let cache_key = p2drm_pki::VerifyCache::key(&[
            &p2drm_codec::to_bytes(cert),
            &key.fingerprint(),
            &now_epoch.to_le_bytes(),
        ]);
        self.core.vcache.verify_with(cache_key, || {
            cert.verify(key)
                .map_err(|_| CoreError::BadPseudonym("attribute signature invalid"))
        })?;
        // The credential must bind to the very pseudonym making the
        // purchase — it cannot be lent to another card.
        if cert.pseudonym_id() != req.pseudonym_cert.pseudonym_id() {
            return Err(CoreError::BadPseudonym(
                "attribute bound to a different pseudonym",
            ));
        }
        if cert.body.epoch > now_epoch
            || now_epoch - cert.body.epoch > self.core.config.epoch_window
        {
            return Err(CoreError::BadPseudonym("attribute credential epoch stale"));
        }
        Ok(())
    }

    /// Public metadata for one catalog item.
    pub fn content_meta(&self, id: &ContentId) -> Option<ContentMeta> {
        self.state
            .catalog
            .read()
            .get(id)
            .map(|item| item.meta.clone())
    }

    /// Public metadata listing (what an anonymous browser sees), id-sorted.
    pub fn list_content(&self) -> Vec<ContentMeta> {
        self.state
            .catalog
            .read()
            .list()
            .into_iter()
            .cloned()
            .collect()
    }

    /// Number of catalog items.
    pub fn content_count(&self) -> usize {
        self.state.catalog.read().len()
    }

    /// Validates a pseudonym certificate: RA blind signature, epoch
    /// freshness, and the pseudonym CRL.
    ///
    /// The blind-signature check consults the provider's verification
    /// cache (key = SHA-256 of cert bytes ‖ RA key fingerprint ‖ epoch),
    /// so N purchases presenting the same certificate pay for one RSA
    /// verify. Epoch freshness and the CRL are *always* re-checked — a
    /// revoked or aged-out certificate is refused even when a signature
    /// success from an earlier request (or earlier epoch bucket) is still
    /// cached.
    pub fn verify_pseudonym(
        &self,
        cert: &PseudonymCertificate,
        now_epoch: u32,
    ) -> Result<(), CoreError> {
        let gate = self.begin_verify_pseudonym(cert, now_epoch)?;
        self.finish_verify_pseudonym(gate)
    }

    /// First half of [`Self::verify_pseudonym`]: runs the structural
    /// checks (epoch window, CRL) and either settles the signature from
    /// the verification cache or — with the valve enabled — stages it in
    /// the valve's batch queue and returns immediately. The caller does
    /// independent work, then settles the verdict with
    /// [`Self::finish_verify_pseudonym`]; the overlap is what lets the
    /// valve's batches fill without anyone blocking on them.
    fn begin_verify_pseudonym(
        &self,
        cert: &PseudonymCertificate,
        now_epoch: u32,
    ) -> Result<PseudonymGate, CoreError> {
        // Cheap structural checks first, unconditionally.
        if cert.body.epoch > now_epoch {
            return Err(CoreError::BadPseudonym("epoch in the future"));
        }
        if now_epoch - cert.body.epoch > self.core.config.epoch_window {
            return Err(CoreError::BadPseudonym("epoch too old"));
        }
        if self
            .state
            .crl
            .read()
            .pseudonym_crl
            .contains(&cert.pseudonym_id())
        {
            return Err(CoreError::BadPseudonym("pseudonym revoked"));
        }
        let key = p2drm_pki::VerifyCache::key(&[
            &p2drm_codec::to_bytes(cert),
            &self.core.ra_blind_key_fp,
            &now_epoch.to_le_bytes(),
        ]);
        // With the valve enabled, cache misses stage in its queue and are
        // verified as one batch with whatever the other worker threads
        // are presenting; successes land in the cache either way.
        if let Some(valve) = &self.core.valve {
            if self.core.vcache.check(&key) {
                p2drm_obs::flag("vcache_hit");
                return Ok(PseudonymGate::Clear);
            }
            p2drm_obs::flag("vcache_miss");
            let ticket = valve.stage(cert.body.signing_bytes(), cert.signature.clone());
            Ok(PseudonymGate::Staged { ticket, key })
        } else {
            self.core
                .vcache
                .verify_with(key, || {
                    // Only misses reach this closure; hits return above
                    // it without a marker.
                    p2drm_obs::flag("vcache_miss");
                    cert.verify(&self.core.ra_blind_key)
                        .map_err(|_| CoreError::BadPseudonym("RA signature invalid"))
                })
                .map(|_| PseudonymGate::Clear)
        }
    }

    /// Second half of [`Self::begin_verify_pseudonym`]: settles a staged
    /// valve verdict (blocking at most the valve deadline) and caches a
    /// success. A no-op for gates already cleared.
    fn finish_verify_pseudonym(&self, gate: PseudonymGate) -> Result<(), CoreError> {
        match gate {
            PseudonymGate::Clear => Ok(()),
            PseudonymGate::Staged { ticket, key } => {
                let valve = self
                    .core
                    .valve
                    .as_ref()
                    .expect("staged gate implies an enabled valve");
                let _stage = p2drm_obs::stage("valve_wait");
                if valve.wait(ticket) {
                    self.core.vcache.insert(key);
                    Ok(())
                } else {
                    Err(CoreError::BadPseudonym("RA signature invalid"))
                }
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProviderConfig {
        &self.core.config
    }

    /// Hit/miss counters of the provider's verification cache (reported
    /// by the sim and experiment E11).
    pub fn verify_cache_counters(&self) -> p2drm_pki::CacheCounters {
        self.core.vcache.counters()
    }

    /// Counters of the verification valve (all zero when the valve is
    /// disabled), reported beside [`Self::verify_cache_counters`] by the
    /// e12 experiment.
    pub fn valve_counters(&self) -> crate::valve::ValveCounters {
        self.core
            .valve
            .as_ref()
            .map(crate::valve::VerifyValve::counters)
            .unwrap_or_default()
    }

    /// Anonymous purchase: verify pseudonym + coin, deposit, issue license.
    /// Callable from many threads at once through `&self`.
    pub fn handle_purchase<R: CryptoRng + ?Sized>(
        &self,
        req: &PurchaseRequest,
        now_epoch: u32,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        // Stage the pseudonym check first, then do the independent prep
        // work (catalog lookup, price + attribute checks, coin signature)
        // while a valve batch fills under other workers' requests. Only
        // the pure parts run before the verdict; the deposit — the first
        // side effect — stays strictly after it. The gate is settled
        // before the prep result is propagated so a bad pseudonym still
        // takes precedence over, say, a bad coin, exactly as when the
        // checks ran sequentially.
        let gate = self.begin_verify_pseudonym(&req.pseudonym_cert, now_epoch)?;
        let prep = (|| -> Result<(u64, Option<String>, [u8; 32]), CoreError> {
            let (price, required, content_key) = {
                let catalog = self.state.catalog.read();
                let item = catalog
                    .get(&req.content_id)
                    .ok_or(CoreError::UnknownContent(req.content_id))?;
                (
                    item.meta.price,
                    item.meta.required_attribute.clone(),
                    item.key,
                )
            };
            if req.coin.denomination < price {
                return Err(CoreError::Payment(
                    p2drm_payment::PaymentError::InsufficientFunds {
                        balance: req.coin.denomination,
                        requested: price,
                    },
                ));
            }
            self.check_attribute_requirement(req, required.as_deref(), now_epoch)?;
            self.state.mint.check_coin(&req.coin)?;
            Ok((price, required, content_key))
        })();
        self.finish_verify_pseudonym(gate)?;
        let (_price, _required, content_key) = prep?;
        // Deposit is the last fallible external step before issuance; a
        // double-spent coin is rejected here by the mint's spent store
        // (its signature was already checked in the prep block above).
        {
            let _stage = p2drm_obs::stage("mint_deposit");
            self.state.mint.deposit_prechecked(&req.coin)?;
        }

        let rights = self
            .state
            .rights_templates
            .read()
            .get(&req.content_id)
            .cloned()
            .unwrap_or_else(Rights::standard_purchase);
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id: req.content_id,
            holder: req.pseudonym_cert.body.pseudonym_key.clone(),
            rights,
            key_envelope: envelope::seal(&req.pseudonym_cert.body.pseudonym_key, &content_key, rng),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.core.keys);
        self.state
            .licenses
            .put_shared(&self.state.store, license.id().as_bytes(), &license)?;
        self.state.purchase_log.lock().push(PurchaseRecord {
            pseudonym: req.pseudonym_cert.pseudonym_id(),
            content: req.content_id,
            epoch: now_epoch,
        });
        Ok(license)
    }

    /// Privacy-preserving transfer: revoke the old anonymous license,
    /// issue a fresh one to the recipient pseudonym. The provider sees two
    /// pseudonyms and cannot link either to an identity.
    ///
    /// Concurrency: of N racing transfers of the same license id, exactly
    /// one passes the atomic spent-ID `insert_if_absent`; the rest fail
    /// with [`CoreError::AlreadyRedeemed`].
    pub fn handle_transfer<R: CryptoRng + ?Sized>(
        &self,
        req: &TransferRequest,
        now_epoch: u32,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        req.license.verify(self.core.keys.public())?;
        self.verify_pseudonym(&req.recipient_cert, now_epoch)?;
        let lid = req.license.id();
        // Fast-path reject for ids already revoked (the authoritative
        // exactly-once decision is the spent-ID insert below).
        if self
            .state
            .crl
            .read()
            .license_crl
            .contains(&license_crl_id(&lid))
        {
            return Err(CoreError::AlreadyRedeemed(lid));
        }
        // Transfer must be granted by the license's own rights.
        match req.license.body.rights.transfer {
            Limit::None => {
                return Err(CoreError::Denied(p2drm_rel::DenyReason::NotGranted(
                    p2drm_rel::Action::Transfer,
                )))
            }
            Limit::Count(0) => {
                return Err(CoreError::Denied(p2drm_rel::DenyReason::CountExhausted(
                    p2drm_rel::Action::Transfer,
                )))
            }
            _ => {}
        }
        // Holder proof: current holder signed (lid ‖ recipient key id).
        let proof_bytes = messages::transfer_proof_bytes(&lid, &req.recipient_cert.pseudonym_id());
        req.license
            .body
            .holder
            .verify(&proof_bytes, &req.proof)
            .map_err(|_| CoreError::BadProof)?;

        // The unique-ID rule: exactly one transfer of this lid ever
        // succeeds, atomically, even across restarts (WalKv-backed store)
        // and across threads (check-and-set under the shard write lock).
        let fresh = self.state.spent.insert_if_absent_shared(
            &self.state.store,
            lid.as_bytes(),
            &now_epoch,
        )?;
        if !fresh {
            return Err(CoreError::AlreadyRedeemed(lid));
        }
        {
            let mut crl = self.state.crl.write();
            crl.license_crl.insert(license_crl_id(&lid));
            crl.license_crl_seq += 1;
            self.persist_crl_entry(&mut crl, b'l', &license_crl_id(&lid))?;
        }

        let content_key = {
            let catalog = self.state.catalog.read();
            catalog
                .get(&req.license.body.content_id)
                .ok_or(CoreError::UnknownContent(req.license.body.content_id))?
                .key
        };
        let new_rights = decrement_transfer(&req.license.body.rights);
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id: req.license.body.content_id,
            holder: req.recipient_cert.body.pseudonym_key.clone(),
            rights: new_rights,
            key_envelope: envelope::seal(&req.recipient_cert.body.pseudonym_key, &content_key, rng),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.core.keys);
        self.state
            .licenses
            .put_shared(&self.state.store, license.id().as_bytes(), &license)?;
        self.state.transfer_log.lock().push(TransferRecord {
            from_pseudonym: KeyId::of_rsa(&req.license.body.holder),
            to_pseudonym: req.recipient_cert.pseudonym_id(),
            content: req.license.body.content_id,
        });
        Ok(license)
    }

    /// Domain purchase (authorized-domain extension, `p2drm-domain`):
    /// sells a license bound to a **domain manager key**. The provider
    /// verifies the manager is a certified domain manager and takes an
    /// anonymous coin; it learns "domain D bought X" but never which
    /// devices or people compose the domain.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_domain_purchase<R: CryptoRng + ?Sized>(
        &self,
        manager_cert: &Certificate,
        coin: &p2drm_payment::Coin,
        content_id: ContentId,
        domain_name: &str,
        now: u64,
        now_epoch: u32,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        manager_cert.verify(&self.core.root_key, now)?;
        if manager_cert.body.extension("domain-manager").is_none() {
            return Err(CoreError::BadLicense("not a certified domain manager"));
        }
        let manager_key = manager_cert.body.subject_key.as_rsa()?.clone();
        let (price, content_key) = {
            let catalog = self.state.catalog.read();
            let item = catalog
                .get(&content_id)
                .ok_or(CoreError::UnknownContent(content_id))?;
            (item.meta.price, item.key)
        };
        if coin.denomination < price {
            return Err(CoreError::Payment(
                p2drm_payment::PaymentError::InsufficientFunds {
                    balance: coin.denomination,
                    requested: price,
                },
            ));
        }
        self.state.mint.deposit(coin)?;

        let mut rights = self
            .state
            .rights_templates
            .read()
            .get(&content_id)
            .cloned()
            .unwrap_or_else(Rights::standard_purchase);
        rights.domain = Some(domain_name.to_string());
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id,
            holder: manager_key.clone(),
            rights,
            key_envelope: envelope::seal(&manager_key, &content_key, rng),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.core.keys);
        self.state
            .licenses
            .put_shared(&self.state.store, license.id().as_bytes(), &license)?;
        self.state.purchase_log.lock().push(PurchaseRecord {
            pseudonym: KeyId::of_rsa(&manager_key),
            content: content_id,
            epoch: now_epoch,
        });
        Ok(license)
    }

    /// Anonymous content download (no authentication — the payload is
    /// useless without a license).
    pub fn download(&self, content_id: &ContentId) -> Result<([u8; 12], Vec<u8>), CoreError> {
        let catalog = self.state.catalog.read();
        let item = catalog
            .get(content_id)
            .ok_or(CoreError::UnknownContent(*content_id))?;
        Ok((item.nonce, item.ciphertext.clone()))
    }

    /// Revokes a pseudonym (after TTP de-anonymization).
    pub fn revoke_pseudonym(&self, id: KeyId) -> Result<(), CoreError> {
        let mut crl = self.state.crl.write();
        crl.pseudonym_crl.insert(id);
        crl.pseudonym_crl_seq += 1;
        self.persist_crl_entry(&mut crl, b'p', &id)
    }

    /// Revokes a license id directly (e.g. refund, abuse).
    pub fn revoke_license(&self, lid: &LicenseId) -> Result<(), CoreError> {
        // Claim the id in the spent table *first*: the spent-ID
        // check-and-set is the authoritative exactly-once decision shared
        // with `handle_transfer`, so a transfer racing this revocation
        // either already won (and the revocation lands on a transferred
        // license, same as the sequential order transfer-then-revoke) or
        // loses with `AlreadyRedeemed`. Without this, a transfer could
        // pass the CRL fast-path read just before the revocation commits
        // and re-issue revoked content. `u32::MAX` marks "revoked, not
        // transferred" (transfers store the transfer epoch).
        let _ = self.state.spent.insert_if_absent_shared(
            &self.state.store,
            lid.as_bytes(),
            &u32::MAX,
        )?;
        let id = license_crl_id(lid);
        let mut crl = self.state.crl.write();
        crl.license_crl.insert(id);
        crl.license_crl_seq += 1;
        self.persist_crl_entry(&mut crl, b'l', &id)
    }

    /// Authoritative status of a license id — the reconciliation query
    /// for ambiguous wire outcomes: a client whose transfer response was
    /// lost re-asks here whether the old id committed (`Transferred`) or
    /// is still `Active`. License ids are 16 unguessable random bytes,
    /// so only a party already holding the id can ask about it.
    pub fn license_status(&self, lid: &LicenseId) -> LicenseStatus {
        // The spent table is the authoritative exactly-once record; its
        // value distinguishes a committed transfer (the transfer epoch)
        // from a direct revocation (`u32::MAX`, see `revoke_license`).
        if let Ok(Some(mark)) = self
            .state
            .spent
            .get_shared(&self.state.store, lid.as_bytes())
        {
            return if mark == u32::MAX {
                LicenseStatus::Revoked
            } else {
                LicenseStatus::Transferred
            };
        }
        if self
            .state
            .crl
            .read()
            .license_crl
            .contains(&license_crl_id(lid))
        {
            return LicenseStatus::Revoked;
        }
        match self
            .state
            .licenses
            .get_shared(&self.state.store, lid.as_bytes())
        {
            Ok(Some(license)) => LicenseStatus::Active {
                holder: KeyId::of_rsa(&license.body.holder),
            },
            _ => LicenseStatus::Unknown,
        }
    }

    /// Signed license CRL for full device sync.
    pub fn signed_license_crl(&self, issued_at: u64) -> SignedCrl {
        let crl = self.state.crl.read();
        SignedCrl::create(
            &self.core.keys,
            crl.license_crl_seq,
            issued_at,
            crl.license_crl.clone(),
        )
    }

    /// Signed pseudonym CRL for full device sync.
    pub fn signed_pseudonym_crl(&self, issued_at: u64) -> SignedCrl {
        let crl = self.state.crl.read();
        SignedCrl::create(
            &self.core.keys,
            crl.pseudonym_crl_seq,
            issued_at,
            crl.pseudonym_crl.clone(),
        )
    }

    /// Incremental license-CRL update for a device that already holds
    /// sequence `since` — O(changes) bytes instead of the full list.
    pub fn license_crl_delta(&self, since: u64, issued_at: u64) -> p2drm_pki::crl::SignedCrlDelta {
        let crl = self.state.crl.read();
        let added = crl
            .license_crl_events
            .iter()
            .filter(|(seq, _)| *seq > since)
            .map(|(_, id)| *id)
            .collect();
        p2drm_pki::crl::SignedCrlDelta::create(
            &self.core.keys,
            since,
            crl.license_crl_seq,
            issued_at,
            added,
        )
    }

    /// Incremental pseudonym-CRL update.
    pub fn pseudonym_crl_delta(
        &self,
        since: u64,
        issued_at: u64,
    ) -> p2drm_pki::crl::SignedCrlDelta {
        let crl = self.state.crl.read();
        let added = crl
            .pseudonym_crl_events
            .iter()
            .filter(|(seq, _)| *seq > since)
            .map(|(_, id)| *id)
            .collect();
        p2drm_pki::crl::SignedCrlDelta::create(
            &self.core.keys,
            since,
            crl.pseudonym_crl_seq,
            issued_at,
            added,
        )
    }

    /// Licenses issued so far.
    pub fn license_count(&self) -> usize {
        self.state.licenses.len_shared(&self.state.store)
    }

    /// Spent license ids so far: transferred/redeemed or directly
    /// revoked — every id that can never be redeemed again.
    pub fn spent_count(&self) -> usize {
        self.state.spent.len_shared(&self.state.store)
    }

    /// Snapshot of the adversarial-provider purchase view.
    pub fn purchase_log(&self) -> Vec<PurchaseRecord> {
        self.state.purchase_log.lock().clone()
    }

    /// Snapshot of the adversarial-provider transfer view.
    pub fn transfer_log(&self) -> Vec<TransferRecord> {
        self.state.transfer_log.lock().clone()
    }

    /// Direct backend access (storage metrics in E6, maintenance such as
    /// compaction via [`ShardedKv::for_each_shard`] or
    /// [`WalShardedKv::compact_all`]).
    pub fn store(&self) -> &B {
        &self.state.store
    }
}

/// License ids enter CRLs as their SHA-256 [`KeyId`] image.
pub fn license_crl_id(lid: &LicenseId) -> KeyId {
    digest_id(lid.as_bytes())
}

/// Transfer semantics: the fresh license carries one fewer transfer use.
fn decrement_transfer(rights: &Rights) -> Rights {
    let mut r = rights.clone();
    r.transfer = match r.transfer {
        Limit::None => Limit::None,
        Limit::Count(n) => Limit::Count(n.saturating_sub(1)),
        Limit::Unlimited => Limit::Unlimited,
    };
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrement_transfer_semantics() {
        let r = Rights::builder().transfer(Limit::Count(2)).build();
        assert_eq!(decrement_transfer(&r).transfer, Limit::Count(1));
        let r = Rights::builder().transfer(Limit::Unlimited).build();
        assert_eq!(decrement_transfer(&r).transfer, Limit::Unlimited);
        let r = Rights::builder().build();
        assert_eq!(decrement_transfer(&r).transfer, Limit::None);
    }

    #[test]
    fn license_crl_id_is_stable() {
        let lid = LicenseId::from_label("x");
        assert_eq!(license_crl_id(&lid), license_crl_id(&lid));
        assert_ne!(
            license_crl_id(&lid),
            license_crl_id(&LicenseId::from_label("y"))
        );
    }

    #[test]
    fn provider_is_sync_over_sync_backends() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<ContentProvider<MemBackend>>();
        assert_sync::<ContentProvider<ShardedKv<p2drm_store::WalKv>>>();
        assert_sync::<ContentProvider<WalShardedKv>>();
    }
}
