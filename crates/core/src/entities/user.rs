//! The user agent: client-side software holding the smart card, the coin
//! wallet, pseudonym certificates and owned licenses.

use crate::entities::smartcard::SmartCard;
use crate::ids::{LicenseId, UserId};
use crate::license::License;
use p2drm_payment::Wallet;
use p2drm_pki::cert::{AttributeCertificate, KeyId, PseudonymCertificate};

/// How aggressively the user refreshes pseudonyms — the experiment-E7
/// linkability knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PseudonymPolicy {
    /// A fresh pseudonym for every purchase (paper's recommendation).
    FreshPerPurchase,
    /// Reuse each pseudonym for up to `k` purchases.
    ReuseK(u32),
    /// One pseudonym forever (worst case, ~the baseline's linkability).
    Static,
}

/// A license together with the pseudonym it is bound to.
#[derive(Clone, Debug)]
pub struct OwnedLicense {
    /// The provider-issued license.
    pub license: License,
    /// Which of the card's pseudonyms holds it.
    pub pseudonym: KeyId,
}

/// Client-side user state.
pub struct UserAgent {
    user_id: UserId,
    /// Funding account name at mint/processor (identity-adjacent; never
    /// sent to providers in the private flow).
    pub account: String,
    /// The user's smart card.
    pub card: SmartCard,
    /// E-cash wallet.
    pub wallet: Wallet,
    policy: PseudonymPolicy,
    pseudonym_certs: Vec<PseudonymCertificate>,
    attribute_certs: Vec<AttributeCertificate>,
    current_uses: u32,
    licenses: Vec<OwnedLicense>,
}

impl UserAgent {
    /// Builds a user agent around a freshly issued card.
    pub fn new(card: SmartCard, account: impl Into<String>, policy: PseudonymPolicy) -> Self {
        UserAgent {
            user_id: card.user_id(),
            account: account.into(),
            card,
            wallet: Wallet::new(),
            policy,
            pseudonym_certs: Vec::new(),
            attribute_certs: Vec::new(),
            current_uses: 0,
            licenses: Vec::new(),
        }
    }

    /// The (private) real identity.
    pub fn user_id(&self) -> UserId {
        self.user_id
    }

    /// The refresh policy.
    pub fn policy(&self) -> PseudonymPolicy {
        self.policy
    }

    /// Changes the refresh policy (E7 sweeps this).
    pub fn set_policy(&mut self, policy: PseudonymPolicy) {
        self.policy = policy;
    }

    /// Stores a freshly issued pseudonym certificate and makes it current.
    pub fn add_pseudonym(&mut self, cert: PseudonymCertificate) {
        self.pseudonym_certs.push(cert);
        self.current_uses = 0;
    }

    /// The pseudonym certificate to use for the next purchase, or `None`
    /// when the policy demands a fresh one first.
    pub fn current_pseudonym(&self) -> Option<&PseudonymCertificate> {
        let cert = self.pseudonym_certs.last()?;
        match self.policy {
            PseudonymPolicy::FreshPerPurchase if self.current_uses >= 1 => None,
            PseudonymPolicy::ReuseK(k) if self.current_uses >= k => None,
            _ => Some(cert),
        }
    }

    /// Records that the current pseudonym was used once.
    pub fn note_pseudonym_use(&mut self) {
        self.current_uses += 1;
    }

    /// All pseudonym certificates ever issued to this user.
    pub fn pseudonym_certs(&self) -> &[PseudonymCertificate] {
        &self.pseudonym_certs
    }

    /// Stores a blind-issued attribute certificate.
    pub fn add_attribute_cert(&mut self, cert: AttributeCertificate) {
        self.attribute_certs.push(cert);
    }

    /// Finds an attribute credential bound to `pseudonym`, if held.
    pub fn attribute_cert_for(
        &self,
        pseudonym: &KeyId,
        attribute: &str,
    ) -> Option<&AttributeCertificate> {
        self.attribute_certs
            .iter()
            .find(|c| c.attribute == attribute && c.pseudonym_id() == *pseudonym)
    }

    /// Records an acquired license.
    pub fn add_license(&mut self, license: License, pseudonym: KeyId) {
        self.licenses.push(OwnedLicense { license, pseudonym });
    }

    /// Looks up an owned license by id.
    pub fn license(&self, id: &LicenseId) -> Option<&OwnedLicense> {
        self.licenses.iter().find(|l| l.license.id() == *id)
    }

    /// Removes a license (after transferring it away).
    pub fn remove_license(&mut self, id: &LicenseId) -> Option<OwnedLicense> {
        let pos = self.licenses.iter().position(|l| l.license.id() == *id)?;
        Some(self.licenses.remove(pos))
    }

    /// All owned licenses.
    pub fn licenses(&self) -> &[OwnedLicense] {
        &self.licenses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // UserAgent construction needs a SmartCard, which needs an RA; the
    // policy state machine is testable in isolation through a tiny stub.
    fn agent() -> UserAgent {
        use p2drm_crypto::rng::test_rng;
        use p2drm_pki::authority::CertificateAuthority;
        use p2drm_pki::cert::Validity;
        let mut rng = test_rng(140);
        let mut root =
            CertificateAuthority::new_root(512, Validity::new(0, u64::MAX / 2), &mut rng);
        let ra = crate::entities::ra::RegistrationAuthority::new(
            &mut root,
            512,
            Validity::new(0, u64::MAX / 2),
            &mut rng,
        );
        let card = ra
            .register_user(
                UserId::from_label("tester"),
                crate::entities::smartcard::CardBudget::default(),
                &mut rng,
            )
            .unwrap();
        UserAgent::new(card, "acct-tester", PseudonymPolicy::FreshPerPurchase)
    }

    fn dummy_cert(agent: &mut UserAgent, seed: u64) -> PseudonymCertificate {
        use p2drm_crypto::rng::test_rng;
        // A structurally valid (unsigned-garbage) certificate is enough for
        // the policy bookkeeping tests.
        let mut rng = test_rng(seed);
        let group = p2drm_crypto::elgamal::ElGamalGroup::test_512();
        let ttp = p2drm_crypto::elgamal::ElGamalKeyPair::generate(group, &mut rng);
        let body = agent
            .card
            .begin_pseudonym(ttp.public(), 0, &mut rng)
            .unwrap();
        PseudonymCertificate {
            body,
            signature: p2drm_crypto::rsa::RsaSignature::from_ubig(p2drm_bignum::UBig::from_u64(1)),
        }
    }

    #[test]
    fn fresh_policy_requires_new_pseudonym_each_use() {
        let mut a = agent();
        assert!(a.current_pseudonym().is_none(), "no pseudonym yet");
        let c = dummy_cert(&mut a, 141);
        a.add_pseudonym(c);
        assert!(a.current_pseudonym().is_some());
        a.note_pseudonym_use();
        assert!(a.current_pseudonym().is_none(), "fresh policy exhausted");
    }

    #[test]
    fn reuse_k_policy() {
        let mut a = agent();
        a.set_policy(PseudonymPolicy::ReuseK(3));
        let c = dummy_cert(&mut a, 142);
        a.add_pseudonym(c);
        for _ in 0..3 {
            assert!(a.current_pseudonym().is_some());
            a.note_pseudonym_use();
        }
        assert!(a.current_pseudonym().is_none());
    }

    #[test]
    fn static_policy_never_expires() {
        let mut a = agent();
        a.set_policy(PseudonymPolicy::Static);
        let c = dummy_cert(&mut a, 143);
        a.add_pseudonym(c);
        for _ in 0..100 {
            assert!(a.current_pseudonym().is_some());
            a.note_pseudonym_use();
        }
    }

    #[test]
    fn license_bookkeeping() {
        let mut a = agent();
        assert!(a.licenses().is_empty());
        assert!(a.license(&LicenseId::from_label("none")).is_none());
        assert!(a.remove_license(&LicenseId::from_label("none")).is_none());
    }
}
