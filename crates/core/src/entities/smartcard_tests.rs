//! Smart card behavioral tests: budget enforcement, revocation semantics,
//! and the key-release seal chain. Kept beside the entity (included from
//! `entities/mod.rs`) because they exercise card-private behavior.

use crate::entities::ra::RegistrationAuthority;
use crate::entities::smartcard::{CardBudget, SmartCard};
use crate::ids::UserId;
use crate::CoreError;
use p2drm_crypto::elgamal::{ElGamalGroup, ElGamalKeyPair};
use p2drm_crypto::rng::test_rng;
use p2drm_pki::authority::CertificateAuthority;
use p2drm_pki::cert::{KeyId, Validity};

fn card(seed: u64, budget: CardBudget) -> SmartCard {
    let mut rng = test_rng(seed);
    let v = Validity::new(0, u64::MAX / 2);
    let mut root = CertificateAuthority::new_root(512, v, &mut rng);
    let ra = RegistrationAuthority::new(&mut root, 512, v, &mut rng);
    ra.register_user(UserId::from_label("card-tester"), budget, &mut rng)
        .unwrap()
}

fn ttp_key(seed: u64) -> ElGamalKeyPair {
    ElGamalKeyPair::generate(ElGamalGroup::test_512(), &mut test_rng(seed))
}

#[test]
fn pseudonym_budget_enforced_and_freed() {
    let mut c = card(400, CardBudget { max_pseudonyms: 2 });
    let ttp = ttp_key(401);
    let mut rng = test_rng(402);
    let b1 = c.begin_pseudonym(ttp.public(), 0, &mut rng).unwrap();
    let _b2 = c.begin_pseudonym(ttp.public(), 0, &mut rng).unwrap();
    assert_eq!(c.pseudonym_count(), 2);
    assert!(matches!(
        c.begin_pseudonym(ttp.public(), 0, &mut rng),
        Err(CoreError::Card("pseudonym budget exhausted"))
    ));
    // Forgetting one frees a slot.
    assert!(c.forget_pseudonym(&KeyId::of_rsa(&b1.pseudonym_key)));
    assert!(!c.forget_pseudonym(&KeyId::of_rsa(&b1.pseudonym_key)));
    assert!(c.begin_pseudonym(ttp.public(), 0, &mut rng).is_ok());
}

#[test]
fn revoked_card_refuses_every_operation() {
    let mut c = card(403, CardBudget::default());
    let ttp = ttp_key(404);
    let mut rng = test_rng(405);
    let body = c.begin_pseudonym(ttp.public(), 0, &mut rng).unwrap();
    let pid = KeyId::of_rsa(&body.pseudonym_key);

    c.mark_revoked();
    assert!(c.is_revoked());
    assert!(c.begin_pseudonym(ttp.public(), 0, &mut rng).is_err());
    assert!(c.sign_with_master(b"x").is_err());
    assert!(c.sign_with_pseudonym(&pid, b"x").is_err());
}

#[test]
fn unknown_pseudonym_operations_fail() {
    let c = card(406, CardBudget::default());
    let ghost = p2drm_pki::cert::digest_id(b"ghost");
    assert!(matches!(
        c.sign_with_pseudonym(&ghost, b"x"),
        Err(CoreError::Card("unknown pseudonym"))
    ));
}

#[test]
fn memory_grows_with_pseudonyms() {
    let mut c = card(407, CardBudget::default());
    let ttp = ttp_key(408);
    let mut rng = test_rng(409);
    let m0 = c.memory_bytes();
    c.begin_pseudonym(ttp.public(), 0, &mut rng).unwrap();
    let m1 = c.memory_bytes();
    assert!(m1 > m0);
    assert_eq!(m1 - m0, 2 * (c.key_bits() / 8));
}

#[test]
fn escrow_plaintexts_are_salted() {
    // Two escrows of the same user must differ (nonce) so equal users are
    // not linkable across certificates even at the ciphertext layer.
    let mut rng = test_rng(410);
    let uid = UserId::from_label("same-user");
    let a = crate::entities::ttp::Ttp::escrow_plaintext(&uid, &mut rng);
    let b = crate::entities::ttp::Ttp::escrow_plaintext(&uid, &mut rng);
    assert_ne!(a, b);
    assert!(a.starts_with(crate::entities::ttp::ESCROW_TAG));
}
