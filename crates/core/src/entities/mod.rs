//! Protocol principals.
//!
//! Each entity owns its key material privately; everything another party
//! may learn flows through a method return value, which is what makes the
//! transcript-based privacy audits meaningful.

pub mod device;
pub mod provider;
pub mod ra;
pub mod smartcard;
#[cfg(test)]
mod smartcard_tests;
pub mod ttp;
pub mod user;

pub use device::CompliantDevice;
pub use provider::{ContentProvider, MemBackend, ProviderConfig, PurchaseRecord};
pub use ra::RegistrationAuthority;
pub use smartcard::{CardBudget, SmartCard};
pub use ttp::{DeanonymizationRecord, Ttp};
pub use user::{OwnedLicense, PseudonymPolicy, UserAgent};
