//! The compliant device: the enforcement point.
//!
//! A device renders content only after (1) the license verifies against the
//! provider key, (2) the holder pseudonym certificate verifies against the
//! RA blind key, (3) neither license nor pseudonym is revoked in the
//! device's synced CRLs, (4) the holder proves possession of the pseudonym
//! key (challenge–response via the smart card), and (5) the rights
//! expression permits the action given persisted per-license state.

use crate::ids::DeviceId;
use crate::license::License;
use crate::CoreError;
use p2drm_crypto::envelope::{self, Envelope};
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use p2drm_pki::authority::CertificateAuthority;
use p2drm_pki::cert::{Certificate, EntityKind, KeyId, PseudonymCertificate, SubjectKey, Validity};
use p2drm_pki::crl::{RevocationList, SignedCrl};
use p2drm_rel::{AccessRequest, Decision, RightsState};
use p2drm_store::typed::Table;
use p2drm_store::{Kv, MemKv};

/// A compliant rendering device, generic over its state store.
pub struct CompliantDevice<S: Kv = MemKv> {
    device_id: DeviceId,
    keys: RsaKeyPair,
    cert: Certificate,
    provider_key: RsaPublicKey,
    ra_blind_key: RsaPublicKey,
    store: S,
    states: Table<RightsState>,
    license_crl: RevocationList,
    pseudonym_crl: RevocationList,
    license_crl_seq: u64,
    pseudonym_crl_seq: u64,
}

impl CompliantDevice<MemKv> {
    /// Device with volatile rights-state storage.
    pub fn new<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        provider_cert: &Certificate,
        ra_blind_key: RsaPublicKey,
        key_bits: usize,
        validity: Validity,
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        Self::with_store(
            root,
            provider_cert,
            ra_blind_key,
            MemKv::new(),
            key_bits,
            validity,
            rng,
        )
    }
}

impl<S: Kv> CompliantDevice<S> {
    /// Device over a caller-supplied store (durable play counts).
    pub fn with_store<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        provider_cert: &Certificate,
        ra_blind_key: RsaPublicKey,
        store: S,
        key_bits: usize,
        validity: Validity,
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        // The device trusts the root it was manufactured with; it accepts
        // the provider key only through a root-signed certificate.
        provider_cert.verify(root.public_key(), validity.from)?;
        let provider_key = provider_cert.body.subject_key.as_rsa()?.clone();
        let keys = RsaKeyPair::generate(key_bits, rng);
        let cert = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(keys.public().clone()),
            validity,
            vec![p2drm_pki::cert::Extension {
                key: "compliance".into(),
                value: vec![1],
            }],
        );
        Ok(CompliantDevice {
            device_id: DeviceId::random(rng),
            keys,
            cert,
            provider_key,
            ra_blind_key,
            store,
            states: Table::new("state/"),
            license_crl: RevocationList::new(),
            pseudonym_crl: RevocationList::new(),
            license_crl_seq: 0,
            pseudonym_crl_seq: 0,
        })
    }

    /// Device identifier.
    pub fn device_id(&self) -> DeviceId {
        self.device_id
    }

    /// Device id as the 32-byte form REL device bindings use.
    pub fn binding_id(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..16].copy_from_slice(self.device_id.as_bytes());
        out
    }

    /// Device public key (smart cards seal content keys to this).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Compliance certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Ingests fresh full CRLs from the provider; sequence numbers must be
    /// non-decreasing (rollback protection).
    ///
    /// Both envelopes carry the same issuer, so their signatures are
    /// checked as one batch ([`p2drm_pki::crl::verify_crl_batch`]) — one
    /// combined exponentiation instead of two.
    pub fn sync_crls(
        &mut self,
        license_crl: &SignedCrl,
        pseudonym_crl: &SignedCrl,
    ) -> Result<(), CoreError> {
        p2drm_pki::crl::verify_crl_batch(&self.provider_key, &[license_crl, pseudonym_crl], &[])
            .into_result()?;
        if license_crl.sequence < self.license_crl_seq
            || pseudonym_crl.sequence < self.pseudonym_crl_seq
        {
            return Err(CoreError::BadLicense("stale CRL rejected"));
        }
        self.license_crl = license_crl.list.clone();
        self.pseudonym_crl = pseudonym_crl.list.clone();
        self.license_crl_seq = license_crl.sequence;
        self.pseudonym_crl_seq = pseudonym_crl.sequence;
        Ok(())
    }

    /// Applies an incremental license-CRL update (see
    /// [`p2drm_pki::crl::SignedCrlDelta`]); the delta must start exactly at
    /// the device's current sequence — gaps and replays are rejected.
    pub fn apply_license_crl_delta(
        &mut self,
        delta: &p2drm_pki::crl::SignedCrlDelta,
    ) -> Result<(), CoreError> {
        delta.verify(&self.provider_key)?;
        self.license_crl_seq = delta
            .apply(&mut self.license_crl, self.license_crl_seq)
            .map_err(|_| CoreError::BadLicense("CRL delta sequence mismatch"))?;
        Ok(())
    }

    /// Applies an incremental pseudonym-CRL update.
    pub fn apply_pseudonym_crl_delta(
        &mut self,
        delta: &p2drm_pki::crl::SignedCrlDelta,
    ) -> Result<(), CoreError> {
        delta.verify(&self.provider_key)?;
        self.pseudonym_crl_seq = delta
            .apply(&mut self.pseudonym_crl, self.pseudonym_crl_seq)
            .map_err(|_| CoreError::BadLicense("CRL delta sequence mismatch"))?;
        Ok(())
    }

    /// Applies a backlog of license-CRL deltas: all `k` signatures are
    /// verified in one batch ([`p2drm_pki::crl::verify_crl_batch`]), then
    /// the deltas are chained in order with the usual gap/replay checks.
    /// Nothing is applied unless every signature verifies and the whole
    /// chain lines up — a device catching up after being offline either
    /// lands exactly on the newest sequence or keeps its old state.
    pub fn apply_license_crl_deltas(
        &mut self,
        deltas: &[p2drm_pki::crl::SignedCrlDelta],
    ) -> Result<(), CoreError> {
        let (list, seq) = Self::batch_apply(
            &self.provider_key,
            deltas,
            &self.license_crl,
            self.license_crl_seq,
        )?;
        self.license_crl = list;
        self.license_crl_seq = seq;
        Ok(())
    }

    /// Pseudonym-CRL counterpart of [`Self::apply_license_crl_deltas`].
    pub fn apply_pseudonym_crl_deltas(
        &mut self,
        deltas: &[p2drm_pki::crl::SignedCrlDelta],
    ) -> Result<(), CoreError> {
        let (list, seq) = Self::batch_apply(
            &self.provider_key,
            deltas,
            &self.pseudonym_crl,
            self.pseudonym_crl_seq,
        )?;
        self.pseudonym_crl = list;
        self.pseudonym_crl_seq = seq;
        Ok(())
    }

    /// Batch-verifies `deltas` under `issuer`, then applies them to a copy
    /// of `list` starting at `seq`. All-or-nothing.
    fn batch_apply(
        issuer: &RsaPublicKey,
        deltas: &[p2drm_pki::crl::SignedCrlDelta],
        list: &p2drm_pki::RevocationList,
        seq: u64,
    ) -> Result<(p2drm_pki::RevocationList, u64), CoreError> {
        let refs: Vec<&p2drm_pki::crl::SignedCrlDelta> = deltas.iter().collect();
        p2drm_pki::crl::verify_crl_batch(issuer, &[], &refs).into_result()?;
        let mut staged = list.clone();
        let mut cursor = seq;
        for delta in deltas {
            cursor = delta
                .apply(&mut staged, cursor)
                .map_err(|_| CoreError::BadLicense("CRL delta sequence mismatch"))?;
        }
        Ok((staged, cursor))
    }

    /// Generates a holder challenge (fresh nonce).
    pub fn make_challenge<R: CryptoRng + ?Sized>(&self, rng: &mut R) -> [u8; 32] {
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        nonce
    }

    /// Full compliance check for an access request, *without* consuming
    /// rights state. Returns the current state for inspection.
    pub fn check_access(
        &self,
        license: &License,
        pseudonym_cert: Option<&PseudonymCertificate>,
        challenge: &[u8; 32],
        challenge_sig: &RsaSignature,
        req: &AccessRequest,
    ) -> Result<RightsState, CoreError> {
        license.verify(&self.provider_key)?;
        if self
            .license_crl
            .contains(&crate::entities::provider::license_crl_id(&license.id()))
        {
            return Err(CoreError::Revoked("license"));
        }
        if let Some(cert) = pseudonym_cert {
            cert.verify(&self.ra_blind_key)
                .map_err(|_| CoreError::BadPseudonym("RA signature invalid"))?;
            if self.pseudonym_crl.contains(&cert.pseudonym_id()) {
                return Err(CoreError::Revoked("pseudonym"));
            }
            // License must be bound to this very pseudonym key.
            if KeyId::of_rsa(&license.body.holder) != cert.pseudonym_id() {
                return Err(CoreError::BadLicense("holder key mismatch"));
            }
        }
        // Holder proof: signature over (challenge ‖ license id).
        let proof_msg = challenge_message(challenge, &license.id());
        license
            .body
            .holder
            .verify(&proof_msg, challenge_sig)
            .map_err(|_| CoreError::BadProof)?;

        let state = self
            .states
            .get(&self.store, license.id().as_bytes())?
            .unwrap_or_default();
        match license.body.rights.evaluate(&state, req) {
            Decision::Permit => Ok(state),
            Decision::Deny(reason) => Err(CoreError::Denied(reason)),
        }
    }

    /// Consumes one use of `req.action` for the license, persisting state.
    pub fn consume(&mut self, license: &License, req: &AccessRequest) -> Result<(), CoreError> {
        let mut state = self
            .states
            .get(&self.store, license.id().as_bytes())?
            .unwrap_or_default();
        state.consume(req.action);
        self.states
            .put(&mut self.store, license.id().as_bytes(), &state)?;
        Ok(())
    }

    /// Unwraps a card-sealed content key with the device private key.
    pub fn open_sealed_key(&self, sealed: &Envelope) -> Result<[u8; 32], CoreError> {
        let key = envelope::open(&self.keys, sealed)?;
        key.as_slice()
            .try_into()
            .map_err(|_| CoreError::BadLicense("content key wrong length"))
    }

    /// Current persisted state for a license (testing/diagnostics).
    pub fn rights_state(&self, license: &License) -> Result<RightsState, CoreError> {
        Ok(self
            .states
            .get(&self.store, license.id().as_bytes())?
            .unwrap_or_default())
    }

    /// Highest license-CRL sequence synced.
    pub fn crl_sequence(&self) -> u64 {
        self.license_crl_seq
    }
}

/// The message a holder signs to prove presence: `challenge ‖ license id`.
pub fn challenge_message(challenge: &[u8; 32], lid: &crate::ids::LicenseId) -> Vec<u8> {
    let mut m = Vec::with_capacity(48 + 16);
    m.extend_from_slice(b"p2drm-holder-proof");
    m.extend_from_slice(challenge);
    m.extend_from_slice(lid.as_bytes());
    m
}
