//! The tamper-resistant smart card.
//!
//! Substitution note (DESIGN.md §2): tamper resistance is modelled by
//! encapsulation — private keys are fields no method ever returns. The
//! card exposes exactly the oracle interface the paper assumes: generate a
//! pseudonym (with escrow), sign challenges, and unwrap content keys
//! *re-sealed to a device key* so raw keys never cross the card boundary.

use crate::entities::ttp::Ttp;
use crate::ids::{CardId, UserId};
use crate::CoreError;
use p2drm_crypto::envelope::{self, Envelope};
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use p2drm_pki::cert::{Certificate, KeyId, PseudonymCertBody};
use std::collections::HashMap;

/// Card resource limits (the paper discusses card memory pressure; E6
/// measures bytes-per-pseudonym against this budget).
#[derive(Clone, Copy, Debug)]
pub struct CardBudget {
    /// Maximum pseudonym key pairs held at once.
    pub max_pseudonyms: usize,
}

impl Default for CardBudget {
    fn default() -> Self {
        CardBudget { max_pseudonyms: 64 }
    }
}

/// A user's smart card.
pub struct SmartCard {
    card_id: CardId,
    user_id: UserId,
    key_bits: usize,
    master: RsaKeyPair,
    master_cert: Certificate,
    pseudonyms: HashMap<KeyId, RsaKeyPair>,
    budget: CardBudget,
    revoked: bool,
}

impl SmartCard {
    /// Constructed by the RA at registration.
    pub(crate) fn new(
        card_id: CardId,
        user_id: UserId,
        key_bits: usize,
        master: RsaKeyPair,
        master_cert: Certificate,
        budget: CardBudget,
    ) -> Self {
        SmartCard {
            card_id,
            user_id,
            key_bits,
            master,
            master_cert,
            pseudonyms: HashMap::new(),
            budget,
            revoked: false,
        }
    }

    /// Card identifier.
    pub fn card_id(&self) -> CardId {
        self.card_id
    }

    /// The identity this card was issued to (card-internal; protocols must
    /// never put this on the wire to a provider).
    pub fn user_id(&self) -> UserId {
        self.user_id
    }

    /// Master public key.
    pub fn master_public(&self) -> &RsaPublicKey {
        self.master.public()
    }

    /// RA-issued master certificate.
    pub fn master_cert(&self) -> &Certificate {
        &self.master_cert
    }

    /// RSA modulus size this card generates pseudonyms at.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    /// Number of pseudonym keys currently stored.
    pub fn pseudonym_count(&self) -> usize {
        self.pseudonyms.len()
    }

    /// Approximate nonvolatile memory used by key material, in bytes
    /// (modulus + private exponent per key; the E6 metric).
    pub fn memory_bytes(&self) -> usize {
        let per_key = 2 * (self.key_bits / 8);
        per_key * (self.pseudonyms.len() + 1)
    }

    /// Marks the card revoked (RA tamper response); all operations fail
    /// afterwards.
    pub fn mark_revoked(&mut self) {
        self.revoked = true;
    }

    /// Whether this card has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.revoked
    }

    fn ensure_active(&self) -> Result<(), CoreError> {
        if self.revoked {
            Err(CoreError::Card("card revoked"))
        } else {
            Ok(())
        }
    }

    /// Generates a fresh pseudonym key pair plus its escrowed certificate
    /// body. The private key never leaves the card.
    pub fn begin_pseudonym<R: CryptoRng + ?Sized>(
        &mut self,
        ttp_key: &p2drm_crypto::elgamal::ElGamalPublicKey,
        epoch: u32,
        rng: &mut R,
    ) -> Result<PseudonymCertBody, CoreError> {
        self.ensure_active()?;
        if self.pseudonyms.len() >= self.budget.max_pseudonyms {
            return Err(CoreError::Card("pseudonym budget exhausted"));
        }
        let keypair = RsaKeyPair::generate(self.key_bits, rng);
        let escrow_plain = Ttp::escrow_plaintext(&self.user_id, rng);
        let escrow = ttp_key.encrypt(&escrow_plain, rng);
        let body = PseudonymCertBody {
            pseudonym_key: keypair.public().clone(),
            escrow,
            epoch,
        };
        self.pseudonyms
            .insert(KeyId::of_rsa(keypair.public()), keypair);
        Ok(body)
    }

    /// Discards a pseudonym key (frees card memory).
    pub fn forget_pseudonym(&mut self, id: &KeyId) -> bool {
        self.pseudonyms.remove(id).is_some()
    }

    /// Signs with the master identity key (registration / RA
    /// authentication only — never toward a provider).
    pub fn sign_with_master(&self, data: &[u8]) -> Result<RsaSignature, CoreError> {
        self.ensure_active()?;
        Ok(self.master.sign(data))
    }

    /// Signs a challenge with a pseudonym key (holder proof).
    pub fn sign_with_pseudonym(
        &self,
        pseudonym: &KeyId,
        data: &[u8],
    ) -> Result<RsaSignature, CoreError> {
        self.ensure_active()?;
        let kp = self
            .pseudonyms
            .get(pseudonym)
            .ok_or(CoreError::Card("unknown pseudonym"))?;
        Ok(kp.sign(data))
    }

    /// Opens a license key envelope with the pseudonym key and re-seals the
    /// content key to `device_key` — the card-to-device key release.
    pub fn unwrap_and_reseal<R: CryptoRng + ?Sized>(
        &self,
        pseudonym: &KeyId,
        env: &Envelope,
        device_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<Envelope, CoreError> {
        self.ensure_active()?;
        let kp = self
            .pseudonyms
            .get(pseudonym)
            .ok_or(CoreError::Card("unknown pseudonym"))?;
        let content_key = envelope::open(kp, env)?;
        Ok(envelope::seal(device_key, &content_key, rng))
    }

    /// Baseline flow variant: unwrap an envelope sealed to the *master*
    /// key (identity-bound licenses) and re-seal to the device.
    pub fn unwrap_master_and_reseal<R: CryptoRng + ?Sized>(
        &self,
        env: &Envelope,
        device_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<Envelope, CoreError> {
        self.ensure_active()?;
        let content_key = envelope::open(&self.master, env)?;
        Ok(envelope::seal(device_key, &content_key, rng))
    }
}
