//! The registration authority: the only entity that knows which human owns
//! which card. It certifies cards at registration, blind-signs pseudonym
//! certificates (learning nothing about them), and maintains the card CRL.
//!
//! Like the provider, the RA is a server-side entity shared by many
//! concurrent clients, so its mutable registry lives behind an interior
//! lock and every endpoint takes `&self` — `System::purchase`-family
//! methods can run from N threads against one RA.

use crate::entities::smartcard::{CardBudget, SmartCard};
use crate::ids::{CardId, UserId};
use crate::protocol::messages;
use crate::CoreError;
use p2drm_bignum::UBig;
use p2drm_crypto::blind;
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use p2drm_pki::authority::{CertificateAuthority, RegistrationAuthorityKeys};
use p2drm_pki::cert::{Certificate, EntityKind, KeyId, SubjectKey, Validity};
use p2drm_pki::crl::{RevocationList, SignedCrl};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// What the RA records at each blind issuance — the adversarial-RA view
/// used by the unlinkability audit (the blinded value is all it ever sees).
#[derive(Clone, Debug)]
pub struct IssuanceRecord {
    /// Which card authenticated.
    pub card: CardId,
    /// The blinded value that was signed.
    pub blinded: UBig,
}

/// The RA's mutable registry (identity links, attribute grants, card CRL).
struct RaState {
    users: HashMap<UserId, CardId>,
    /// card id -> master key id (CRL handle).
    cards: HashMap<CardId, KeyId>,
    /// card id -> owning user (attribute entitlement lookups).
    card_owners: HashMap<CardId, UserId>,
    /// Verified real-world attributes per user (KYC output).
    attributes: HashMap<UserId, HashSet<String>>,
    /// One dedicated blind key per attribute — a signature under the
    /// "adult" key asserts exactly that attribute, which is what makes
    /// blind signing safe here.
    attribute_keys: HashMap<String, RsaKeyPair>,
    card_crl: RevocationList,
    crl_seq: u64,
    issuance_log: Vec<IssuanceRecord>,
}

impl RaState {
    /// The issuance gate every blind endpoint runs under the registry
    /// lock: the *claimed* `card_id` must be the card the presented
    /// certificate was issued to (`card_id` travels attacker-controlled
    /// on the wire — without this check any registered card could claim
    /// another card's id, spoofing issuance-log attribution and, for
    /// attributes, the entitlement lookup), and the card must not be
    /// revoked.
    fn check_card(&self, card_id: &CardId, master_key_id: &KeyId) -> Result<(), CoreError> {
        match self.cards.get(card_id) {
            Some(registered) if registered == master_key_id => {}
            _ => return Err(CoreError::Card("card id not bound to authenticated card")),
        }
        if self.card_crl.contains(master_key_id) {
            return Err(CoreError::Revoked("card"));
        }
        Ok(())
    }
}

/// The registration authority.
pub struct RegistrationAuthority {
    keys: RegistrationAuthorityKeys,
    key_bits: usize,
    validity: Validity,
    state: Mutex<RaState>,
}

impl RegistrationAuthority {
    /// Creates an RA whose keys chain to `root`.
    pub fn new<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        key_bits: usize,
        validity: Validity,
        rng: &mut R,
    ) -> Self {
        RegistrationAuthority {
            keys: RegistrationAuthorityKeys::create(root, key_bits, validity, rng),
            key_bits,
            validity,
            state: Mutex::new(RaState {
                users: HashMap::new(),
                cards: HashMap::new(),
                card_owners: HashMap::new(),
                attributes: HashMap::new(),
                attribute_keys: HashMap::new(),
                card_crl: RevocationList::new(),
                crl_seq: 0,
                issuance_log: Vec::new(),
            }),
        }
    }

    /// Verification key for pseudonym certificates.
    pub fn blind_public(&self) -> &RsaPublicKey {
        self.keys.blind_public()
    }

    /// Verification key for card/user certificates.
    pub fn identity_public(&self) -> &RsaPublicKey {
        self.keys.identity.public_key()
    }

    /// The RA's identity-CA certificate (for chain building).
    pub fn identity_cert(&self) -> &Certificate {
        self.keys.identity.certificate()
    }

    /// Registers `user` (simulated KYC) and issues a smart card.
    pub fn register_user<R: CryptoRng + ?Sized>(
        &self,
        user: UserId,
        budget: CardBudget,
        rng: &mut R,
    ) -> Result<SmartCard, CoreError> {
        // Key generation happens outside the registry lock; the claim of
        // the user id is re-checked inside it.
        if self.state.lock().users.contains_key(&user) {
            return Err(CoreError::Card("user already registered"));
        }
        let card_id = CardId::random(rng);
        let master = RsaKeyPair::generate(self.key_bits, rng);
        let master_cert = self.keys.identity.issue(
            EntityKind::SmartCard,
            SubjectKey::Rsa(master.public().clone()),
            self.validity,
            vec![],
        );
        {
            let mut state = self.state.lock();
            if state.users.contains_key(&user) {
                return Err(CoreError::Card("user already registered"));
            }
            state.users.insert(user, card_id);
            state.cards.insert(card_id, KeyId::of_rsa(master.public()));
            state.card_owners.insert(card_id, user);
        }
        Ok(SmartCard::new(
            card_id,
            user,
            self.key_bits,
            master,
            master_cert,
            budget,
        ))
    }

    /// Blind pseudonym issuance endpoint.
    ///
    /// The card authenticates (master certificate + master-key signature
    /// over [`messages::pseudonym_auth_bytes`], which binds the claimed
    /// `card_id` to the blinded value) — this moment is linkable, which
    /// is fine: the RA learns "card X obtained *a* pseudonym", never
    /// *which*. The claimed `card_id` must be the card the certificate
    /// was issued to; otherwise the issuance log could be mis-attributed.
    pub fn issue_pseudonym(
        &self,
        card_id: CardId,
        card_cert: &Certificate,
        blinded: &UBig,
        auth_sig: &RsaSignature,
        now: u64,
    ) -> Result<UBig, CoreError> {
        card_cert.verify(self.identity_public(), now)?;
        self.state
            .lock()
            .check_card(&card_id, &card_cert.subject_id())?;
        let master_key = card_cert.body.subject_key.as_rsa()?;
        master_key
            .verify(&messages::pseudonym_auth_bytes(&card_id, blinded), auth_sig)
            .map_err(|_| CoreError::BadProof)?;
        self.state.lock().issuance_log.push(IssuanceRecord {
            card: card_id,
            blinded: blinded.clone(),
        });
        Ok(blind::blind_sign(&self.keys.blind, blinded)?)
    }

    /// Cut-and-choose pseudonym issuance: the card submits `k` blinded
    /// candidates, the RA opens all but one and audits them (structural
    /// well-formedness + epoch), then blind-signs the survivor. A card
    /// submitting a malformed candidate (e.g. a bogus escrow) is caught
    /// with probability `(k-1)/k` — and the attempt is evidence.
    ///
    /// Returns `(kept_index, blind_signature)`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue_pseudonym_cut_and_choose<R: CryptoRng + ?Sized>(
        &self,
        card_id: CardId,
        card_cert: &Certificate,
        blinded_values: &[UBig],
        auth_sig: &RsaSignature,
        open: impl FnOnce(usize) -> Vec<(usize, p2drm_crypto::blind::Opening)>,
        expected_epoch: u32,
        now: u64,
        rng: &mut R,
    ) -> Result<(usize, UBig), CoreError> {
        card_cert.verify(self.identity_public(), now)?;
        self.state
            .lock()
            .check_card(&card_id, &card_cert.subject_id())?;
        // Authenticate the whole candidate set at once, bound to the
        // claimed card id.
        let master_key = card_cert.body.subject_key.as_rsa()?;
        master_key
            .verify(
                &messages::cut_choose_auth_bytes(&card_id, blinded_values),
                auth_sig,
            )
            .map_err(|_| CoreError::BadProof)?;

        let keep = p2drm_crypto::blind::CutChooseIssuer::choose(blinded_values.len(), rng);
        let openings = open(keep);
        let key_bits = self.key_bits;
        let blind_sig = p2drm_crypto::blind::CutChooseIssuer::audit_and_sign(
            &self.keys.blind,
            blinded_values,
            keep,
            &openings,
            |message| {
                // Structural audit: decodes as a pseudonym body, epoch
                // matches, key has the mandated size. (Escrow *content*
                // is only checkable by the TTP — the paper's residual
                // trust assumption; the gamble is what deters cheating.)
                match p2drm_codec::from_bytes::<p2drm_pki::cert::PseudonymCertBody>(message) {
                    Ok(body) => {
                        body.epoch == expected_epoch
                            && body.pseudonym_key.modulus().bit_len() == key_bits
                    }
                    Err(_) => false,
                }
            },
        )
        .map_err(|_| CoreError::BadEvidence("cut-and-choose audit failed"))?;
        self.state.lock().issuance_log.push(IssuanceRecord {
            card: card_id,
            blinded: blinded_values[keep].clone(),
        });
        Ok((keep, blind_sig))
    }

    /// Revokes the card belonging to `user` (post-de-anonymization).
    pub fn revoke_user(&self, user: &UserId) -> Result<(), CoreError> {
        let mut state = self.state.lock();
        let card = *state
            .users
            .get(user)
            .ok_or(CoreError::Card("unknown user"))?;
        let key_id = state.cards[&card];
        state.card_crl.insert(key_id);
        state.crl_seq += 1;
        Ok(())
    }

    /// Whether a card master key is revoked.
    pub fn is_card_revoked(&self, master_key_id: &KeyId) -> bool {
        self.state.lock().card_crl.contains(master_key_id)
    }

    /// Signed card CRL for distribution.
    pub fn signed_card_crl(&self, issued_at: u64) -> SignedCrl {
        let state = self.state.lock();
        SignedCrl::create(
            self.keys.identity.keypair(),
            state.crl_seq,
            issued_at,
            state.card_crl.clone(),
        )
    }

    /// Records a verified real-world attribute for `user` (KYC outcome),
    /// creating the attribute's dedicated blind key on first use.
    pub fn grant_attribute<R: CryptoRng + ?Sized>(
        &self,
        user: &UserId,
        attribute: &str,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        // Keygen outside the lock when a new attribute key is needed.
        let needs_key = {
            let state = self.state.lock();
            if !state.users.contains_key(user) {
                return Err(CoreError::Card("unknown user"));
            }
            !state.attribute_keys.contains_key(attribute)
        };
        let new_key = needs_key.then(|| RsaKeyPair::generate(self.key_bits, rng));
        let mut state = self.state.lock();
        if !state.users.contains_key(user) {
            return Err(CoreError::Card("unknown user"));
        }
        if let Some(kp) = new_key {
            state
                .attribute_keys
                .entry(attribute.to_string())
                .or_insert(kp);
        }
        state
            .attributes
            .entry(*user)
            .or_default()
            .insert(attribute.to_string());
        Ok(())
    }

    /// Verification key relying parties use for `attribute` (None until
    /// the first grant creates the key).
    pub fn attribute_public(&self, attribute: &str) -> Option<RsaPublicKey> {
        self.state
            .lock()
            .attribute_keys
            .get(attribute)
            .map(|kp| kp.public().clone())
    }

    /// Blind attribute certification: like pseudonym issuance, but the RA
    /// signs with the per-attribute key — and only after checking that
    /// the claimed `card_id` is the card the presented certificate was
    /// issued to (entitlement is looked up by card id, so an unchecked id
    /// would let any registered card borrow an entitled user's
    /// attributes) and that the card's owner actually holds the attribute.
    pub fn issue_attribute(
        &self,
        card_id: CardId,
        card_cert: &Certificate,
        attribute: &str,
        blinded: &UBig,
        auth_sig: &RsaSignature,
        now: u64,
    ) -> Result<UBig, CoreError> {
        card_cert.verify(self.identity_public(), now)?;
        let master_key = card_cert.body.subject_key.as_rsa()?;
        master_key
            .verify(
                &messages::attribute_auth_bytes(&card_id, attribute, blinded),
                auth_sig,
            )
            .map_err(|_| CoreError::BadProof)?;
        let mut state = self.state.lock();
        state.check_card(&card_id, &card_cert.subject_id())?;
        let owner = *state
            .card_owners
            .get(&card_id)
            .ok_or(CoreError::Card("unknown card"))?;
        let entitled = state
            .attributes
            .get(&owner)
            .is_some_and(|set| set.contains(attribute));
        if !entitled {
            return Err(CoreError::Card("attribute not held by user"));
        }
        let kp = state
            .attribute_keys
            .get(attribute)
            .ok_or(CoreError::Card("attribute key missing"))?;
        let sig = blind::blind_sign(kp, blinded)?;
        state.issuance_log.push(IssuanceRecord {
            card: card_id,
            blinded: blinded.clone(),
        });
        Ok(sig)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.state.lock().users.len()
    }

    /// Snapshot of the adversarial-RA issuance transcript.
    pub fn issuance_log(&self) -> Vec<IssuanceRecord> {
        self.state.lock().issuance_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use p2drm_crypto::rng::test_rng;

    /// A card claiming *another* card's id — its own certificate and a
    /// valid signature over the spoofed request — must be refused: the
    /// attribute entitlement lookup keys on card id, and the issuance
    /// log must attribute requests to the card that authenticated.
    #[test]
    fn spoofed_card_id_is_refused() {
        let mut rng = test_rng(0x5F00F);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let alice = sys.register_user("alice", &mut rng).unwrap();
        let mallory = sys.register_user("mallory", &mut rng).unwrap();
        sys.grant_attribute(&alice, "adult", &mut rng).unwrap();
        let victim_id = alice.card.card_id();
        let now = sys.now();

        // Attribute issuance: mallory is not entitled but claims alice's
        // card id, signing the spoofed request with her own master key.
        let blinded = UBig::from_u64(0xB11D);
        let sig = mallory
            .card
            .sign_with_master(&messages::attribute_auth_bytes(
                &victim_id, "adult", &blinded,
            ))
            .unwrap();
        let res = sys.ra.issue_attribute(
            victim_id,
            mallory.card.master_cert(),
            "adult",
            &blinded,
            &sig,
            now,
        );
        assert!(
            matches!(res, Err(CoreError::Card(_))),
            "spoofed attribute issuance must be refused, got {res:?}"
        );

        // Pseudonym issuance: same spoof, refused before the log entry.
        let sig = mallory
            .card
            .sign_with_master(&messages::pseudonym_auth_bytes(&victim_id, &blinded))
            .unwrap();
        let res =
            sys.ra
                .issue_pseudonym(victim_id, mallory.card.master_cert(), &blinded, &sig, now);
        assert!(
            matches!(res, Err(CoreError::Card(_))),
            "spoofed pseudonym issuance must be refused, got {res:?}"
        );
        assert!(
            sys.ra.issuance_log().iter().all(|r| r.card != victim_id),
            "no issuance may be attributed to the spoofed card"
        );
    }

    /// The auth signature covers the claimed card id: a signature minted
    /// for one id does not verify for a request claiming another.
    #[test]
    fn auth_signature_binds_card_id() {
        let mut rng = test_rng(0x5F10F);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let alice = sys.register_user("alice", &mut rng).unwrap();
        let mallory = sys.register_user("mallory", &mut rng).unwrap();
        let now = sys.now();
        let blinded = UBig::from_u64(0xB11D);
        // Mallory signs honestly for her own card id...
        let sig = mallory
            .card
            .sign_with_master(&messages::pseudonym_auth_bytes(
                &mallory.card.card_id(),
                &blinded,
            ))
            .unwrap();
        // ...but replays the signature on a request claiming alice's id:
        // even if the binding check were bypassed, the signature check
        // fails because the signed bytes name the card id.
        let res = sys.ra.issue_pseudonym(
            alice.card.card_id(),
            mallory.card.master_cert(),
            &blinded,
            &sig,
            now,
        );
        assert!(res.is_err(), "cross-card signature replay must fail");
    }
}
