//! # P2DRM core — the paper's contribution
//!
//! This crate implements the privacy-preserving DRM architecture of
//! Conrado, Petković and Jonker (*Privacy-Preserving Digital Rights
//! Management*, SDM workshop at VLDB 2004): licenses bound to blindly
//! certified **pseudonym keys** held in smart cards, anonymous purchase
//! with e-cash, uniquely identified **anonymous licenses** whose double
//! redemption is prevented by a spent-ID store, privacy-preserving license
//! transfer, compliant-device enforcement, and **conditional anonymity**
//! via TTP identity escrow.
//!
//! ## Layout
//!
//! | Module | Contents |
//! |---|---|
//! | [`ids`] | Typed random identifiers (users, cards, devices, content, licenses) |
//! | [`content`] | Content packaging (ChaCha20) and the provider catalog |
//! | [`license`] | License structure, signing, verification |
//! | [`entities`] | RA, TTP, smart card, user agent, provider, compliant device |
//! | [`protocol`] | The six protocol engines + typed messages + transcripts |
//! | [`baseline`] | Conventional identity-bound DRM (the comparator) |
//! | [`audit`] | Transcript capture: message counts/sizes, leak scanning |
//! | [`system`] | One-call bootstrap wiring every entity together |
//! | [`service`] | Versioned wire API: envelopes, [`service::ApiErrorCode`], `ProviderService`, `WireClient` |
//!
//! ## Quickstart
//!
//! ```
//! use p2drm_core::system::{System, SystemConfig};
//! use p2drm_crypto::rng::test_rng;
//!
//! let mut rng = test_rng(7);
//! let mut system = System::bootstrap(SystemConfig::fast_test(), &mut rng);
//! let content_id = system.publish_content("Demo Track", 100, b"music bytes", &mut rng);
//!
//! // Register a user, fund them, buy anonymously, play on a device.
//! let mut alice = system.register_user("alice", &mut rng).unwrap();
//! system.fund(&alice, 1_000);
//! let license = system.purchase(&mut alice, content_id, &mut rng).unwrap();
//! let mut device = system.register_device(&mut rng).unwrap();
//! let audio = system.play(&alice, &mut device, &license, &mut rng).unwrap();
//! assert_eq!(audio, b"music bytes");
//! ```

pub mod audit;
pub mod baseline;
pub mod content;
pub mod entities;
pub mod ids;
pub mod license;
pub mod protocol;
pub mod retry;
pub mod service;
pub mod system;
pub mod valve;

pub use audit::{Party, Transcript};
pub use ids::{CardId, ContentId, DeviceId, LicenseId, UserId};
pub use license::{License, LicenseBody};

/// Errors produced by the protocol engines.
#[derive(Debug)]
pub enum CoreError {
    /// Certificate problem (chain, expiry, signature).
    Pki(p2drm_pki::PkiError),
    /// Chain-level verification failure.
    Chain(p2drm_pki::ChainError),
    /// Cryptographic failure.
    Crypto(p2drm_crypto::CryptoError),
    /// Payment failure (funds, double spend, bad coin).
    Payment(p2drm_payment::PaymentError),
    /// Storage failure.
    Store(p2drm_store::StoreError),
    /// License signature or structure invalid.
    BadLicense(&'static str),
    /// License id already redeemed/transferred (the paper's unique-ID rule).
    AlreadyRedeemed(LicenseId),
    /// Rights denied the requested action.
    Denied(p2drm_rel::DenyReason),
    /// Entity is revoked.
    Revoked(&'static str),
    /// Pseudonym certificate rejected (stale epoch, bad signature, revoked).
    BadPseudonym(&'static str),
    /// Holder proof (challenge-response) failed.
    BadProof,
    /// Unknown content id.
    UnknownContent(ContentId),
    /// Unknown license id.
    UnknownLicense(LicenseId),
    /// Evidence presented to the TTP failed verification.
    BadEvidence(&'static str),
    /// Smart card refused (budget, unknown pseudonym, revoked).
    Card(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Pki(e) => write!(f, "pki: {e}"),
            CoreError::Chain(e) => write!(f, "chain: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto: {e}"),
            CoreError::Payment(e) => write!(f, "payment: {e}"),
            CoreError::Store(e) => write!(f, "store: {e}"),
            CoreError::BadLicense(m) => write!(f, "bad license: {m}"),
            CoreError::AlreadyRedeemed(id) => write!(f, "license {id} already redeemed"),
            CoreError::Denied(r) => write!(f, "denied: {r}"),
            CoreError::Revoked(what) => write!(f, "revoked: {what}"),
            CoreError::BadPseudonym(m) => write!(f, "pseudonym rejected: {m}"),
            CoreError::BadProof => write!(f, "holder proof failed"),
            CoreError::UnknownContent(id) => write!(f, "unknown content {id}"),
            CoreError::UnknownLicense(id) => write!(f, "unknown license {id}"),
            CoreError::BadEvidence(m) => write!(f, "evidence rejected: {m}"),
            CoreError::Card(m) => write!(f, "smart card refused: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<p2drm_pki::PkiError> for CoreError {
    fn from(e: p2drm_pki::PkiError) -> Self {
        CoreError::Pki(e)
    }
}

impl From<p2drm_pki::ChainError> for CoreError {
    fn from(e: p2drm_pki::ChainError) -> Self {
        CoreError::Chain(e)
    }
}

impl From<p2drm_crypto::CryptoError> for CoreError {
    fn from(e: p2drm_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl From<p2drm_payment::PaymentError> for CoreError {
    fn from(e: p2drm_payment::PaymentError) -> Self {
        CoreError::Payment(e)
    }
}

impl From<p2drm_store::StoreError> for CoreError {
    fn from(e: p2drm_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}
