//! One-call system bootstrap: wires the root CA, RA, TTP, mint, payment
//! processor, private provider and baseline provider together, and offers
//! the convenience flows the examples, tests and benchmarks build on.

use crate::entities::device::CompliantDevice;
use crate::entities::provider::{ContentProvider, MemBackend, ProviderConfig};
use crate::entities::ra::RegistrationAuthority;
use crate::entities::smartcard::CardBudget;
use crate::entities::ttp::Ttp;
use crate::entities::user::{PseudonymPolicy, UserAgent};
use crate::ids::{ContentId, LicenseId, UserId};
use crate::license::License;
use crate::protocol;
use crate::{CoreError, Transcript};
use p2drm_crypto::elgamal::ElGamalGroup;
use p2drm_crypto::rng::CryptoRng;
use p2drm_payment::identified::PaymentProcessor;
use p2drm_payment::{Mint, MintConfig};
use p2drm_pki::authority::CertificateAuthority;
use p2drm_pki::cert::Validity;
use p2drm_rel::{Limit, Rights};

/// System-wide parameters.
#[derive(Clone)]
pub struct SystemConfig {
    /// RSA modulus bits for every long-lived key.
    pub key_bits: usize,
    /// Coin denominations the mint supports.
    pub denominations: Vec<u64>,
    /// Pseudonym certificate freshness window (epochs).
    pub epoch_window: u32,
    /// ElGamal group for the TTP escrow key.
    pub elgamal_group: &'static ElGamalGroup,
    /// Default pseudonym refresh policy for new users.
    pub default_policy: PseudonymPolicy,
    /// Rights template applied by [`System::publish_content`].
    pub rights_template: Rights,
    /// Certificate validity window.
    pub validity: Validity,
    /// Expose the provider's wire `MetricsDump` op (off by default;
    /// snapshots carry only static metric names, durations and counts —
    /// see `p2drm-obs` for the privacy rule).
    pub metrics_dump: bool,
}

impl SystemConfig {
    /// Small keys and a test ElGamal group — fast enough for unit tests.
    pub fn fast_test() -> Self {
        SystemConfig {
            key_bits: 512,
            denominations: vec![100, 500, 1000],
            epoch_window: 4,
            elgamal_group: ElGamalGroup::test_512(),
            default_policy: PseudonymPolicy::FreshPerPurchase,
            rights_template: Rights::builder()
                .play(Limit::Count(3))
                .transfer(Limit::Count(2))
                .build(),
            validity: Validity::new(0, u64::MAX / 2),
            metrics_dump: false,
        }
    }

    /// Realistic key sizes (1024-bit RSA, MODP-1024 escrow group) for
    /// benchmarks. Bootstrap takes seconds.
    pub fn realistic() -> Self {
        SystemConfig {
            key_bits: 1024,
            elgamal_group: ElGamalGroup::modp_1024(),
            ..Self::fast_test()
        }
    }
}

/// The wired system, generic over the provider's store backend (the
/// volatile lock-sharded [`MemBackend`] by default; see
/// [`System::bootstrap_durable`] for the WAL-backed shape).
pub struct System<B: p2drm_store::ConcurrentKv = MemBackend> {
    /// Root certificate authority (trust anchor).
    pub root: CertificateAuthority,
    /// Registration authority (shared handle — every entry point takes
    /// `&self`, so the same RA serves in-proc calls and wire services).
    pub ra: std::sync::Arc<RegistrationAuthority>,
    /// Anonymity-revocation TTP.
    pub ttp: Ttp,
    /// E-cash mint.
    pub mint: Mint,
    /// Identified payment processor (baseline).
    pub processor: PaymentProcessor,
    /// Privacy-preserving provider (shared handle, same reasoning as
    /// [`System::ra`]; a wire service or TCP server clones the `Arc` and
    /// the system keeps inspecting the same instance).
    pub provider: std::sync::Arc<ContentProvider<B>>,
    /// Conventional provider (comparator).
    pub baseline: crate::baseline::BaselineProvider,
    config: SystemConfig,
    epoch: u32,
    now: u64,
}

/// Everything [`System`] wires up besides the provider; intermediate
/// state shared by the bootstrap paths.
struct Scaffold {
    root: CertificateAuthority,
    ra: RegistrationAuthority,
    ttp: Ttp,
    mint: Mint,
    processor: PaymentProcessor,
}

impl Scaffold {
    fn build<R: CryptoRng + ?Sized>(config: &SystemConfig, rng: &mut R) -> Self {
        let mut root = CertificateAuthority::new_root(config.key_bits, config.validity, rng);
        let ra = RegistrationAuthority::new(&mut root, config.key_bits, config.validity, rng);
        let ttp = Ttp::new(config.elgamal_group, rng);
        let mint = Mint::new(
            MintConfig {
                key_bits: config.key_bits,
                denominations: config.denominations.clone(),
            },
            rng,
        );
        let processor = PaymentProcessor::new();
        Scaffold {
            root,
            ra,
            ttp,
            mint,
            processor,
        }
    }

    fn provider_config(config: &SystemConfig) -> ProviderConfig {
        ProviderConfig {
            key_bits: config.key_bits,
            epoch_window: config.epoch_window,
            validity: config.validity,
            metrics_dump: config.metrics_dump,
            ..ProviderConfig::fast_test()
        }
    }

    fn finish<B: p2drm_store::ConcurrentKv, R: CryptoRng + ?Sized>(
        mut self,
        provider: ContentProvider<B>,
        config: SystemConfig,
        rng: &mut R,
    ) -> System<B> {
        let baseline = crate::baseline::BaselineProvider::new(
            &mut self.root,
            self.processor.clone(),
            config.key_bits,
            config.validity,
            rng,
        );
        System {
            root: self.root,
            ra: std::sync::Arc::new(self.ra),
            ttp: self.ttp,
            mint: self.mint,
            processor: self.processor,
            provider: std::sync::Arc::new(provider),
            baseline,
            config,
            epoch: 0,
            now: 1,
        }
    }
}

impl System {
    /// Builds every entity and wires the trust relationships, with the
    /// default volatile lock-sharded provider store.
    pub fn bootstrap<R: CryptoRng + ?Sized>(config: SystemConfig, rng: &mut R) -> Self {
        let mut scaffold = Scaffold::build(&config, rng);
        let provider = ContentProvider::new(
            &mut scaffold.root,
            scaffold.mint.clone(),
            scaffold.ra.blind_public().clone(),
            Scaffold::provider_config(&config),
            rng,
        );
        scaffold.finish(provider, config, rng)
    }
}

impl System<p2drm_store::WalShardedKv> {
    /// Bootstraps a system whose provider runs on a [`WalShardedKv`]
    /// under `dir` — the durable license service. Returns the merged
    /// recovery report from the shard-log replay (all zeros for a fresh
    /// directory).
    ///
    /// [`WalShardedKv`]: p2drm_store::WalShardedKv
    pub fn bootstrap_durable<R: CryptoRng + ?Sized>(
        config: SystemConfig,
        dir: impl Into<std::path::PathBuf>,
        durable: p2drm_store::WalShardedConfig,
        rng: &mut R,
    ) -> Result<(Self, p2drm_store::RecoveryReport), crate::CoreError> {
        let mut scaffold = Scaffold::build(&config, rng);
        let (provider, report) = ContentProvider::open_durable(
            &mut scaffold.root,
            scaffold.mint.clone(),
            scaffold.ra.blind_public().clone(),
            dir,
            durable,
            Scaffold::provider_config(&config),
            rng,
        )?;
        Ok((scaffold.finish(provider, config, rng), report))
    }
}

impl<B: p2drm_store::ConcurrentKv> System<B> {
    /// Bootstraps over a caller-supplied provider store backend (the
    /// generic path behind [`System::bootstrap`] and
    /// [`System::bootstrap_durable`]).
    pub fn bootstrap_with_backend<R: CryptoRng + ?Sized>(
        config: SystemConfig,
        backend: B,
        rng: &mut R,
    ) -> Self {
        let mut scaffold = Scaffold::build(&config, rng);
        let provider = ContentProvider::with_backend(
            &mut scaffold.root,
            scaffold.mint.clone(),
            scaffold.ra.blind_public().clone(),
            backend,
            Scaffold::provider_config(&config),
            rng,
        );
        scaffold.finish(provider, config, rng)
    }

    /// Current epoch (pseudonym freshness bucket).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Advances to the next epoch.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.now += 1;
    }

    /// Current wall-clock (unix-second stand-in).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances time without changing the epoch.
    pub fn advance_time(&mut self, secs: u64) {
        self.now += secs;
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Stands up the byte-level wire service over this system's provider
    /// and RA, synchronized to the current epoch/clock (re-sync after
    /// [`System::advance_epoch`] with
    /// [`crate::service::ProviderService::set_time`]). `seed` separates
    /// RNG streams between services; the service mixes it with OS
    /// entropy, so `handle` output is never predictable from the seed.
    pub fn wire_service(&self, seed: u64) -> crate::service::ProviderService<B>
    where
        B: Send + Sync + 'static,
    {
        let service = crate::service::ProviderService::new(self.provider.clone(), seed)
            .with_ra(self.ra.clone());
        service.set_time(self.epoch, self.now);
        service
    }

    /// [`System::wire_service`] recording into a caller-supplied metrics
    /// registry instead of the process-global one (isolated tests,
    /// side-by-side services).
    pub fn wire_service_with_registry(
        &self,
        seed: u64,
        registry: std::sync::Arc<p2drm_obs::Registry>,
    ) -> crate::service::ProviderService<B>
    where
        B: Send + Sync + 'static,
    {
        let service =
            crate::service::ProviderService::with_registry(self.provider.clone(), seed, registry)
                .with_ra(self.ra.clone());
        service.set_time(self.epoch, self.now);
        service
    }

    /// Publishes content on the private provider with the default rights
    /// template.
    pub fn publish_content<R: CryptoRng + ?Sized>(
        &self,
        title: &str,
        price: u64,
        payload: &[u8],
        rng: &mut R,
    ) -> ContentId {
        self.provider.publish(
            title,
            price,
            payload,
            self.config.rights_template.clone(),
            rng,
        )
    }

    /// Publishes content on the baseline provider.
    pub fn publish_baseline_content<R: CryptoRng + ?Sized>(
        &mut self,
        title: &str,
        price: u64,
        payload: &[u8],
        rng: &mut R,
    ) -> ContentId {
        self.baseline.publish(
            title,
            price,
            payload,
            self.config.rights_template.clone(),
            rng,
        )
    }

    /// Registers a user (account name derived from the label).
    pub fn register_user<R: CryptoRng + ?Sized>(
        &self,
        label: &str,
        rng: &mut R,
    ) -> Result<UserAgent, CoreError> {
        self.register_user_with_budget(label, CardBudget::default(), rng)
    }

    /// Registers a user with an explicit card budget (experiments that
    /// accumulate many fresh pseudonyms need more than the default 64).
    pub fn register_user_with_budget<R: CryptoRng + ?Sized>(
        &self,
        label: &str,
        budget: CardBudget,
        rng: &mut R,
    ) -> Result<UserAgent, CoreError> {
        let mut t = Transcript::new();
        protocol::register(
            &self.ra,
            UserId::from_label(label),
            format!("acct-{label}"),
            self.config.default_policy,
            budget,
            rng,
            &mut t,
        )
    }

    /// Funds a user's accounts at both the mint and the processor.
    pub fn fund(&self, user: &UserAgent, amount: u64) {
        self.mint.fund_account(&user.account, amount);
        self.processor.fund_account(&user.account, amount);
    }

    /// Ensures the user has a usable pseudonym under their policy,
    /// running blind issuance if needed.
    pub fn ensure_pseudonym<R: CryptoRng + ?Sized>(
        &self,
        user: &mut UserAgent,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        if user.current_pseudonym().is_none() {
            let mut t = Transcript::new();
            protocol::obtain_pseudonym(
                user,
                &self.ra,
                self.ttp.escrow_key(),
                self.epoch,
                self.now,
                rng,
                &mut t,
            )?;
        }
        Ok(())
    }

    /// Publishes attribute-restricted content (e.g. age-rated).
    pub fn publish_rated_content<R: CryptoRng + ?Sized>(
        &self,
        title: &str,
        price: u64,
        payload: &[u8],
        attribute: &str,
        rng: &mut R,
    ) -> ContentId {
        self.provider.publish_restricted(
            title,
            price,
            payload,
            self.config.rights_template.clone(),
            attribute,
            rng,
        )
    }

    /// Records a verified attribute for the user at the RA and teaches the
    /// provider to trust that attribute's verification key.
    pub fn grant_attribute<R: CryptoRng + ?Sized>(
        &self,
        user: &UserAgent,
        attribute: &str,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        self.ra.grant_attribute(&user.user_id(), attribute, rng)?;
        let key = self
            .ra
            .attribute_public(attribute)
            .expect("key exists after grant");
        self.provider.trust_attribute(attribute, key);
        Ok(())
    }

    /// Ensures the user holds an attribute credential bound to their
    /// *current* pseudonym (obtaining pseudonym and credential as needed).
    pub fn ensure_attribute<R: CryptoRng + ?Sized>(
        &self,
        user: &mut UserAgent,
        attribute: &str,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        self.ensure_pseudonym(user, rng)?;
        let pseudonym = user
            .current_pseudonym()
            .expect("ensured above")
            .pseudonym_id();
        if user.attribute_cert_for(&pseudonym, attribute).is_none() {
            let mut t = Transcript::new();
            protocol::obtain_attribute(
                user, &self.ra, attribute, self.epoch, self.now, rng, &mut t,
            )?;
        }
        Ok(())
    }

    /// Full anonymous purchase (pseudonym top-up + coin + license).
    pub fn purchase<R: CryptoRng + ?Sized>(
        &self,
        user: &mut UserAgent,
        content_id: ContentId,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        let mut t = Transcript::new();
        self.purchase_with_transcript(user, content_id, rng, &mut t)
    }

    /// Purchase with an externally supplied transcript (experiments).
    pub fn purchase_with_transcript<R: CryptoRng + ?Sized>(
        &self,
        user: &mut UserAgent,
        content_id: ContentId,
        rng: &mut R,
        transcript: &mut Transcript,
    ) -> Result<License, CoreError> {
        self.ensure_pseudonym(user, rng)?;
        protocol::purchase(
            user,
            &self.provider,
            &self.mint,
            content_id,
            self.epoch,
            rng,
            transcript,
        )
    }

    /// Registers a compliant device trusting this system's provider.
    pub fn register_device<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<CompliantDevice, CoreError> {
        let provider_cert = self.provider.certificate().clone();
        CompliantDevice::new(
            &mut self.root,
            &provider_cert,
            self.ra.blind_public().clone(),
            self.config.key_bits,
            self.config.validity,
            rng,
        )
    }

    /// Registers a device trusting the baseline provider.
    pub fn register_baseline_device<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<CompliantDevice, CoreError> {
        let provider_cert = self.baseline.certificate().clone();
        CompliantDevice::new(
            &mut self.root,
            &provider_cert,
            self.ra.blind_public().clone(),
            self.config.key_bits,
            self.config.validity,
            rng,
        )
    }

    /// Plays a license on a device.
    pub fn play<R: CryptoRng + ?Sized>(
        &self,
        user: &UserAgent,
        device: &mut CompliantDevice,
        license: &License,
        rng: &mut R,
    ) -> Result<Vec<u8>, CoreError> {
        let mut t = Transcript::new();
        protocol::play(user, device, &self.provider, license, self.now, rng, &mut t)
    }

    /// Transfers a license between users (both pseudonym top-ups included).
    pub fn transfer<R: CryptoRng + ?Sized>(
        &self,
        sender: &mut UserAgent,
        recipient: &mut UserAgent,
        license_id: LicenseId,
        rng: &mut R,
    ) -> Result<License, CoreError> {
        self.ensure_pseudonym(recipient, rng)?;
        let mut t = Transcript::new();
        protocol::transfer(
            sender,
            recipient,
            &self.provider,
            license_id,
            self.epoch,
            rng,
            &mut t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn bootstrap_wires_trust() {
        let mut rng = test_rng(220);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        assert!(sys
            .provider
            .certificate()
            .verify(sys.root.public_key(), 10)
            .is_ok());
        assert!(sys
            .baseline
            .certificate()
            .verify(sys.root.public_key(), 10)
            .is_ok());
        assert_eq!(sys.epoch(), 0);
    }

    #[test]
    fn end_to_end_smoke() {
        let mut rng = test_rng(221);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("Track", 100, b"bits", &mut rng);
        let mut u = sys
            .register_user("u", &mut rng)
            .expect("user label is unique on a fresh RA");
        sys.fund(&u, 300);
        let lic = sys
            .purchase(&mut u, cid, &mut rng)
            .expect("funded user purchases published content");
        let mut dev = sys
            .register_device(&mut rng)
            .expect("root CA issues device certificates");
        assert_eq!(
            sys.play(&u, &mut dev, &lic, &mut rng)
                .expect("fresh license plays within its count limit"),
            b"bits"
        );
        assert_eq!(sys.provider.license_count(), 1);
        assert_eq!(sys.mint.deposited_total(), 100);
    }

    #[test]
    fn epoch_and_time_advance() {
        let mut rng = test_rng(222);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let e0 = sys.epoch();
        let t0 = sys.now();
        sys.advance_epoch();
        sys.advance_time(100);
        assert_eq!(sys.epoch(), e0 + 1);
        assert!(sys.now() >= t0 + 101);
    }
}
