//! Blind pseudonym issuance — the paper's unlinkability engine.
//!
//! The card builds a pseudonym certificate body (fresh key + TTP escrow),
//! blinds its full-domain hash, and authenticates to the RA with the master
//! key. The RA signs the blinded value. After unblinding, the resulting
//! certificate verifies under the RA blind key but is unlinkable to this
//! session: the RA saw only `(card, uniformly-random ring element)`.

use crate::audit::{Party, Transcript};
use crate::entities::ra::RegistrationAuthority;
use crate::entities::user::UserAgent;
use crate::protocol::messages::PseudonymIssueResponse;
use crate::service::PseudonymIssueSession;
use crate::CoreError;
use p2drm_crypto::elgamal::ElGamalPublicKey;
use p2drm_crypto::rng::CryptoRng;
use p2drm_pki::cert::{KeyId, PseudonymCertificate};

/// Runs the blind issuance protocol; the fresh certificate is stored on the
/// user agent and its pseudonym id returned.
///
/// The card-side rounds are [`PseudonymIssueSession`] — the same state
/// machine the wire client drives — so the in-process engine and the
/// byte-level path cannot drift apart; this engine only adds the direct
/// RA call and the transcript recording.
pub fn obtain_pseudonym<R: CryptoRng + ?Sized>(
    user: &mut UserAgent,
    ra: &RegistrationAuthority,
    ttp_key: &ElGamalPublicKey,
    epoch: u32,
    now: u64,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<KeyId, CoreError> {
    // Card: fresh pseudonym key + escrow, blind, authenticate.
    let (session, request) =
        PseudonymIssueSession::begin(user, ra.blind_public(), ttp_key, epoch, rng)?;
    transcript.record(
        Party::Card,
        Party::Ra,
        "pseudonym-issue-request",
        p2drm_codec::to_bytes(&request),
    );

    // RA: authenticate card, blind-sign.
    let blind_sig = ra.issue_pseudonym(
        request.card_id,
        &request.card_cert,
        &request.blinded,
        &request.auth_sig,
        now,
    )?;
    let response = PseudonymIssueResponse { blind_sig };
    transcript.record(
        Party::Ra,
        Party::Card,
        "pseudonym-issue-response",
        p2drm_codec::to_bytes(&response),
    );

    // Card: unblind, self-check, store.
    session.finish(user, ra.blind_public(), &response)
}

/// Cut-and-choose variant of blind issuance: the card prepares `k`
/// candidates; the RA audits `k-1` of them before signing the survivor,
/// bounding a cheating card's success probability at `1/k` (experiment E9
/// benches the cost sweep). The opened candidates' keys are discarded from
/// the card (they were revealed).
#[allow(clippy::too_many_arguments)]
pub fn obtain_pseudonym_cut_and_choose<R: CryptoRng + ?Sized>(
    user: &mut UserAgent,
    ra: &RegistrationAuthority,
    ttp_key: &ElGamalPublicKey,
    epoch: u32,
    now: u64,
    k: usize,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<KeyId, CoreError> {
    assert!(k >= 1, "cut-and-choose needs at least one candidate");
    // Card: k fresh candidates.
    let mut bodies = Vec::with_capacity(k);
    for _ in 0..k {
        bodies.push(user.card.begin_pseudonym(ttp_key, epoch, rng)?);
    }
    let messages: Vec<Vec<u8>> = bodies.iter().map(|b| b.signing_bytes()).collect();
    let request = p2drm_crypto::blind::CutChooseRequest::prepare(
        ra.blind_public(),
        k,
        |i| messages[i].clone(),
        rng,
    )?;
    let blinded_values = request.blinded_values();
    let auth_bytes =
        crate::protocol::messages::cut_choose_auth_bytes(&user.card.card_id(), &blinded_values);
    let auth_sig = user.card.sign_with_master(&auth_bytes)?;
    transcript.record(Party::Card, Party::Ra, "cut-choose-candidates", auth_bytes);

    let (keep, blind_sig) = ra.issue_pseudonym_cut_and_choose(
        user.card.card_id(),
        &user.card.master_cert().clone(),
        &blinded_values,
        &auth_sig,
        |keep| request.open_all_but(keep),
        epoch,
        now,
        rng,
    )?;
    transcript.record(
        Party::Ra,
        Party::Card,
        "cut-choose-signature",
        blind_sig.to_bytes_be(),
    );

    // Card: unblind the kept candidate, discard the opened ones.
    let (_, signature) = request.finish(ra.blind_public(), keep, &blind_sig)?;
    let kept_body = bodies.swap_remove(keep);
    let kept_id = KeyId::of_rsa(&kept_body.pseudonym_key);
    for body in bodies {
        user.card
            .forget_pseudonym(&KeyId::of_rsa(&body.pseudonym_key));
    }
    let cert = PseudonymCertificate {
        body: kept_body,
        signature,
    };
    cert.verify(ra.blind_public())
        .map_err(|_| CoreError::BadPseudonym("unblinded signature invalid"))?;
    user.add_pseudonym(cert);
    Ok(kept_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::smartcard::CardBudget;
    use crate::entities::ttp::Ttp;
    use crate::entities::user::PseudonymPolicy;
    use crate::ids::UserId;
    use crate::protocol::registration::register;
    use p2drm_crypto::elgamal::ElGamalGroup;
    use p2drm_crypto::rng::test_rng;
    use p2drm_pki::authority::CertificateAuthority;
    use p2drm_pki::cert::Validity;

    struct Fixture {
        ra: RegistrationAuthority,
        ttp: Ttp,
        user: UserAgent,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = test_rng(seed);
        let v = Validity::new(0, u64::MAX / 2);
        let mut root = CertificateAuthority::new_root(512, v, &mut rng);
        let ra = RegistrationAuthority::new(&mut root, 512, v, &mut rng);
        let ttp = Ttp::new(ElGamalGroup::test_512(), &mut rng);
        let mut t = Transcript::new();
        let user = register(
            &ra,
            UserId::from_label("carol"),
            "acct",
            PseudonymPolicy::FreshPerPurchase,
            CardBudget::default(),
            &mut rng,
            &mut t,
        )
        .unwrap();
        Fixture { ra, ttp, user }
    }

    #[test]
    fn issued_pseudonym_verifies_and_is_stored() {
        let mut f = fixture(160);
        let mut rng = test_rng(161);
        let mut t = Transcript::new();
        let id = obtain_pseudonym(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            3,
            100,
            &mut rng,
            &mut t,
        )
        .unwrap();
        let cert = f.user.pseudonym_certs().last().unwrap();
        assert_eq!(cert.pseudonym_id(), id);
        assert!(cert.verify(f.ra.blind_public()).is_ok());
        assert_eq!(cert.body.epoch, 3);
        assert_eq!(t.message_count(), 2);
        assert_eq!(f.user.card.pseudonym_count(), 1);
    }

    #[test]
    fn ra_never_receives_pseudonym_key_or_user_id() {
        // The unlinkability transcript check: nothing the RA received
        // during issuance contains the pseudonym key fingerprint, the
        // certificate body bytes, or the user id.
        let mut f = fixture(162);
        let mut rng = test_rng(163);
        let mut t = Transcript::new();
        obtain_pseudonym(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            0,
            100,
            &mut rng,
            &mut t,
        )
        .unwrap();
        let cert = f.user.pseudonym_certs().last().unwrap();
        let pseudonym_modulus = cert.body.pseudonym_key.modulus().to_bytes_be();
        assert!(!t.scan_for(Party::Ra, &pseudonym_modulus));
        assert!(!t.scan_for(Party::Ra, &cert.body.signing_bytes()));
        // The user id is escrowed (encrypted) — never in the clear.
        assert!(!t.scan_for(Party::Ra, f.user.user_id().as_bytes()));
    }

    #[test]
    fn cut_and_choose_issues_valid_unlinkable_pseudonym() {
        let mut f = fixture(168);
        let mut rng = test_rng(169);
        let mut t = Transcript::new();
        let id = obtain_pseudonym_cut_and_choose(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            2,
            100,
            4,
            &mut rng,
            &mut t,
        )
        .unwrap();
        let cert = f.user.pseudonym_certs().last().unwrap();
        assert_eq!(cert.pseudonym_id(), id);
        assert!(cert.verify(f.ra.blind_public()).is_ok());
        assert_eq!(cert.body.epoch, 2);
        // Only the kept key remains on the card (opened ones discarded).
        assert_eq!(f.user.card.pseudonym_count(), 1);
        // The kept certificate is usable: sign a challenge with it.
        assert!(f.user.card.sign_with_pseudonym(&id, b"challenge").is_ok());
    }

    #[test]
    fn cut_and_choose_audit_rejects_wrong_epoch_candidates() {
        // The card builds candidates for epoch 5 but the RA expects 2:
        // every opened candidate fails the audit, so issuance fails with
        // probability 1 for k >= 2 when ALL candidates are malformed.
        let mut f = fixture(1680);
        let mut rng = test_rng(1690);
        let mut t = Transcript::new();
        let res = obtain_pseudonym_cut_and_choose(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            5, // candidates carry epoch 5...
            100,
            4,
            &mut rng,
            &mut t,
        );
        // ...but issue the protocol against an RA expecting the same epoch
        // succeeds; mismatch is tested through the RA endpoint directly.
        assert!(res.is_ok());

        // Direct endpoint test with a mismatched expected epoch.
        let bodies: Vec<_> = (0..3)
            .map(|_| {
                f.user
                    .card
                    .begin_pseudonym(f.ttp.escrow_key(), 9, &mut rng)
                    .unwrap()
            })
            .collect();
        let messages: Vec<Vec<u8>> = bodies.iter().map(|b| b.signing_bytes()).collect();
        let request = p2drm_crypto::blind::CutChooseRequest::prepare(
            f.ra.blind_public(),
            3,
            |i| messages[i].clone(),
            &mut rng,
        )
        .unwrap();
        let blinded = request.blinded_values();
        let auth = f
            .user
            .card
            .sign_with_master(&crate::protocol::messages::cut_choose_auth_bytes(
                &f.user.card.card_id(),
                &blinded,
            ))
            .unwrap();
        let res = f.ra.issue_pseudonym_cut_and_choose(
            f.user.card.card_id(),
            &f.user.card.master_cert().clone(),
            &blinded,
            &auth,
            |keep| request.open_all_but(keep),
            2, // RA expects epoch 2; candidates say 9
            100,
            &mut rng,
        );
        assert!(matches!(res, Err(CoreError::BadEvidence(_))));
    }

    #[test]
    fn revoked_card_cannot_obtain_pseudonyms() {
        let mut f = fixture(164);
        let mut rng = test_rng(165);
        f.ra.revoke_user(&f.user.user_id()).unwrap();
        let mut t = Transcript::new();
        let res = obtain_pseudonym(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            0,
            100,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::Revoked(_))));
    }

    #[test]
    fn distinct_pseudonyms_unlinkable_by_content() {
        let mut f = fixture(166);
        let mut rng = test_rng(167);
        let mut t = Transcript::new();
        let a = obtain_pseudonym(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            0,
            100,
            &mut rng,
            &mut t,
        )
        .unwrap();
        let b = obtain_pseudonym(
            &mut f.user,
            &f.ra,
            f.ttp.escrow_key(),
            0,
            100,
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert_ne!(a, b);
        // RA's own log holds only blinded values; check they differ from
        // the FDH images of both certificates (structural unlinkability).
        for rec in f.ra.issuance_log() {
            for cert in f.user.pseudonym_certs() {
                let fdh = p2drm_crypto::rsa::fdh(
                    &cert.body.signing_bytes(),
                    f.ra.blind_public().modulus_len(),
                );
                assert_ne!(rec.blinded, fdh);
            }
        }
    }
}
