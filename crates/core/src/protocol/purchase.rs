//! Anonymous purchase — the paper's headline protocol (T1).
//!
//! The user withdraws an anonymous coin, presents a pseudonym certificate
//! and the coin over a pseudonymous channel, and receives an anonymous
//! license bound to the pseudonym key. The provider learns *what* was
//! bought and that the buyer is legitimate — never *who*.

use crate::audit::{Party, Transcript};
use crate::entities::provider::ContentProvider;
use crate::entities::user::UserAgent;
use crate::ids::ContentId;
use crate::license::License;
use crate::protocol::messages::{PurchaseRequest, PurchaseResponse};
use crate::CoreError;
use p2drm_crypto::rng::CryptoRng;
use p2drm_payment::Mint;
use p2drm_store::ConcurrentKv;

/// Runs the anonymous purchase protocol.
///
/// Preconditions the caller (usually [`crate::system::System`]) arranges:
/// the user has a usable pseudonym certificate per their refresh policy,
/// and enough account balance at the mint for the coin withdrawal.
pub fn purchase<B: ConcurrentKv, R: CryptoRng + ?Sized>(
    user: &mut UserAgent,
    provider: &ContentProvider<B>,
    mint: &Mint,
    content_id: ContentId,
    now_epoch: u32,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<License, CoreError> {
    let item_meta = provider
        .content_meta(&content_id)
        .ok_or(CoreError::UnknownContent(content_id))?;
    let item_price = item_meta.price;

    let pseudonym_cert = user
        .current_pseudonym()
        .ok_or(CoreError::BadPseudonym("no usable pseudonym (policy)"))?
        .clone();

    // Attach the attribute credential bound to this pseudonym when the
    // content demands one (the provider re-verifies everything).
    let attribute_cert = match &item_meta.required_attribute {
        None => None,
        Some(attr) => Some(
            user.attribute_cert_for(&pseudonym_cert.pseudonym_id(), attr)
                .ok_or(CoreError::BadPseudonym(
                    "attribute credential required but not held for this pseudonym",
                ))?
                .clone(),
        ),
    };

    // Obtain an anonymous coin covering the price (blinding dance with
    // the mint; the mint debits the account but never sees the serial).
    // When the price is not a mint denomination, the smallest covering
    // coin is used — fixed-denomination e-cash cannot make change.
    let account = user.account.clone();
    let coin = user
        .wallet
        .coin_for_amount(mint, &account, item_price, rng)?;
    transcript.record(
        Party::User,
        Party::Mint,
        "coin-withdrawal",
        coin.serial.to_vec(), // representative size: serial; blinded value logged by mint
    );

    let request = PurchaseRequest {
        content_id,
        pseudonym_cert,
        coin,
        attribute_cert,
    };
    transcript.record(
        Party::User,
        Party::Provider,
        "purchase-request",
        p2drm_codec::to_bytes(&request),
    );

    let license = match provider.handle_purchase(&request, now_epoch, rng) {
        Ok(license) => license,
        Err(e) => {
            // Purchase failed after coin withdrawal: put the coin back if
            // it was not deposited (anything except a payment error).
            if !matches!(e, CoreError::Payment(_)) {
                user.wallet.put_back(request.coin.clone());
            }
            return Err(e);
        }
    };

    let response = PurchaseResponse {
        license: license.clone(),
    };
    transcript.record(
        Party::Provider,
        Party::User,
        "purchase-response",
        p2drm_codec::to_bytes(&response),
    );

    let pseudonym_id = request.pseudonym_cert.pseudonym_id();
    user.note_pseudonym_use();
    user.add_license(license.clone(), pseudonym_id);
    Ok(license)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn purchase_yields_valid_license_bound_to_pseudonym() {
        let mut rng = test_rng(170);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"payload", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 500);

        let mut t = Transcript::new();
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        let epoch = sys.epoch();
        let mint = sys.mint.clone();
        let license = purchase(
            &mut alice,
            &sys.provider,
            &mint,
            cid,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();

        assert!(license.verify(sys.provider.public_key()).is_ok());
        let cert = alice.pseudonym_certs().last().unwrap();
        assert_eq!(
            p2drm_pki::cert::KeyId::of_rsa(&license.body.holder),
            cert.pseudonym_id()
        );
        assert_eq!(alice.licenses().len(), 1);
        assert!(t.message_count() >= 3);
    }

    #[test]
    fn provider_receives_no_identity_bytes() {
        // The paper's core privacy claim, checked against actual wire bytes.
        let mut rng = test_rng(171);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"payload", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 500);

        let mut t = Transcript::new();
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        let epoch = sys.epoch();
        let mint = sys.mint.clone();
        purchase(
            &mut alice,
            &sys.provider,
            &mint,
            cid,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();

        assert!(!t.scan_for(Party::Provider, alice.user_id().as_bytes()));
        assert!(!t.scan_for(Party::Provider, alice.account.as_bytes()));
        let master_modulus = alice.card.master_public().modulus().to_bytes_be();
        assert!(!t.scan_for(Party::Provider, &master_modulus));
    }

    #[test]
    fn purchase_without_pseudonym_fails() {
        let mut rng = test_rng(172);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"payload", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 500);
        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let mint = sys.mint.clone();
        let res = purchase(
            &mut alice,
            &sys.provider,
            &mint,
            cid,
            epoch,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::BadPseudonym(_))));
    }

    #[test]
    fn unknown_content_and_no_funds_fail_cleanly() {
        let mut rng = test_rng(173);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"payload", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let mint = sys.mint.clone();

        let res = purchase(
            &mut alice,
            &sys.provider,
            &mint,
            ContentId::from_label("ghost"),
            epoch,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::UnknownContent(_))));

        // No funding: withdrawal fails inside the engine.
        let res = purchase(
            &mut alice,
            &sys.provider,
            &mint,
            cid,
            epoch,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::Payment(_))));
        assert!(alice.licenses().is_empty());
    }

    #[test]
    fn stale_pseudonym_epoch_rejected() {
        let mut rng = test_rng(174);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"payload", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 500);
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        // Advance past the epoch window.
        for _ in 0..10 {
            sys.advance_epoch();
        }
        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let mint = sys.mint.clone();
        let res = purchase(
            &mut alice,
            &sys.provider,
            &mint,
            cid,
            epoch,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::BadPseudonym(_))));
    }
}
