//! Blind attribute certification — "private credentials": prove a
//! property (e.g. *adult*) to a provider without identifying yourself.
//!
//! Works exactly like pseudonym issuance, with two twists: the credential
//! body binds to the user's **current pseudonym key** (so it cannot be
//! lent — exercising it requires that pseudonym's card), and the RA signs
//! with a **per-attribute key** after checking the authenticated card's
//! owner actually holds the attribute. The RA still never sees the
//! resulting certificate, so attribute use is unlinkable to issuance.

use crate::audit::{Party, Transcript};
use crate::entities::ra::RegistrationAuthority;
use crate::entities::user::UserAgent;
use crate::protocol::messages::AttributeIssueResponse;
use crate::service::AttributeIssueSession;
use crate::CoreError;
use p2drm_crypto::rng::CryptoRng;
use p2drm_pki::cert::KeyId;

/// Obtains a blind attribute certificate bound to the user's current
/// pseudonym; stores it on the agent and returns the pseudonym it binds to.
///
/// The card-side rounds are [`AttributeIssueSession`] — the same state
/// machine the wire client drives — so the in-process engine and the
/// byte-level path cannot drift apart; this engine only adds the direct
/// RA call and the transcript recording.
pub fn obtain_attribute<R: CryptoRng + ?Sized>(
    user: &mut UserAgent,
    ra: &RegistrationAuthority,
    attribute: &str,
    epoch: u32,
    now: u64,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<KeyId, CoreError> {
    let attr_key = ra
        .attribute_public(attribute)
        .ok_or(CoreError::Card("attribute unknown to RA"))?;
    let (session, request) = AttributeIssueSession::begin(user, attribute, &attr_key, epoch, rng)?;
    transcript.record(
        Party::Card,
        Party::Ra,
        "attribute-issue-request",
        p2drm_codec::to_bytes(&request),
    );

    let blind_sig = ra.issue_attribute(
        request.card_id,
        &request.card_cert,
        &request.attribute,
        &request.blinded,
        &request.auth_sig,
        now,
    )?;
    let response = AttributeIssueResponse { blind_sig };
    transcript.record(
        Party::Ra,
        Party::Card,
        "attribute-issue-response",
        p2drm_codec::to_bytes(&response),
    );

    session.finish(user, &response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn attribute_issuance_binds_to_current_pseudonym() {
        let mut rng = test_rng(300);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.ra
            .grant_attribute(&alice.user_id(), "adult", &mut rng)
            .unwrap();
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        let pid = alice.current_pseudonym().unwrap().pseudonym_id();

        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let now = sys.now();
        let bound =
            obtain_attribute(&mut alice, &sys.ra, "adult", epoch, now, &mut rng, &mut t).unwrap();
        assert_eq!(bound, pid);
        let cert = alice.attribute_cert_for(&pid, "adult").unwrap();
        assert!(cert
            .verify(&sys.ra.attribute_public("adult").unwrap())
            .is_ok());
        assert_eq!(t.message_count(), 2);
    }

    #[test]
    fn unentitled_user_refused() {
        let mut rng = test_rng(301);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let mut minor = sys.register_user("minor", &mut rng).unwrap();
        // Attribute key exists (someone else is an adult)...
        let mut adult = sys.register_user("adult-user", &mut rng).unwrap();
        sys.ra
            .grant_attribute(&adult.user_id(), "adult", &mut rng)
            .unwrap();
        let _ = &mut adult;
        sys.ensure_pseudonym(&mut minor, &mut rng).unwrap();
        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let now = sys.now();
        let res = obtain_attribute(&mut minor, &sys.ra, "adult", epoch, now, &mut rng, &mut t);
        assert!(matches!(res, Err(CoreError::Card(_))));
    }

    #[test]
    fn ra_never_sees_attribute_cert_contents() {
        let mut rng = test_rng(302);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.ra
            .grant_attribute(&alice.user_id(), "adult", &mut rng)
            .unwrap();
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let now = sys.now();
        let pid =
            obtain_attribute(&mut alice, &sys.ra, "adult", epoch, now, &mut rng, &mut t).unwrap();
        let cert = alice.attribute_cert_for(&pid, "adult").unwrap();
        assert!(!t.scan_for(Party::Ra, &cert.body.signing_bytes()));
        let modulus = cert.body.pseudonym_key.modulus().to_bytes_be();
        assert!(!t.scan_for(Party::Ra, &modulus));
    }

    #[test]
    fn unknown_attribute_refused() {
        let mut rng = test_rng(303);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.ensure_pseudonym(&mut alice, &mut rng).unwrap();
        let mut t = Transcript::new();
        let epoch = sys.epoch();
        let now = sys.now();
        assert!(matches!(
            obtain_attribute(
                &mut alice,
                &sys.ra,
                "nonexistent",
                epoch,
                now,
                &mut rng,
                &mut t
            ),
            Err(CoreError::Card(_))
        ));
    }
}
