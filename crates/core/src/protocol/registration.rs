//! Registration: the one identified protocol. The user proves identity to
//! the RA (simulated KYC) and receives a smart card with a certified
//! master key. This is the only place the RA links identity to card.

use crate::audit::{Party, Transcript};
use crate::entities::ra::RegistrationAuthority;
use crate::entities::smartcard::CardBudget;
use crate::entities::user::{PseudonymPolicy, UserAgent};
use crate::ids::UserId;
use crate::CoreError;
use p2drm_crypto::rng::CryptoRng;

/// Registers `user_id` with the RA, returning a ready user agent.
pub fn register<R: CryptoRng + ?Sized>(
    ra: &RegistrationAuthority,
    user_id: UserId,
    account: impl Into<String>,
    policy: PseudonymPolicy,
    budget: CardBudget,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<UserAgent, CoreError> {
    // U -> RA: identity claim (the KYC moment; identified by design).
    transcript.record(
        Party::User,
        Party::Ra,
        "registration-request",
        user_id.as_bytes().to_vec(),
    );
    let card = ra.register_user(user_id, budget, rng)?;
    // RA -> U: card with certified master key.
    transcript.record(
        Party::Ra,
        Party::User,
        "card+master-cert",
        p2drm_codec::to_bytes(card.master_cert()),
    );
    Ok(UserAgent::new(card, account, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;
    use p2drm_pki::authority::CertificateAuthority;
    use p2drm_pki::cert::Validity;

    fn setup() -> (CertificateAuthority, RegistrationAuthority) {
        let mut rng = test_rng(150);
        let v = Validity::new(0, u64::MAX / 2);
        let mut root = CertificateAuthority::new_root(512, v, &mut rng);
        let ra = RegistrationAuthority::new(&mut root, 512, v, &mut rng);
        (root, ra)
    }

    #[test]
    fn registration_issues_verifiable_card() {
        let (_root, ra) = setup();
        let mut rng = test_rng(151);
        let mut t = Transcript::new();
        let user = register(
            &ra,
            UserId::from_label("alice"),
            "acct-alice",
            PseudonymPolicy::FreshPerPurchase,
            CardBudget::default(),
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert!(user
            .card
            .master_cert()
            .verify(ra.identity_public(), 100)
            .is_ok());
        assert_eq!(t.message_count(), 2);
        assert_eq!(ra.user_count(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (_root, ra) = setup();
        let mut rng = test_rng(152);
        let mut t = Transcript::new();
        let uid = UserId::from_label("bob");
        register(
            &ra,
            uid,
            "a1",
            PseudonymPolicy::Static,
            CardBudget::default(),
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert!(register(
            &ra,
            uid,
            "a2",
            PseudonymPolicy::Static,
            CardBudget::default(),
            &mut rng,
            &mut t,
        )
        .is_err());
    }
}
