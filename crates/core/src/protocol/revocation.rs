//! Conditional anonymity: abuse evidence, TTP de-anonymization, and the
//! punishment pipeline (card revocation + pseudonym CRL).
//!
//! The TTP opens an identity escrow only for evidence that *proves* abuse
//! cryptographically — e.g. two valid transfer authorizations for the same
//! unique license id toward different recipients, something an honest
//! holder can never produce.

use crate::audit::{Party, Transcript};
use crate::entities::provider::ContentProvider;
use crate::entities::ra::RegistrationAuthority;
use crate::entities::ttp::Ttp;
use crate::ids::UserId;
use crate::protocol::messages::{transfer_proof_bytes, TransferRequest};
use crate::CoreError;
use p2drm_pki::cert::{KeyId, PseudonymCertificate};
use p2drm_store::ConcurrentKv;

/// Verifiable abuse evidence.
#[derive(Clone, Debug)]
pub enum AbuseEvidence {
    /// Two valid transfer authorizations for the same license id toward
    /// different recipients — proof of attempted double redemption.
    DoubleTransfer {
        /// First observed request.
        first: TransferRequest,
        /// Second request for the same license id.
        second: TransferRequest,
    },
}

impl AbuseEvidence {
    /// Stable label for audit logs.
    pub fn kind(&self) -> &'static str {
        match self {
            AbuseEvidence::DoubleTransfer { .. } => "double-transfer",
        }
    }

    /// Verifies the evidence against the accused pseudonym certificate.
    /// Must not rely on any provider state — the TTP re-checks everything.
    pub fn verify(&self, cert: &PseudonymCertificate) -> Result<(), CoreError> {
        match self {
            AbuseEvidence::DoubleTransfer { first, second } => {
                if first.license.id() != second.license.id() {
                    return Err(CoreError::BadEvidence("license ids differ"));
                }
                let holder = &first.license.body.holder;
                if KeyId::of_rsa(holder) != cert.pseudonym_id()
                    || KeyId::of_rsa(&second.license.body.holder) != cert.pseudonym_id()
                {
                    return Err(CoreError::BadEvidence("holder key does not match accused"));
                }
                let r1 = first.recipient_cert.pseudonym_id();
                let r2 = second.recipient_cert.pseudonym_id();
                if r1 == r2 {
                    return Err(CoreError::BadEvidence(
                        "same recipient twice is a replay, not abuse",
                    ));
                }
                for (req, recipient) in [(first, r1), (second, r2)] {
                    let msg = transfer_proof_bytes(&req.license.id(), &recipient);
                    holder
                        .verify(&msg, &req.proof)
                        .map_err(|_| CoreError::BadEvidence("authorization signature invalid"))?;
                }
                Ok(())
            }
        }
    }
}

/// Full pipeline: TTP verifies evidence and opens the escrow; the RA
/// revokes the card; the provider revokes the pseudonym. Returns the
/// de-anonymized user.
pub fn deanonymize_and_punish<B: ConcurrentKv>(
    ttp: &mut Ttp,
    ra: &RegistrationAuthority,
    provider: &ContentProvider<B>,
    evidence: &AbuseEvidence,
    cert: &PseudonymCertificate,
    transcript: &mut Transcript,
) -> Result<UserId, CoreError> {
    transcript.record(
        Party::Provider,
        Party::Ttp,
        "abuse-evidence",
        p2drm_codec::to_bytes(&cert.clone()),
    );
    let user = ttp.open_escrow(evidence, cert, ra.blind_public())?;
    transcript.record(
        Party::Ttp,
        Party::Ra,
        "deanonymized-user",
        user.as_bytes().to_vec(),
    );
    ra.revoke_user(&user)?;
    provider.revoke_pseudonym(cert.pseudonym_id())?;
    Ok(user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use crate::CoreError;
    use p2drm_crypto::rng::test_rng;

    /// Builds genuine double-transfer evidence by having Alice sign two
    /// authorizations for the same license.
    fn make_evidence(
        sys: &mut System,
        rng: &mut rand::rngs::StdRng,
    ) -> (AbuseEvidence, PseudonymCertificate, UserId) {
        let cid = sys.publish_content("T", 100, b"D", rng);
        let mut alice = sys.register_user("mallory", rng).unwrap();
        sys.fund(&alice, 1000);
        let license = sys.purchase(&mut alice, cid, rng).unwrap();
        let alice_pseudonym = alice.licenses()[0].pseudonym;
        let alice_cert = alice
            .pseudonym_certs()
            .iter()
            .find(|c| c.pseudonym_id() == alice_pseudonym)
            .unwrap()
            .clone();

        let mut bob = sys.register_user("bob2", rng).unwrap();
        let mut carol = sys.register_user("carol2", rng).unwrap();
        sys.ensure_pseudonym(&mut bob, rng).unwrap();
        sys.ensure_pseudonym(&mut carol, rng).unwrap();
        let bob_cert = bob.pseudonym_certs().last().unwrap().clone();
        let carol_cert = carol.pseudonym_certs().last().unwrap().clone();

        let mk = |recipient: &PseudonymCertificate, alice: &crate::entities::UserAgent| {
            let msg = transfer_proof_bytes(&license.id(), &recipient.pseudonym_id());
            TransferRequest {
                license: license.clone(),
                recipient_cert: recipient.clone(),
                proof: alice
                    .card
                    .sign_with_pseudonym(&alice_pseudonym, &msg)
                    .unwrap(),
            }
        };
        let evidence = AbuseEvidence::DoubleTransfer {
            first: mk(&bob_cert, &alice),
            second: mk(&carol_cert, &alice),
        };
        (evidence, alice_cert, alice.user_id())
    }

    #[test]
    fn genuine_evidence_deanonymizes_correct_user() {
        let mut rng = test_rng(200);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let (evidence, cert, expected_user) = make_evidence(&mut sys, &mut rng);
        let mut t = Transcript::new();
        let user = deanonymize_and_punish(
            &mut sys.ttp,
            &sys.ra,
            &sys.provider,
            &evidence,
            &cert,
            &mut t,
        )
        .unwrap();
        assert_eq!(user, expected_user);
        assert_eq!(sys.ttp.audit_log().len(), 1);
        assert_eq!(sys.ttp.audit_log()[0].reason, "double-transfer");
        // Pseudonym now refused by the provider.
        assert!(matches!(
            sys.provider.verify_pseudonym(&cert, sys.epoch()),
            Err(CoreError::BadPseudonym("pseudonym revoked"))
        ));
    }

    #[test]
    fn revoked_user_cannot_get_new_pseudonyms() {
        let mut rng = test_rng(201);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let (evidence, cert, _) = make_evidence(&mut sys, &mut rng);
        let mut t = Transcript::new();
        deanonymize_and_punish(
            &mut sys.ttp,
            &sys.ra,
            &sys.provider,
            &evidence,
            &cert,
            &mut t,
        )
        .unwrap();
        // mallory's card is revoked; new pseudonym issuance fails. We need
        // the same UserAgent — recreate the flow with a fresh purchase
        // attempt by looking the user up again is impossible (card moved),
        // so verify via the RA's CRL directly.
        assert_eq!(sys.ra.signed_card_crl(0).list.len(), 1);
    }

    #[test]
    fn forged_evidence_rejected_without_deanonymization() {
        let mut rng = test_rng(202);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let (evidence, cert, _) = make_evidence(&mut sys, &mut rng);

        // Tamper: same recipient twice (replay, not abuse).
        let AbuseEvidence::DoubleTransfer { first, .. } = &evidence;
        {
            let replay = AbuseEvidence::DoubleTransfer {
                first: first.clone(),
                second: first.clone(),
            };
            let mut t = Transcript::new();
            let res = deanonymize_and_punish(
                &mut sys.ttp,
                &sys.ra,
                &sys.provider,
                &replay,
                &cert,
                &mut t,
            );
            assert!(matches!(res, Err(CoreError::BadEvidence(_))));
            assert!(sys.ttp.audit_log().is_empty(), "no opening logged");
        }
    }

    #[test]
    fn evidence_against_wrong_cert_rejected() {
        let mut rng = test_rng(203);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let (evidence, _cert, _) = make_evidence(&mut sys, &mut rng);
        // Accuse an innocent user's pseudonym.
        let mut innocent = sys.register_user("innocent", &mut rng).unwrap();
        sys.ensure_pseudonym(&mut innocent, &mut rng).unwrap();
        let innocent_cert = innocent.pseudonym_certs().last().unwrap().clone();
        let mut t = Transcript::new();
        let res = deanonymize_and_punish(
            &mut sys.ttp,
            &sys.ra,
            &sys.provider,
            &evidence,
            &innocent_cert,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::BadEvidence(_))));
        assert!(sys.ttp.audit_log().is_empty());
    }
}
