//! Privacy-preserving license transfer (the paper's T2 figure).
//!
//! The sender proves ownership of the old anonymous license; the provider
//! revokes its unique id (spent-ID store + license CRL) and issues a fresh
//! anonymous license to the recipient's pseudonym. The provider witnesses
//! two pseudonyms; it cannot link either to an identity, and the old
//! license can never be redeemed again.

use crate::audit::{Party, Transcript};
use crate::entities::provider::ContentProvider;
use crate::entities::user::UserAgent;
use crate::ids::LicenseId;
use crate::license::License;
use crate::protocol::messages::{transfer_proof_bytes, TransferRequest, TransferResponse};
use crate::CoreError;
use p2drm_crypto::rng::CryptoRng;
use p2drm_store::ConcurrentKv;

/// Transfers `license_id` from `sender` to `recipient`.
pub fn transfer<B: ConcurrentKv, R: CryptoRng + ?Sized>(
    sender: &mut UserAgent,
    recipient: &mut UserAgent,
    provider: &ContentProvider<B>,
    license_id: LicenseId,
    now_epoch: u32,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<License, CoreError> {
    let owned = sender
        .license(&license_id)
        .ok_or(CoreError::UnknownLicense(license_id))?
        .clone();
    let recipient_cert = recipient
        .current_pseudonym()
        .ok_or(CoreError::BadPseudonym("recipient has no usable pseudonym"))?
        .clone();

    // Sender's card signs the transfer authorization.
    let proof_bytes = transfer_proof_bytes(&license_id, &recipient_cert.pseudonym_id());
    let proof = sender
        .card
        .sign_with_pseudonym(&owned.pseudonym, &proof_bytes)?;

    let request = TransferRequest {
        license: owned.license.clone(),
        recipient_cert,
        proof,
    };
    transcript.record(
        Party::User,
        Party::Provider,
        "transfer-request",
        p2drm_codec::to_bytes(&request),
    );

    let new_license = provider.handle_transfer(&request, now_epoch, rng)?;
    let response = TransferResponse {
        license: new_license.clone(),
    };
    transcript.record(
        Party::Provider,
        Party::User,
        "transfer-response",
        p2drm_codec::to_bytes(&response),
    );

    // Bookkeeping: sender loses the license, recipient gains the new one.
    sender.remove_license(&license_id);
    let recipient_pseudonym = request.recipient_cert.pseudonym_id();
    recipient.note_pseudonym_use();
    recipient.add_license(new_license.clone(), recipient_pseudonym);
    Ok(new_license)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use p2drm_crypto::rng::test_rng;
    use p2drm_pki::cert::KeyId;

    struct Fx {
        sys: System,
        alice: UserAgent,
        bob: UserAgent,
        license: License,
    }

    fn fixture(seed: u64) -> Fx {
        let mut rng = test_rng(seed);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"DATA", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        let mut bob = sys.register_user("bob", &mut rng).unwrap();
        sys.fund(&alice, 1000);
        sys.fund(&bob, 1000);
        let license = sys.purchase(&mut alice, cid, &mut rng).unwrap();
        sys.ensure_pseudonym(&mut bob, &mut rng).unwrap();
        Fx {
            sys,
            alice,
            bob,
            license,
        }
    }

    #[test]
    fn transfer_moves_license_and_rebinds_holder() {
        let mut f = fixture(190);
        let mut rng = test_rng(191);
        let epoch = f.sys.epoch();
        let mut t = Transcript::new();
        let lid = f.license.id();
        let new_license = transfer(
            &mut f.alice,
            &mut f.bob,
            &f.sys.provider,
            lid,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();

        assert_ne!(new_license.id(), lid, "fresh unique id");
        assert!(f.alice.license(&lid).is_none(), "sender lost it");
        assert!(
            f.bob.license(&new_license.id()).is_some(),
            "recipient has it"
        );
        let bob_cert = f.bob.pseudonym_certs().last().unwrap();
        assert_eq!(
            KeyId::of_rsa(&new_license.body.holder),
            bob_cert.pseudonym_id()
        );
        // Transfer count decremented: fast_test template grants 2.
        assert_eq!(new_license.body.rights.transfer, p2drm_rel::Limit::Count(1));
    }

    #[test]
    fn double_transfer_of_same_license_rejected() {
        // The unique-identifier mechanism from the paper: an anonymous
        // license cannot be copied and redeemed twice.
        let mut f = fixture(192);
        let mut rng = test_rng(193);
        let epoch = f.sys.epoch();
        let lid = f.license.id();
        let saved_license = f.license.clone();
        let alice_pseudonym = f.alice.licenses()[0].pseudonym;
        let mut t = Transcript::new();
        transfer(
            &mut f.alice,
            &mut f.bob,
            &f.sys.provider,
            lid,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();

        // Alice "restores from backup" and tries again toward Carol.
        f.alice.add_license(saved_license, alice_pseudonym);
        let mut carol = f.sys.register_user("carol", &mut rng).unwrap();
        f.sys.fund(&carol, 100);
        f.sys.ensure_pseudonym(&mut carol, &mut rng).unwrap();
        let res = transfer(
            &mut f.alice,
            &mut carol,
            &f.sys.provider,
            lid,
            epoch,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::AlreadyRedeemed(_))));
        assert!(carol.licenses().is_empty());
    }

    #[test]
    fn transfer_limit_chain_exhausts() {
        // fast_test grants transfer count=2: A->B->C works, C->D denied.
        let mut f = fixture(194);
        let mut rng = test_rng(195);
        let epoch = f.sys.epoch();
        let mut t = Transcript::new();
        let lid0 = f.license.id();
        let l1 = transfer(
            &mut f.alice,
            &mut f.bob,
            &f.sys.provider,
            lid0,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();

        let mut carol = f.sys.register_user("carol", &mut rng).unwrap();
        f.sys.ensure_pseudonym(&mut carol, &mut rng).unwrap();
        let lid1 = l1.id();
        let l2 = transfer(
            &mut f.bob,
            &mut carol,
            &f.sys.provider,
            lid1,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert_eq!(l2.body.rights.transfer, p2drm_rel::Limit::Count(0));

        let mut dave = f.sys.register_user("dave", &mut rng).unwrap();
        f.sys.ensure_pseudonym(&mut dave, &mut rng).unwrap();
        let lid2 = l2.id();
        let res = transfer(
            &mut carol,
            &mut dave,
            &f.sys.provider,
            lid2,
            epoch,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::Denied(_))));
    }

    #[test]
    fn forged_proof_rejected() {
        // Bob tries to steal Alice's license by submitting a transfer
        // request signed with his own key.
        let f = fixture(196);
        let mut rng = test_rng(197);
        let bob_cert = f.bob.pseudonym_certs().last().unwrap().clone();
        let bob_pseudonym = bob_cert.pseudonym_id();
        let proof_bytes = transfer_proof_bytes(&f.license.id(), &bob_pseudonym);
        let forged = f
            .bob
            .card
            .sign_with_pseudonym(&bob_pseudonym, &proof_bytes)
            .unwrap();
        let req = TransferRequest {
            license: f.license.clone(),
            recipient_cert: bob_cert,
            proof: forged,
        };
        let res = f
            .sys
            .provider
            .handle_transfer(&req, f.sys.epoch(), &mut rng);
        assert!(matches!(res, Err(CoreError::BadProof)));
    }

    #[test]
    fn provider_sees_pseudonyms_not_identities() {
        let mut f = fixture(198);
        let mut rng = test_rng(199);
        let epoch = f.sys.epoch();
        let lid = f.license.id();
        let mut t = Transcript::new();
        transfer(
            &mut f.alice,
            &mut f.bob,
            &f.sys.provider,
            lid,
            epoch,
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert!(!t.scan_for(Party::Provider, f.alice.user_id().as_bytes()));
        assert!(!t.scan_for(Party::Provider, f.bob.user_id().as_bytes()));
        assert_eq!(f.sys.provider.transfer_log().len(), 1);
    }
}
