//! The protocol engines.
//!
//! Each engine orchestrates entity method calls in the order the paper's
//! protocol figures prescribe, and records every message (with exact
//! canonical byte sizes) into a [`crate::Transcript`] — which is how the
//! repository reproduces those figures as executable artifacts (T1/T2 in
//! EXPERIMENTS.md) and how experiment E1 measures message costs.

pub mod access;
pub mod attribute;
pub mod messages;
pub mod pseudonym;
pub mod purchase;
pub mod registration;
pub mod revocation;
pub mod transfer;

pub use access::play;
pub use attribute::obtain_attribute;
pub use pseudonym::{obtain_pseudonym, obtain_pseudonym_cut_and_choose};
pub use purchase::purchase;
pub use registration::register;
pub use revocation::{deanonymize_and_punish, AbuseEvidence};
pub use transfer::transfer;
