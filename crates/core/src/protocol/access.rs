//! Content access on a compliant device.
//!
//! Device checks (license sig, CRLs, holder proof, rights), card key
//! release sealed to the device key, anonymous download, decryption, and
//! rights-state consumption — the full enforcement loop.

use crate::audit::{Party, Transcript};
use crate::entities::device::{challenge_message, CompliantDevice};
use crate::entities::provider::ContentProvider;
use crate::entities::user::UserAgent;
use crate::license::License;
use crate::protocol::messages::{
    DownloadRequest, DownloadResponse, HolderChallenge, HolderProof, KeyRelease,
};
use crate::CoreError;
use p2drm_crypto::rng::CryptoRng;
use p2drm_rel::{AccessRequest, Action};
use p2drm_store::{ConcurrentKv, Kv};

/// Plays `license` on `device`, returning the decrypted content bytes.
pub fn play<BP: ConcurrentKv, SD: Kv, R: CryptoRng + ?Sized>(
    user: &UserAgent,
    device: &mut CompliantDevice<SD>,
    provider: &ContentProvider<BP>,
    license: &License,
    now: u64,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<Vec<u8>, CoreError> {
    let owned = user
        .license(&license.id())
        .ok_or(CoreError::UnknownLicense(license.id()))?;
    let pseudonym_cert = user
        .pseudonym_certs()
        .iter()
        .find(|c| c.pseudonym_id() == owned.pseudonym)
        .ok_or(CoreError::BadPseudonym(
            "certificate for holder key missing",
        ))?;

    // Device -> Card: challenge.
    let nonce = device.make_challenge(rng);
    let challenge = HolderChallenge {
        nonce,
        license_id: license.id(),
    };
    transcript.record(
        Party::Device,
        Party::Card,
        "holder-challenge",
        p2drm_codec::to_bytes(&challenge),
    );

    // Card -> Device: holder proof.
    let proof_sig = user
        .card
        .sign_with_pseudonym(&owned.pseudonym, &challenge_message(&nonce, &license.id()))?;
    let proof = HolderProof {
        signature: proof_sig.clone(),
    };
    transcript.record(
        Party::Card,
        Party::Device,
        "holder-proof",
        p2drm_codec::to_bytes(&proof),
    );

    // Device: full compliance check (no consumption yet).
    let req = AccessRequest::play(now, device.binding_id());
    device.check_access(license, Some(pseudonym_cert), &nonce, &proof_sig, &req)?;

    // Card -> Device: content key, re-sealed to the device key.
    let sealed = user.card.unwrap_and_reseal(
        &owned.pseudonym,
        &license.body.key_envelope,
        device.public_key(),
        rng,
    )?;
    let release = KeyRelease {
        sealed: sealed.clone(),
    };
    transcript.record(
        Party::Card,
        Party::Device,
        "key-release",
        p2drm_codec::to_bytes(&release),
    );
    let content_key = device.open_sealed_key(&sealed)?;

    // Device -> Provider: anonymous download.
    let dl_req = DownloadRequest {
        content_id: license.body.content_id,
    };
    transcript.record(
        Party::Device,
        Party::Provider,
        "download-request",
        p2drm_codec::to_bytes(&dl_req),
    );
    let (content_nonce, ciphertext) = provider.download(&license.body.content_id)?;
    let dl_resp = DownloadResponse {
        nonce: content_nonce,
        ciphertext: ciphertext.clone(),
    };
    transcript.record(
        Party::Provider,
        Party::Device,
        "download-response",
        p2drm_codec::to_bytes(&dl_resp),
    );

    // Decrypt, then consume the play (state persists on the device).
    let payload = crate::content::decrypt_payload(&content_key, &content_nonce, &ciphertext);
    device.consume(license, &req)?;
    Ok(payload)
}

/// Device-side check that a transfer action would be permitted (used by
/// user agents before bothering the provider; enforcement proper happens
/// at the provider).
pub fn can_transfer<SD: Kv>(
    device: &CompliantDevice<SD>,
    license: &License,
    now: u64,
) -> Result<(), CoreError> {
    let state = device.rights_state(license)?;
    let req = AccessRequest::play(now, device.binding_id()).with_action(Action::Transfer);
    match license.body.rights.evaluate(&state, &req) {
        p2drm_rel::Decision::Permit => Ok(()),
        p2drm_rel::Decision::Deny(r) => Err(CoreError::Denied(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use p2drm_crypto::rng::test_rng;

    struct Fx {
        sys: System,
        alice: UserAgent,
        device: CompliantDevice,
        license: License,
    }

    fn fixture(seed: u64) -> Fx {
        let mut rng = test_rng(seed);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("T", 100, b"SECRET AUDIO", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 1000);
        let license = sys.purchase(&mut alice, cid, &mut rng).unwrap();
        let device = sys.register_device(&mut rng).unwrap();
        Fx {
            sys,
            alice,
            device,
            license,
        }
    }

    #[test]
    fn play_decrypts_and_consumes() {
        let mut f = fixture(180);
        let mut rng = test_rng(181);
        let mut t = Transcript::new();
        let payload = play(
            &f.alice,
            &mut f.device,
            &f.sys.provider,
            &f.license,
            10,
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert_eq!(payload, b"SECRET AUDIO");
        assert_eq!(f.device.rights_state(&f.license).unwrap().plays_used, 1);
        assert!(t.message_count() >= 5);
    }

    #[test]
    fn play_count_exhaustion_enforced() {
        // fast_test rights template grants play count=3.
        let mut f = fixture(182);
        let mut rng = test_rng(183);
        for i in 0..3 {
            let mut t = Transcript::new();
            play(
                &f.alice,
                &mut f.device,
                &f.sys.provider,
                &f.license,
                10 + i,
                &mut rng,
                &mut t,
            )
            .unwrap_or_else(|e| panic!("play {i} failed: {e}"));
        }
        let mut t = Transcript::new();
        let res = play(
            &f.alice,
            &mut f.device,
            &f.sys.provider,
            &f.license,
            20,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::Denied(_))));
    }

    #[test]
    fn revoked_license_rejected_after_crl_sync() {
        let mut f = fixture(184);
        let mut rng = test_rng(185);
        f.sys.provider.revoke_license(&f.license.id()).unwrap();
        let lic_crl = f.sys.provider.signed_license_crl(50);
        let pseud_crl = f.sys.provider.signed_pseudonym_crl(50);
        f.device.sync_crls(&lic_crl, &pseud_crl).unwrap();

        let mut t = Transcript::new();
        let res = play(
            &f.alice,
            &mut f.device,
            &f.sys.provider,
            &f.license,
            10,
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::Revoked("license"))));
    }

    #[test]
    fn delta_backlog_applies_as_one_batch() {
        // A device offline for several revocation rounds catches up with
        // a chain of single-step deltas, verified in one batched check.
        let mut f = fixture(188);
        let mut deltas = Vec::new();
        for i in 0..5u8 {
            let since = f.sys.provider.signed_pseudonym_crl(0).sequence;
            f.sys
                .provider
                .revoke_pseudonym(p2drm_pki::cert::digest_id(&[i]))
                .unwrap();
            deltas.push(f.sys.provider.pseudonym_crl_delta(since, 60 + i as u64));
        }
        f.device.apply_pseudonym_crl_deltas(&deltas).unwrap();

        // A tampered delta in the backlog: nothing may be applied.
        let mut f2 = fixture(189);
        let since = f2.sys.provider.signed_pseudonym_crl(0).sequence;
        f2.sys
            .provider
            .revoke_pseudonym(p2drm_pki::cert::digest_id(&[9]))
            .unwrap();
        let mut delta = f2.sys.provider.pseudonym_crl_delta(since, 60);
        delta.added.push(p2drm_pki::cert::digest_id(&[77]));
        assert!(f2.device.apply_pseudonym_crl_deltas(&[delta]).is_err());
    }

    #[test]
    fn foreign_license_rejected() {
        // Bob cannot play Alice's license: his card lacks the pseudonym key.
        let mut f = fixture(186);
        let mut rng = test_rng(187);
        let bob = f.sys.register_user("bob", &mut rng).unwrap();
        f.sys.fund(&bob, 1000);
        let mut t = Transcript::new();
        let res = play(
            &bob,
            &mut f.device,
            &f.sys.provider,
            &f.license,
            10,
            &mut rng,
            &mut t,
        );
        assert!(res.is_err());
    }

    #[test]
    fn device_state_is_per_license() {
        let mut f = fixture(188);
        let mut rng = test_rng(189);
        let cid2 = f.sys.publish_content("T2", 100, b"OTHER", &mut rng);
        f.sys.fund(&f.alice, 1000);
        let lic2 = f.sys.purchase(&mut f.alice, cid2, &mut rng).unwrap();
        let mut t = Transcript::new();
        play(
            &f.alice,
            &mut f.device,
            &f.sys.provider,
            &f.license,
            10,
            &mut rng,
            &mut t,
        )
        .unwrap();
        assert_eq!(f.device.rights_state(&f.license).unwrap().plays_used, 1);
        assert_eq!(f.device.rights_state(&lic2).unwrap().plays_used, 0);
    }
}
