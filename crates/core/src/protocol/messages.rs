//! Typed protocol messages with canonical encodings.
//!
//! The engines move these structs between in-process entities, but always
//! record `p2drm_codec::to_bytes(&msg)` in the transcript — so message
//! sizes in experiment E1 are the real wire sizes a networked deployment
//! would pay. Since the wire API landed ([`crate::service`]), every
//! message also carries a [`Decode`] impl matching its [`Encode`], so the
//! same bytes are *dispatchable*: `p2drm_codec::from_bytes` round-trips
//! each message exactly and rejects trailing garbage.

use crate::ids::{CardId, ContentId, LicenseId};
use crate::license::License;
use p2drm_bignum::UBig;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::envelope::Envelope;
use p2drm_crypto::rsa::RsaSignature;
use p2drm_payment::Coin;
use p2drm_pki::cert::{AttributeCertificate, Certificate, KeyId, PseudonymCertificate};

/// Writes a [`UBig`] as a length-prefixed minimal big-endian byte string.
fn put_ubig(w: &mut Writer, v: &UBig) {
    w.put_bytes(&v.to_bytes_be());
}

/// Reads a [`UBig`] written by [`put_ubig`], rejecting non-minimal
/// encodings (a redundant leading zero would let two byte strings decode
/// to the same value, breaking encode/decode bijectivity). Nested
/// integer fields — signatures, public keys, ElGamal components — apply
/// the same rule through [`Reader::get_int_bytes`] in their own
/// decoders, so whole messages are canonical, not just these fields.
fn get_ubig(r: &mut Reader) -> p2drm_codec::Result<UBig> {
    Ok(UBig::from_bytes_be(r.get_int_bytes()?))
}

/// Card → RA: blind pseudonym certification request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudonymIssueRequest {
    /// The requesting card (the RA's issuance-log handle; the card is
    /// *authenticated* by the certificate below, not by this id).
    pub card_id: CardId,
    /// Card master certificate (authenticates the card).
    pub card_cert: Certificate,
    /// Blinded FDH of the pseudonym certificate body.
    pub blinded: UBig,
    /// Master-key signature over [`pseudonym_auth_bytes`] (binds the
    /// claimed card id to the blinded value).
    pub auth_sig: RsaSignature,
}

impl Encode for PseudonymIssueRequest {
    fn encode(&self, w: &mut Writer) {
        self.card_id.encode(w);
        self.card_cert.encode(w);
        put_ubig(w, &self.blinded);
        self.auth_sig.encode(w);
    }
}

impl Decode for PseudonymIssueRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PseudonymIssueRequest {
            card_id: CardId::decode(r)?,
            card_cert: Certificate::decode(r)?,
            blinded: get_ubig(r)?,
            auth_sig: RsaSignature::decode(r)?,
        })
    }
}

/// RA → Card: the blind signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudonymIssueResponse {
    /// `blinded^d mod n` under the RA blind key.
    pub blind_sig: UBig,
}

impl Encode for PseudonymIssueResponse {
    fn encode(&self, w: &mut Writer) {
        put_ubig(w, &self.blind_sig);
    }
}

impl Decode for PseudonymIssueResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PseudonymIssueResponse {
            blind_sig: get_ubig(r)?,
        })
    }
}

/// Card → RA: blind attribute certification request ("private
/// credentials", e.g. *adult*). Like pseudonym issuance but naming the
/// attribute so the RA can pick its per-attribute blind key and check the
/// card owner's entitlement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeIssueRequest {
    /// The requesting card.
    pub card_id: CardId,
    /// Card master certificate (authenticates the card).
    pub card_cert: Certificate,
    /// Which attribute is being certified.
    pub attribute: String,
    /// Blinded FDH of the attribute certificate body.
    pub blinded: UBig,
    /// Master-key signature over [`attribute_auth_bytes`] (binds the
    /// claimed card id and the attribute name to the blinded value).
    pub auth_sig: RsaSignature,
}

impl Encode for AttributeIssueRequest {
    fn encode(&self, w: &mut Writer) {
        self.card_id.encode(w);
        self.card_cert.encode(w);
        w.put_str(&self.attribute);
        put_ubig(w, &self.blinded);
        self.auth_sig.encode(w);
    }
}

impl Decode for AttributeIssueRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(AttributeIssueRequest {
            card_id: CardId::decode(r)?,
            card_cert: Certificate::decode(r)?,
            attribute: r.get_str()?,
            blinded: get_ubig(r)?,
            auth_sig: RsaSignature::decode(r)?,
        })
    }
}

/// RA → Card: the blind signature under the per-attribute key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeIssueResponse {
    /// `blinded^d mod n` under the RA's key for the requested attribute.
    pub blind_sig: UBig,
}

impl Encode for AttributeIssueResponse {
    fn encode(&self, w: &mut Writer) {
        put_ubig(w, &self.blind_sig);
    }
}

impl Decode for AttributeIssueResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(AttributeIssueResponse {
            blind_sig: get_ubig(r)?,
        })
    }
}

/// User → Provider: anonymous purchase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PurchaseRequest {
    /// Desired content.
    pub content_id: ContentId,
    /// Blind-issued pseudonym certificate (no identity inside).
    pub pseudonym_cert: PseudonymCertificate,
    /// Anonymous payment.
    pub coin: Coin,
    /// Attribute credential, when the content requires one (bound to the
    /// same pseudonym key; still no identity inside).
    pub attribute_cert: Option<AttributeCertificate>,
}

impl Encode for PurchaseRequest {
    fn encode(&self, w: &mut Writer) {
        self.content_id.encode(w);
        self.pseudonym_cert.encode(w);
        self.coin.encode(w);
        w.put_option(&self.attribute_cert);
    }
}

impl Decode for PurchaseRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PurchaseRequest {
            content_id: ContentId::decode(r)?,
            pseudonym_cert: PseudonymCertificate::decode(r)?,
            coin: Coin::decode(r)?,
            attribute_cert: r.get_option()?,
        })
    }
}

/// Provider → User: the license.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PurchaseResponse {
    /// Issued anonymous license.
    pub license: License,
}

impl Encode for PurchaseResponse {
    fn encode(&self, w: &mut Writer) {
        self.license.encode(w);
    }
}

impl Decode for PurchaseResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PurchaseResponse {
            license: License::decode(r)?,
        })
    }
}

/// User → Provider: anonymous content download (no auth needed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DownloadRequest {
    /// Which item.
    pub content_id: ContentId,
}

impl Encode for DownloadRequest {
    fn encode(&self, w: &mut Writer) {
        self.content_id.encode(w);
    }
}

impl Decode for DownloadRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(DownloadRequest {
            content_id: ContentId::decode(r)?,
        })
    }
}

/// Provider → User: protected payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DownloadResponse {
    /// Content nonce.
    pub nonce: [u8; 12],
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
}

impl Encode for DownloadResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.nonce);
        w.put_bytes(&self.ciphertext);
    }
}

impl Decode for DownloadResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(DownloadResponse {
            nonce: r.get_raw(12)?.try_into().expect("fixed width"),
            ciphertext: r.get_bytes_owned()?,
        })
    }
}

/// Device → Card: holder challenge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HolderChallenge {
    /// Fresh nonce.
    pub nonce: [u8; 32],
    /// License being exercised.
    pub license_id: LicenseId,
}

impl Encode for HolderChallenge {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.nonce);
        self.license_id.encode(w);
    }
}

impl Decode for HolderChallenge {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(HolderChallenge {
            nonce: r.get_raw(32)?.try_into().expect("fixed width"),
            license_id: LicenseId::decode(r)?,
        })
    }
}

/// Card → Device: challenge answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HolderProof {
    /// Signature by the license's holder key over the challenge message.
    pub signature: RsaSignature,
}

impl Encode for HolderProof {
    fn encode(&self, w: &mut Writer) {
        self.signature.encode(w);
    }
}

impl Decode for HolderProof {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(HolderProof {
            signature: RsaSignature::decode(r)?,
        })
    }
}

/// Card → Device: content key sealed to the device key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRelease {
    /// The re-sealed envelope.
    pub sealed: Envelope,
}

impl Encode for KeyRelease {
    fn encode(&self, w: &mut Writer) {
        self.sealed.encode(w);
    }
}

impl Decode for KeyRelease {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(KeyRelease {
            sealed: Envelope::decode(r)?,
        })
    }
}

/// Holder → Provider: privacy-preserving transfer request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferRequest {
    /// The license being given up.
    pub license: License,
    /// Recipient's pseudonym certificate.
    pub recipient_cert: PseudonymCertificate,
    /// Holder-key signature over [`transfer_proof_bytes`].
    pub proof: RsaSignature,
}

impl Encode for TransferRequest {
    fn encode(&self, w: &mut Writer) {
        self.license.encode(w);
        self.recipient_cert.encode(w);
        self.proof.encode(w);
    }
}

impl Decode for TransferRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(TransferRequest {
            license: License::decode(r)?,
            recipient_cert: PseudonymCertificate::decode(r)?,
            proof: RsaSignature::decode(r)?,
        })
    }
}

/// The bytes a holder signs to authorize a transfer.
pub fn transfer_proof_bytes(lid: &LicenseId, recipient: &KeyId) -> Vec<u8> {
    let mut w = Writer::with_capacity(64);
    w.put_raw(b"p2drm-transfer-proof");
    lid.encode(&mut w);
    recipient.encode(&mut w);
    w.into_bytes()
}

/// The bytes a card signs to authenticate a [`PseudonymIssueRequest`]:
/// a domain tag, the claimed card id and the blinded value. Covering the
/// card id (not just the blinded value) means the RA-verified signature
/// binds the request fields — a request whose `card_id` was swapped for
/// another card's no longer verifies under the authenticated master key.
pub fn pseudonym_auth_bytes(card_id: &CardId, blinded: &UBig) -> Vec<u8> {
    let mut w = Writer::with_capacity(96);
    w.put_raw(b"p2drm-pseudonym-auth");
    card_id.encode(&mut w);
    put_ubig(&mut w, blinded);
    w.into_bytes()
}

/// The bytes a card signs to authenticate an [`AttributeIssueRequest`]:
/// domain tag, claimed card id, the named attribute and the blinded
/// value — so neither the card id nor the attribute can be swapped
/// without breaking the signature.
pub fn attribute_auth_bytes(card_id: &CardId, attribute: &str, blinded: &UBig) -> Vec<u8> {
    let mut w = Writer::with_capacity(96);
    w.put_raw(b"p2drm-attribute-auth");
    card_id.encode(&mut w);
    w.put_str(attribute);
    put_ubig(&mut w, blinded);
    w.into_bytes()
}

/// The bytes a card signs to authenticate a cut-and-choose candidate
/// set: domain tag, claimed card id, then the length-prefixed candidates
/// (count first, so two sets cannot collide by concatenation).
pub fn cut_choose_auth_bytes(card_id: &CardId, blinded_values: &[UBig]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 * (blinded_values.len() + 1));
    w.put_raw(b"p2drm-cut-choose-auth");
    card_id.encode(&mut w);
    w.put_varint(blinded_values.len() as u64);
    for b in blinded_values {
        put_ubig(&mut w, b);
    }
    w.into_bytes()
}

/// Provider → Recipient: the fresh license.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferResponse {
    /// License reissued to the recipient pseudonym.
    pub license: License,
}

impl Encode for TransferResponse {
    fn encode(&self, w: &mut Writer) {
        self.license.encode(w);
    }
}

impl Decode for TransferResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(TransferResponse {
            license: License::decode(r)?,
        })
    }
}

/// Device → Provider: CRL sync request, stating the sequences the device
/// already holds (0 = none; the service currently always answers with the
/// full signed lists, the sequences let a future delta path plug in
/// without a wire change).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrlSyncRequest {
    /// License-CRL sequence the device holds.
    pub license_seq: u64,
    /// Pseudonym-CRL sequence the device holds.
    pub pseudonym_seq: u64,
}

impl Encode for CrlSyncRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.license_seq);
        w.put_u64(self.pseudonym_seq);
    }
}

impl Decode for CrlSyncRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(CrlSyncRequest {
            license_seq: r.get_u64()?,
            pseudonym_seq: r.get_u64()?,
        })
    }
}

/// CRL sync message (provider → device).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrlSync {
    /// License CRL.
    pub license_crl: p2drm_pki::crl::SignedCrl,
    /// Pseudonym CRL.
    pub pseudonym_crl: p2drm_pki::crl::SignedCrl,
}

impl Encode for CrlSync {
    fn encode(&self, w: &mut Writer) {
        self.license_crl.encode(w);
        self.pseudonym_crl.encode(w);
    }
}

impl Decode for CrlSync {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(CrlSync {
            license_crl: p2drm_pki::crl::SignedCrl::decode(r)?,
            pseudonym_crl: p2drm_pki::crl::SignedCrl::decode(r)?,
        })
    }
}

/// User → Provider: anonymous catalog lookup — one item by id, or the
/// whole listing when `content_id` is `None`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogRequest {
    /// Item to look up; `None` lists everything.
    pub content_id: Option<ContentId>,
}

impl Encode for CatalogRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_option(&self.content_id);
    }
}

impl Decode for CatalogRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(CatalogRequest {
            content_id: r.get_option()?,
        })
    }
}

/// Provider → User: public catalog metadata (id-sorted for listings).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogResponse {
    /// The matching items (one for an id lookup, all for a listing).
    pub items: Vec<crate::content::ContentMeta>,
}

impl Encode for CatalogResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.items);
    }
}

impl Decode for CatalogResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(CatalogResponse {
            items: r.get_seq()?,
        })
    }
}

/// User → Provider: authoritative status of a license id (the
/// reconciliation query for ambiguous transfer outcomes — license ids
/// are 16 unguessable random bytes, so only a party to the license can
/// ask about it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LicenseStatusRequest {
    /// The id being queried.
    pub license_id: LicenseId,
}

impl Encode for LicenseStatusRequest {
    fn encode(&self, w: &mut Writer) {
        self.license_id.encode(w);
    }
}

impl Decode for LicenseStatusRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(LicenseStatusRequest {
            license_id: LicenseId::decode(r)?,
        })
    }
}

/// The provider's authoritative view of one license id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LicenseStatus {
    /// Never issued by this provider.
    Unknown,
    /// Issued and still exercisable; `holder` is the pseudonym key id it
    /// is bound to.
    Active {
        /// Current holder pseudonym key id.
        holder: KeyId,
    },
    /// Consumed by a committed transfer (a successor license exists
    /// under the recipient pseudonym).
    Transferred,
    /// Revoked without a transfer (abuse handling, de-anonymization).
    Revoked,
}

impl Encode for LicenseStatus {
    fn encode(&self, w: &mut Writer) {
        match self {
            LicenseStatus::Unknown => w.put_u8(0),
            LicenseStatus::Active { holder } => {
                w.put_u8(1);
                holder.encode(w);
            }
            LicenseStatus::Transferred => w.put_u8(2),
            LicenseStatus::Revoked => w.put_u8(3),
        }
    }
}

impl Decode for LicenseStatus {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(match r.get_u8()? {
            0 => LicenseStatus::Unknown,
            1 => LicenseStatus::Active {
                holder: KeyId::decode(r)?,
            },
            2 => LicenseStatus::Transferred,
            3 => LicenseStatus::Revoked,
            tag => return Err(p2drm_codec::CodecError::BadDiscriminant(tag)),
        })
    }
}

/// Provider → User: the status answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LicenseStatusResponse {
    /// Authoritative status of the queried id.
    pub status: LicenseStatus,
}

impl Encode for LicenseStatusResponse {
    fn encode(&self, w: &mut Writer) {
        self.status.encode(w);
    }
}

impl Decode for LicenseStatusResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(LicenseStatusResponse {
            status: LicenseStatus::decode(r)?,
        })
    }
}

/// Operator → Provider: request the unified metrics snapshot. Empty
/// payload — the op is gated server-side by
/// [`ProviderConfig::metrics_dump`](crate::entities::provider::ProviderConfig::metrics_dump)
/// and answers [`ApiErrorCode::ServiceUnavailable`](crate::service::ApiErrorCode::ServiceUnavailable)
/// when disabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsDumpRequest {}

impl Encode for MetricsDumpRequest {
    fn encode(&self, _w: &mut Writer) {}
}

impl Decode for MetricsDumpRequest {
    fn decode(_r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(MetricsDumpRequest {})
    }
}

/// Wire form of a histogram summary. Carried with integer nanoseconds
/// only (the mean is rounded), so encode/decode round-trips exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricSummary {
    /// Sample count.
    pub count: u64,
    /// Mean in nanoseconds, rounded to the nearest integer.
    pub mean_ns: u64,
    /// Median (bucket resolution).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Minimum.
    pub min_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl Encode for MetricSummary {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.count);
        w.put_varint(self.mean_ns);
        w.put_varint(self.p50_ns);
        w.put_varint(self.p90_ns);
        w.put_varint(self.p99_ns);
        w.put_varint(self.min_ns);
        w.put_varint(self.max_ns);
    }
}

impl Decode for MetricSummary {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(MetricSummary {
            count: r.get_varint()?,
            mean_ns: r.get_varint()?,
            p50_ns: r.get_varint()?,
            p90_ns: r.get_varint()?,
            p99_ns: r.get_varint()?,
            min_ns: r.get_varint()?,
            max_ns: r.get_varint()?,
        })
    }
}

/// One named metric in a [`MetricsDumpResponse`]. Gauges travel as the
/// two's-complement `u64` of their signed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricEntry {
    /// Monotonic counter.
    Counter {
        /// Metric name.
        name: String,
        /// Count.
        value: u64,
    },
    /// Signed level.
    Gauge {
        /// Metric name.
        name: String,
        /// Signed value (encoded two's-complement).
        value: i64,
    },
    /// Latency distribution.
    Histogram {
        /// Metric name.
        name: String,
        /// Percentile summary.
        summary: MetricSummary,
    },
}

impl MetricEntry {
    /// The metric's name, whatever its kind.
    pub fn name(&self) -> &str {
        match self {
            MetricEntry::Counter { name, .. }
            | MetricEntry::Gauge { name, .. }
            | MetricEntry::Histogram { name, .. } => name,
        }
    }
}

impl Encode for MetricEntry {
    fn encode(&self, w: &mut Writer) {
        match self {
            MetricEntry::Counter { name, value } => {
                w.put_u8(0);
                w.put_str(name);
                w.put_varint(*value);
            }
            MetricEntry::Gauge { name, value } => {
                w.put_u8(1);
                w.put_str(name);
                w.put_u64(*value as u64);
            }
            MetricEntry::Histogram { name, summary } => {
                w.put_u8(2);
                w.put_str(name);
                summary.encode(w);
            }
        }
    }
}

impl Decode for MetricEntry {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(match r.get_u8()? {
            0 => MetricEntry::Counter {
                name: r.get_str()?,
                value: r.get_varint()?,
            },
            1 => MetricEntry::Gauge {
                name: r.get_str()?,
                value: r.get_u64()? as i64,
            },
            2 => MetricEntry::Histogram {
                name: r.get_str()?,
                summary: MetricSummary::decode(r)?,
            },
            tag => return Err(p2drm_codec::CodecError::BadDiscriminant(tag)),
        })
    }
}

/// One stage of a traced request span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStage {
    /// Stage label (a static string server-side).
    pub label: String,
    /// Stage duration in nanoseconds (0 for flag markers).
    pub ns: u64,
}

impl Encode for SpanStage {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.label);
        w.put_varint(self.ns);
    }
}

impl Decode for SpanStage {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(SpanStage {
            label: r.get_str()?,
            ns: r.get_varint()?,
        })
    }
}

/// One traced request span: correlation id, op label and latency —
/// durations and static labels only, never request contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEntry {
    /// The request's wire correlation id (client-chosen routing data).
    pub corr_id: u64,
    /// Op label.
    pub op: String,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Whether the span crossed the slow threshold.
    pub slow: bool,
    /// Stage breakdown (empty unless `slow`).
    pub stages: Vec<SpanStage>,
}

impl Encode for SpanEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.corr_id);
        w.put_str(&self.op);
        w.put_varint(self.total_ns);
        w.put_bool(self.slow);
        w.put_seq(&self.stages);
    }
}

impl Decode for SpanEntry {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(SpanEntry {
            corr_id: r.get_u64()?,
            op: r.get_str()?,
            total_ns: r.get_varint()?,
            slow: r.get_bool()?,
            stages: r.get_seq()?,
        })
    }
}

/// Provider → Operator: the unified observability snapshot — every
/// registered metric (sorted by name) plus the recent traced spans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsDumpResponse {
    /// All metrics, sorted ascending by name.
    pub metrics: Vec<MetricEntry>,
    /// Recent request spans, oldest first (empty unless tracing is on).
    pub spans: Vec<SpanEntry>,
}

impl Encode for MetricsDumpResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.metrics);
        w.put_seq(&self.spans);
    }
}

impl Decode for MetricsDumpResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(MetricsDumpResponse {
            metrics: r.get_seq()?,
            spans: r.get_seq()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_codec::CodecError;

    #[test]
    fn transfer_proof_bytes_bind_both_parties() {
        let lid_a = LicenseId::from_label("a");
        let lid_b = LicenseId::from_label("b");
        let k1 = p2drm_pki::cert::digest_id(b"k1");
        let k2 = p2drm_pki::cert::digest_id(b"k2");
        assert_eq!(
            transfer_proof_bytes(&lid_a, &k1),
            transfer_proof_bytes(&lid_a, &k1)
        );
        assert_ne!(
            transfer_proof_bytes(&lid_a, &k1),
            transfer_proof_bytes(&lid_b, &k1)
        );
        assert_ne!(
            transfer_proof_bytes(&lid_a, &k1),
            transfer_proof_bytes(&lid_a, &k2)
        );
    }

    #[test]
    fn metrics_dump_roundtrip() {
        let empty = MetricsDumpRequest {};
        let bytes = p2drm_codec::to_bytes(&empty);
        assert!(bytes.is_empty(), "request payload is empty");
        assert_eq!(
            p2drm_codec::from_bytes::<MetricsDumpRequest>(&bytes).unwrap(),
            empty
        );

        let msg = MetricsDumpResponse {
            metrics: vec![
                MetricEntry::Counter {
                    name: "net_accepted".to_string(),
                    value: 17,
                },
                MetricEntry::Gauge {
                    name: "net_active".to_string(),
                    value: -2,
                },
                MetricEntry::Histogram {
                    name: "service_purchase_ns".to_string(),
                    summary: MetricSummary {
                        count: 3,
                        mean_ns: 812,
                        p50_ns: 768,
                        p90_ns: 1536,
                        p99_ns: 1536,
                        min_ns: 700,
                        max_ns: 1600,
                    },
                },
            ],
            spans: vec![SpanEntry {
                corr_id: 42,
                op: "purchase".to_string(),
                total_ns: 1_500_000,
                slow: true,
                stages: vec![
                    SpanStage {
                        label: "valve_wait".to_string(),
                        ns: 50_000,
                    },
                    SpanStage {
                        label: "vcache_miss".to_string(),
                        ns: 0,
                    },
                ],
            }],
        };
        let bytes = p2drm_codec::to_bytes(&msg);
        let back: MetricsDumpResponse = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn metrics_dump_request_rejects_trailing_bytes() {
        assert!(p2drm_codec::from_bytes::<MetricsDumpRequest>(&[0u8]).is_err());
    }

    #[test]
    fn download_response_roundtrip() {
        let msg = DownloadResponse {
            nonce: [7; 12],
            ciphertext: vec![1, 2, 3],
        };
        let bytes = p2drm_codec::to_bytes(&msg);
        let back: DownloadResponse = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn ubig_field_decode_rejects_leading_zero() {
        // A PseudonymIssueResponse whose blind_sig bytes carry a
        // redundant leading zero must not decode: it would re-encode to
        // different (shorter) bytes.
        let msg = PseudonymIssueResponse {
            blind_sig: UBig::from_u64(0x1234),
        };
        let good = p2drm_codec::to_bytes(&msg);
        assert_eq!(
            p2drm_codec::from_bytes::<PseudonymIssueResponse>(&good).unwrap(),
            msg
        );
        // Rebuild the same value with a padded length prefix + zero byte.
        let mut w = Writer::new();
        w.put_bytes(&[0x00, 0x12, 0x34]);
        assert_eq!(
            p2drm_codec::from_bytes::<PseudonymIssueResponse>(&w.into_bytes()),
            Err(CodecError::NonMinimalInt)
        );
    }

    #[test]
    fn nested_signature_fields_are_not_malleable() {
        // The canonicality rule reaches *nested* integers too: a message
        // whose embedded RsaSignature bytes carry a redundant leading
        // zero must be rejected, or two distinct byte strings would
        // decode to the same request.
        let sig = RsaSignature::from_ubig(p2drm_bignum::UBig::from_u64(0x1234));
        let good = p2drm_codec::to_bytes(&HolderProof {
            signature: sig.clone(),
        });
        assert_eq!(
            p2drm_codec::from_bytes::<HolderProof>(&good)
                .expect("canonical bytes decode")
                .signature,
            sig
        );
        let mut w = Writer::new();
        w.put_bytes(&[0x00, 0x12, 0x34]); // same integer, padded
        assert_eq!(
            p2drm_codec::from_bytes::<HolderProof>(&w.into_bytes()),
            Err(CodecError::NonMinimalInt)
        );
    }
}
