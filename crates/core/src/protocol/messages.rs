//! Typed protocol messages with canonical encodings.
//!
//! The engines move these structs between in-process entities, but always
//! record `p2drm_codec::to_bytes(&msg)` in the transcript — so message
//! sizes in experiment E1 are the real wire sizes a networked deployment
//! would pay.

use crate::ids::{ContentId, LicenseId};
use crate::license::License;
use p2drm_bignum::UBig;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::envelope::Envelope;
use p2drm_crypto::rsa::RsaSignature;
use p2drm_payment::Coin;
use p2drm_pki::cert::{AttributeCertificate, Certificate, KeyId, PseudonymCertificate};

/// Card → RA: blind pseudonym certification request.
#[derive(Clone, Debug)]
pub struct PseudonymIssueRequest {
    /// Card master certificate (authenticates the card).
    pub card_cert: Certificate,
    /// Blinded FDH of the pseudonym certificate body.
    pub blinded: UBig,
    /// Master-key signature over the blinded value.
    pub auth_sig: RsaSignature,
}

impl Encode for PseudonymIssueRequest {
    fn encode(&self, w: &mut Writer) {
        self.card_cert.encode(w);
        w.put_bytes(&self.blinded.to_bytes_be());
        self.auth_sig.encode(w);
    }
}

/// RA → Card: the blind signature.
#[derive(Clone, Debug)]
pub struct PseudonymIssueResponse {
    /// `blinded^d mod n` under the RA blind key.
    pub blind_sig: UBig,
}

impl Encode for PseudonymIssueResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.blind_sig.to_bytes_be());
    }
}

/// User → Provider: anonymous purchase.
#[derive(Clone, Debug)]
pub struct PurchaseRequest {
    /// Desired content.
    pub content_id: ContentId,
    /// Blind-issued pseudonym certificate (no identity inside).
    pub pseudonym_cert: PseudonymCertificate,
    /// Anonymous payment.
    pub coin: Coin,
    /// Attribute credential, when the content requires one (bound to the
    /// same pseudonym key; still no identity inside).
    pub attribute_cert: Option<AttributeCertificate>,
}

impl Encode for PurchaseRequest {
    fn encode(&self, w: &mut Writer) {
        self.content_id.encode(w);
        self.pseudonym_cert.encode(w);
        self.coin.encode(w);
        w.put_option(&self.attribute_cert);
    }
}

/// Provider → User: the license.
#[derive(Clone, Debug)]
pub struct PurchaseResponse {
    /// Issued anonymous license.
    pub license: License,
}

impl Encode for PurchaseResponse {
    fn encode(&self, w: &mut Writer) {
        self.license.encode(w);
    }
}

/// User → Provider: anonymous content download (no auth needed).
#[derive(Clone, Debug)]
pub struct DownloadRequest {
    /// Which item.
    pub content_id: ContentId,
}

impl Encode for DownloadRequest {
    fn encode(&self, w: &mut Writer) {
        self.content_id.encode(w);
    }
}

/// Provider → User: protected payload.
#[derive(Clone, Debug)]
pub struct DownloadResponse {
    /// Content nonce.
    pub nonce: [u8; 12],
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
}

impl Encode for DownloadResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.nonce);
        w.put_bytes(&self.ciphertext);
    }
}

/// Device → Card: holder challenge.
#[derive(Clone, Debug)]
pub struct HolderChallenge {
    /// Fresh nonce.
    pub nonce: [u8; 32],
    /// License being exercised.
    pub license_id: LicenseId,
}

impl Encode for HolderChallenge {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.nonce);
        self.license_id.encode(w);
    }
}

/// Card → Device: challenge answer.
#[derive(Clone, Debug)]
pub struct HolderProof {
    /// Signature by the license's holder key over the challenge message.
    pub signature: RsaSignature,
}

impl Encode for HolderProof {
    fn encode(&self, w: &mut Writer) {
        self.signature.encode(w);
    }
}

/// Card → Device: content key sealed to the device key.
#[derive(Clone, Debug)]
pub struct KeyRelease {
    /// The re-sealed envelope.
    pub sealed: Envelope,
}

impl Encode for KeyRelease {
    fn encode(&self, w: &mut Writer) {
        self.sealed.encode(w);
    }
}

/// Holder → Provider: privacy-preserving transfer request.
#[derive(Clone, Debug)]
pub struct TransferRequest {
    /// The license being given up.
    pub license: License,
    /// Recipient's pseudonym certificate.
    pub recipient_cert: PseudonymCertificate,
    /// Holder-key signature over [`transfer_proof_bytes`].
    pub proof: RsaSignature,
}

impl Encode for TransferRequest {
    fn encode(&self, w: &mut Writer) {
        self.license.encode(w);
        self.recipient_cert.encode(w);
        self.proof.encode(w);
    }
}

/// The bytes a holder signs to authorize a transfer.
pub fn transfer_proof_bytes(lid: &LicenseId, recipient: &KeyId) -> Vec<u8> {
    let mut w = Writer::with_capacity(64);
    w.put_raw(b"p2drm-transfer-proof");
    lid.encode(&mut w);
    recipient.encode(&mut w);
    w.into_bytes()
}

/// Provider → Recipient: the fresh license.
#[derive(Clone, Debug)]
pub struct TransferResponse {
    /// License reissued to the recipient pseudonym.
    pub license: License,
}

impl Encode for TransferResponse {
    fn encode(&self, w: &mut Writer) {
        self.license.encode(w);
    }
}

/// CRL sync message (provider → device).
#[derive(Clone, Debug)]
pub struct CrlSync {
    /// License CRL.
    pub license_crl: p2drm_pki::crl::SignedCrl,
    /// Pseudonym CRL.
    pub pseudonym_crl: p2drm_pki::crl::SignedCrl,
}

impl Encode for CrlSync {
    fn encode(&self, w: &mut Writer) {
        self.license_crl.encode(w);
        self.pseudonym_crl.encode(w);
    }
}

// Decode impls for the messages that cross trust boundaries in a real
// deployment (round-trip tested; the others are engine-internal).

impl Decode for PurchaseRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PurchaseRequest {
            content_id: ContentId::decode(r)?,
            pseudonym_cert: PseudonymCertificate::decode(r)?,
            coin: Coin::decode(r)?,
            attribute_cert: r.get_option()?,
        })
    }
}

impl Decode for TransferRequest {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(TransferRequest {
            license: License::decode(r)?,
            recipient_cert: PseudonymCertificate::decode(r)?,
            proof: RsaSignature::decode(r)?,
        })
    }
}

impl Decode for DownloadResponse {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(DownloadResponse {
            nonce: r.get_raw(12)?.try_into().expect("fixed width"),
            ciphertext: r.get_bytes_owned()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_proof_bytes_bind_both_parties() {
        let lid_a = LicenseId::from_label("a");
        let lid_b = LicenseId::from_label("b");
        let k1 = p2drm_pki::cert::digest_id(b"k1");
        let k2 = p2drm_pki::cert::digest_id(b"k2");
        assert_eq!(
            transfer_proof_bytes(&lid_a, &k1),
            transfer_proof_bytes(&lid_a, &k1)
        );
        assert_ne!(
            transfer_proof_bytes(&lid_a, &k1),
            transfer_proof_bytes(&lid_b, &k1)
        );
        assert_ne!(
            transfer_proof_bytes(&lid_a, &k1),
            transfer_proof_bytes(&lid_a, &k2)
        );
    }

    #[test]
    fn download_response_roundtrip() {
        let msg = DownloadResponse {
            nonce: [7; 12],
            ciphertext: vec![1, 2, 3],
        };
        let bytes = p2drm_codec::to_bytes(&msg);
        let back: DownloadResponse = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back.nonce, msg.nonce);
        assert_eq!(back.ciphertext, msg.ciphertext);
    }
}
