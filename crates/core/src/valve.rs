//! Provider-side verification valve: a bounded staging queue that groups
//! signature verifications arriving concurrently into one batched check.
//!
//! Under load the provider's worker threads all hit
//! [`verify_pseudonym`](crate::entities::provider::ContentProvider::verify_pseudonym)
//! with *different* certificates (the verification cache only helps with
//! repeats), every one an independent RSA check under the **same** RA blind
//! key — exactly the shape batch verification
//! ([`p2drm_crypto::batch`]) amortizes. The valve makes the batches:
//! cache-missing verifications stage in a small queue; the queue flushes
//! when it reaches the configured batch size or when a caller has waited
//! out a ~50µs deadline, whichever comes first. Requests in a flush are
//! verified with one screened batch and each caller reads its own
//! verdict — an invalid certificate in the group is isolated by the batch
//! verifier's binary-split fallback and only that caller fails.
//!
//! The API is two-phase so callers can overlap the batch-fill window with
//! their own independent work: [`VerifyValve::stage`] enqueues and returns
//! a [`VerdictTicket`]; [`VerifyValve::wait`] collects the verdict. The
//! purchase path stages the pseudonym check, then does its catalog lookup,
//! attribute check and coin signature verification, and only then waits —
//! by which time another worker has usually flushed the batch and the
//! verdict is already posted.
//!
//! There is no flusher thread and no condvar parking: whichever arrival
//! fills the batch drains and flushes it, and a waiting caller polls its
//! verdict slot, yielding the CPU ([`std::thread::yield_now`]) between
//! checks — on a loaded server the yield hands the core to the very
//! threads that will fill the batch, without paying futex park/wake round
//! trips for every staged item. A caller whose deadline expires drains and
//! flushes whatever is staged itself, so a single-threaded caller pays at
//! most the deadline in added latency — and only when the valve is
//! enabled; the provider leaves the valve off (`valve_batch = 0`) unless
//! configured.
//!
//! The valve sits *behind* the verification cache: only cache misses pay
//! for batch membership, and successes are inserted into the cache by the
//! caller as usual.

use p2drm_crypto::batch;
use p2drm_crypto::rsa::{RsaPublicKey, RsaSignature};
use p2drm_obs::AtomicHistogram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Monotonic valve statistics, exposed beside the verification-cache
/// counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValveCounters {
    /// Verifications that went through a multi-item batched check.
    pub batched: u64,
    /// Flushes forced by a caller's deadline expiring (the batch filled
    /// before the deadline otherwise).
    pub timer_flushes: u64,
    /// Flushes triggered by the queue reaching the batch size.
    pub size_flushes: u64,
    /// Combined checks spent isolating failures after a batch rejected
    /// (the batch verifier's binary-split fallback).
    pub fallback_splits: u64,
}

const VERDICT_PENDING: u8 = 0;
const VERDICT_VALID: u8 = 1;
const VERDICT_INVALID: u8 = 2;

/// Handle for one staged verification; redeem it with
/// [`VerifyValve::wait`]. Dropping the ticket without waiting is safe —
/// the staged item is still verified by whichever flush picks it up, and
/// the verdict is simply discarded.
pub struct VerdictTicket {
    slot: Arc<AtomicU8>,
    staged_at: Instant,
}

/// One staged verification: FDH message bytes + signature, plus the slot
/// the flusher posts the verdict to.
struct Pending {
    message: Vec<u8>,
    signature: RsaSignature,
    slot: Arc<AtomicU8>,
    staged_at: Instant,
}

/// The valve. One per provider (all staged signatures are checked under
/// the key fixed at construction); all methods take `&self`.
pub struct VerifyValve {
    key: RsaPublicKey,
    batch: usize,
    deadline: Duration,
    pending: Mutex<Vec<Pending>>,
    batched: AtomicU64,
    timer_flushes: AtomicU64,
    size_flushes: AtomicU64,
    fallback_splits: AtomicU64,
    /// Stage→verdict latency per staged item (what a caller's
    /// [`VerifyValve::wait`] actually costs it, deadline included).
    wait_ns: AtomicHistogram,
    /// Stage-of-oldest-item→flush latency per flush: how long a batch
    /// took to fill (or time out) before verification started.
    fill_ns: AtomicHistogram,
}

impl VerifyValve {
    /// Valve verifying FDH signatures under `key`, flushing at `batch`
    /// staged items or after `deadline`, whichever comes first. `batch`
    /// is clamped to at least 2 (a one-item "batch" is just an individual
    /// verification with extra steps — callers disable the valve
    /// instead).
    pub fn new(key: RsaPublicKey, batch: usize, deadline: Duration) -> Self {
        VerifyValve {
            key,
            batch: batch.max(2),
            deadline,
            pending: Mutex::new(Vec::new()),
            batched: AtomicU64::new(0),
            timer_flushes: AtomicU64::new(0),
            size_flushes: AtomicU64::new(0),
            fallback_splits: AtomicU64::new(0),
            wait_ns: AtomicHistogram::new(),
            fill_ns: AtomicHistogram::new(),
        }
    }

    /// Stages one FDH check (`sig^e ≟ FDH(message)`); if this arrival
    /// fills the batch, the whole batch is verified before returning (the
    /// caller's own verdict included). Returns immediately otherwise —
    /// do independent work, then redeem the ticket with [`Self::wait`].
    pub fn stage(&self, message: Vec<u8>, signature: RsaSignature) -> VerdictTicket {
        let slot = Arc::new(AtomicU8::new(VERDICT_PENDING));
        let staged_at = Instant::now();
        let mut pending = self.pending.lock();
        pending.push(Pending {
            message,
            signature,
            slot: Arc::clone(&slot),
            staged_at,
        });
        if pending.len() >= self.batch {
            let items = std::mem::take(&mut *pending);
            drop(pending);
            self.size_flushes.fetch_add(1, Ordering::Relaxed);
            self.flush(items);
        }
        VerdictTicket { slot, staged_at }
    }

    /// Blocks until the ticket's verdict is available — at most roughly
    /// the configured deadline (measured from staging) plus one batched
    /// verification. Waiting polls and yields rather than parking; when
    /// the deadline passes with no verdict, this caller drains and
    /// flushes whatever is staged — its own item included — itself.
    pub fn wait(&self, ticket: VerdictTicket) -> bool {
        let deadline = ticket.staged_at + self.deadline;
        let mut timed_out = false;
        loop {
            match ticket.slot.load(Ordering::Acquire) {
                VERDICT_PENDING => {}
                v => {
                    self.wait_ns.record_duration(ticket.staged_at.elapsed());
                    return v == VERDICT_VALID;
                }
            }
            if !timed_out && Instant::now() >= deadline {
                timed_out = true;
                let items = std::mem::take(&mut *self.pending.lock());
                // Empty means another thread drained our batch and is
                // computing it right now: keep yielding for the verdict.
                if !items.is_empty() {
                    self.timer_flushes.fetch_add(1, Ordering::Relaxed);
                    self.flush(items);
                    continue;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Stage-and-wait in one call (no overlapped work).
    pub fn verify_fdh(&self, message: Vec<u8>, signature: RsaSignature) -> bool {
        let ticket = self.stage(message, signature);
        self.wait(ticket)
    }

    /// Runs the batched verification for a drained queue and posts the
    /// per-item verdicts.
    fn flush(&self, items: Vec<Pending>) {
        if let Some(earliest) = items.iter().map(|p| p.staged_at).min() {
            self.fill_ns.record_duration(earliest.elapsed());
        }
        let verdicts: Vec<bool> = if items.len() == 1 {
            vec![
                // lint: allow(panic, this branch only runs when items.len() == 1)
                p2drm_crypto::blind::verify_fdh(&self.key, &items[0].message, &items[0].signature)
                    .is_ok(),
            ]
        } else {
            self.batched
                .fetch_add(items.len() as u64, Ordering::Relaxed);
            let refs: Vec<(&[u8], &RsaSignature)> = items
                .iter()
                .map(|p| (p.message.as_slice(), &p.signature))
                .collect();
            let report = batch::screen_fdh_batch(&self.key, &refs);
            self.fallback_splits
                .fetch_add(report.splits as u64, Ordering::Relaxed);
            (0..items.len())
                .map(|i| !report.rejected.contains(&i))
                .collect()
        };
        for (item, ok) in items.iter().zip(verdicts) {
            let v = if ok { VERDICT_VALID } else { VERDICT_INVALID };
            item.slot.store(v, Ordering::Release);
        }
    }

    /// Stage→verdict latency histogram (per staged item).
    pub fn wait_hist(&self) -> &AtomicHistogram {
        &self.wait_ns
    }

    /// Batch fill latency histogram (per flush).
    pub fn fill_hist(&self) -> &AtomicHistogram {
        &self.fill_ns
    }

    /// Snapshot of the monotonic counters.
    pub fn counters(&self) -> ValveCounters {
        ValveCounters {
            batched: self.batched.load(Ordering::Relaxed),
            timer_flushes: self.timer_flushes.load(Ordering::Relaxed),
            size_flushes: self.size_flushes.load(Ordering::Relaxed),
            fallback_splits: self.fallback_splits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;
    use p2drm_crypto::rsa::{fdh, RsaKeyPair};

    fn fdh_sig(kp: &RsaKeyPair, message: &[u8]) -> RsaSignature {
        let h = fdh(message, kp.public().modulus_len());
        RsaSignature::from_ubig(kp.raw_private(&h))
    }

    #[test]
    fn single_caller_flushes_on_timer() {
        let mut rng = test_rng(1);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let valve = VerifyValve::new(kp.public().clone(), 8, Duration::from_micros(100));
        let ok = valve.verify_fdh(b"solo".to_vec(), fdh_sig(&kp, b"solo"));
        assert!(ok);
        let c = valve.counters();
        assert_eq!(c.timer_flushes, 1);
        assert_eq!(c.size_flushes, 0);
        assert_eq!(c.batched, 0, "a lone item is verified individually");
    }

    #[test]
    fn staged_ticket_can_overlap_work_before_waiting() {
        let mut rng = test_rng(3);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let valve = VerifyValve::new(kp.public().clone(), 2, Duration::from_micros(50));
        let t1 = valve.stage(b"one".to_vec(), fdh_sig(&kp, b"one"));
        // Second stage fills the batch of 2 and flushes inline, so both
        // verdicts are posted before either wait().
        let t2 = valve.stage(b"two".to_vec(), fdh_sig(&kp, b"broken"));
        assert!(valve.wait(t1));
        assert!(!valve.wait(t2));
        assert_eq!(valve.counters().size_flushes, 1);
        assert_eq!(valve.counters().batched, 2);
    }

    #[test]
    fn concurrent_callers_batch_and_bad_item_is_isolated() {
        let mut rng = test_rng(2);
        let kp = std::sync::Arc::new(RsaKeyPair::generate(512, &mut rng));
        // Generous deadline so all threads stage before any timer flush:
        // the batch must fill and size-flush.
        let valve = std::sync::Arc::new(VerifyValve::new(
            kp.public().clone(),
            4,
            Duration::from_millis(500),
        ));
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let valve = std::sync::Arc::clone(&valve);
            let kp = std::sync::Arc::clone(&kp);
            handles.push(std::thread::spawn(move || {
                let msg = format!("cert {i}").into_bytes();
                let sig = if i == 2 {
                    fdh_sig(&kp, b"forged") // wrong message
                } else {
                    fdh_sig(&kp, &msg)
                };
                (i, valve.verify_fdh(msg, sig))
            }));
        }
        let mut results: Vec<(u32, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(
            results,
            vec![(0, true), (1, true), (2, false), (3, true)],
            "only the forged item fails"
        );
        let c = valve.counters();
        assert_eq!(c.size_flushes, 1);
        assert_eq!(c.batched, 4);
        assert!(c.fallback_splits > 0, "bad item went through the splitter");
    }
}
