//! Content packaging: every catalog item is encrypted once under its own
//! ChaCha20 content key; licenses carry that key sealed to the holder.

use crate::ids::ContentId;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::chacha20;
use p2drm_crypto::rng::CryptoRng;
use std::collections::HashMap;

/// Public catalog metadata for one item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentMeta {
    /// Catalog id.
    pub id: ContentId,
    /// Display title.
    pub title: String,
    /// Price in minor units.
    pub price: u64,
    /// Ciphertext size (what a client downloads).
    pub size: usize,
    /// Attribute buyers must prove (e.g. "adult"); None = unrestricted.
    pub required_attribute: Option<String>,
}

/// A packaged item: metadata + ciphertext + (provider-held) content key.
pub struct PackagedContent {
    /// Public metadata.
    pub meta: ContentMeta,
    /// ChaCha20 content key — **provider secret**, leaves only inside
    /// license envelopes.
    pub key: [u8; 32],
    /// Per-item nonce.
    pub nonce: [u8; 12],
    /// The protected payload.
    pub ciphertext: Vec<u8>,
}

impl Encode for ContentMeta {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_str(&self.title);
        w.put_u64(self.price);
        w.put_u64(self.size as u64);
        w.put_option(&self.required_attribute);
    }
}

impl Decode for ContentMeta {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(ContentMeta {
            id: ContentId::decode(r)?,
            title: r.get_str()?,
            price: r.get_u64()?,
            size: r.get_u64()? as usize,
            required_attribute: r.get_option()?,
        })
    }
}

impl Encode for PackagedContent {
    /// Serializes metadata **and the content key** — provider-side
    /// persistence only; never put these bytes on the wire.
    fn encode(&self, w: &mut Writer) {
        self.meta.encode(w);
        w.put_raw(&self.key);
        w.put_raw(&self.nonce);
        w.put_bytes(&self.ciphertext);
    }
}

impl Decode for PackagedContent {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PackagedContent {
            meta: ContentMeta::decode(r)?,
            key: r.get_raw(32)?.try_into().expect("fixed width"),
            nonce: r.get_raw(12)?.try_into().expect("fixed width"),
            ciphertext: r.get_bytes_owned()?,
        })
    }
}

/// The provider's content catalog.
#[derive(Default)]
pub struct ContentCatalog {
    items: HashMap<ContentId, PackagedContent>,
}

impl ContentCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encrypts and stores `payload`, returning its id.
    pub fn publish<R: CryptoRng + ?Sized>(
        &mut self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rng: &mut R,
    ) -> ContentId {
        self.publish_with_requirement(title, price, payload, None, rng)
    }

    /// Like [`ContentCatalog::publish`], with an attribute requirement
    /// buyers must prove (age rating etc.).
    pub fn publish_with_requirement<R: CryptoRng + ?Sized>(
        &mut self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        required_attribute: Option<String>,
        rng: &mut R,
    ) -> ContentId {
        let id = ContentId::random(rng);
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let ciphertext = chacha20::encrypt(&key, &nonce, payload);
        self.items.insert(
            id,
            PackagedContent {
                meta: ContentMeta {
                    id,
                    title: title.into(),
                    price,
                    size: ciphertext.len(),
                    required_attribute,
                },
                key,
                nonce,
                ciphertext,
            },
        );
        id
    }

    /// Looks up an item.
    pub fn get(&self, id: &ContentId) -> Option<&PackagedContent> {
        self.items.get(id)
    }

    /// Restores a previously persisted item (provider resume path).
    pub fn restore(&mut self, item: PackagedContent) {
        self.items.insert(item.meta.id, item);
    }

    /// Public metadata listing (what an anonymous browser sees).
    pub fn list(&self) -> Vec<&ContentMeta> {
        let mut metas: Vec<_> = self.items.values().map(|p| &p.meta).collect();
        metas.sort_by_key(|a| a.id);
        metas
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Decrypts a downloaded payload with an unwrapped content key — the final
/// step a compliant device performs after license checks pass.
pub fn decrypt_payload(key: &[u8; 32], nonce: &[u8; 12], ciphertext: &[u8]) -> Vec<u8> {
    chacha20::decrypt(key, nonce, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn publish_and_decrypt() {
        let mut rng = test_rng(120);
        let mut cat = ContentCatalog::new();
        let id = cat.publish("Song A", 100, b"PCM DATA", &mut rng);
        let item = cat.get(&id).unwrap();
        assert_ne!(item.ciphertext, b"PCM DATA");
        assert_eq!(
            decrypt_payload(&item.key, &item.nonce, &item.ciphertext),
            b"PCM DATA"
        );
    }

    #[test]
    fn items_have_distinct_keys() {
        let mut rng = test_rng(121);
        let mut cat = ContentCatalog::new();
        let a = cat.publish("A", 1, b"xxxx", &mut rng);
        let b = cat.publish("B", 2, b"xxxx", &mut rng);
        assert_ne!(cat.get(&a).unwrap().key, cat.get(&b).unwrap().key);
        assert_ne!(
            cat.get(&a).unwrap().ciphertext,
            cat.get(&b).unwrap().ciphertext
        );
    }

    #[test]
    fn listing_is_sorted_and_metadata_only() {
        let mut rng = test_rng(122);
        let mut cat = ContentCatalog::new();
        for i in 0..5 {
            cat.publish(format!("T{i}"), i, b"data", &mut rng);
        }
        let list = cat.list();
        assert_eq!(list.len(), 5);
        assert!(list.windows(2).all(|w| w[0].id <= w[1].id));
        assert_eq!(cat.len(), 5);
    }

    #[test]
    fn missing_item_is_none() {
        let cat = ContentCatalog::new();
        assert!(cat.get(&ContentId::from_label("nope")).is_none());
        assert!(cat.is_empty());
    }
}
