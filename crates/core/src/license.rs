//! Licenses: the paper's **anonymous license** — a unique id, the content
//! reference, a rights expression, the *holder pseudonym key* (never an
//! identity), and the content key sealed to that key.

use crate::ids::{ContentId, LicenseId};
use crate::CoreError;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::envelope::Envelope;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use p2drm_rel::Rights;

/// The signed body of a license.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LicenseBody {
    /// Unique license id (the single-redemption handle).
    pub license_id: LicenseId,
    /// The content this license unlocks.
    pub content_id: ContentId,
    /// Holder public key: a pseudonym key in the private flow, an identity
    /// key in the baseline flow. **No other holder information exists.**
    pub holder: RsaPublicKey,
    /// What the holder may do.
    pub rights: Rights,
    /// Content key sealed to `holder`.
    pub key_envelope: Envelope,
    /// Issuance epoch (coarse bucket, mirrors pseudonym certificates).
    pub issued_epoch: u32,
}

impl LicenseBody {
    /// Canonical bytes the provider signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        p2drm_codec::to_bytes(self)
    }
}

impl Encode for LicenseBody {
    fn encode(&self, w: &mut Writer) {
        self.license_id.encode(w);
        self.content_id.encode(w);
        self.holder.encode(w);
        self.rights.encode(w);
        self.key_envelope.encode(w);
        w.put_u32(self.issued_epoch);
    }
}

impl Decode for LicenseBody {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(LicenseBody {
            license_id: LicenseId::decode(r)?,
            content_id: ContentId::decode(r)?,
            holder: RsaPublicKey::decode(r)?,
            rights: Rights::decode(r)?,
            key_envelope: Envelope::decode(r)?,
            issued_epoch: r.get_u32()?,
        })
    }
}

/// A provider-signed license.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct License {
    /// Signed body.
    pub body: LicenseBody,
    /// Provider signature over [`LicenseBody::signing_bytes`].
    pub signature: RsaSignature,
}

impl License {
    /// Issues (signs) a license body with the provider key.
    pub fn issue(body: LicenseBody, provider_key: &RsaKeyPair) -> License {
        let signature = provider_key.sign(&body.signing_bytes());
        License { body, signature }
    }

    /// Verifies the provider signature.
    pub fn verify(&self, provider_key: &RsaPublicKey) -> Result<(), CoreError> {
        provider_key
            .verify(&self.body.signing_bytes(), &self.signature)
            .map_err(|_| CoreError::BadLicense("provider signature invalid"))
    }

    /// The license id.
    pub fn id(&self) -> LicenseId {
        self.body.license_id
    }

    /// Canonical encoded size in bytes (storage/wire cost, experiment E6).
    pub fn encoded_len(&self) -> usize {
        p2drm_codec::to_bytes(self).len()
    }
}

impl Encode for License {
    fn encode(&self, w: &mut Writer) {
        self.body.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for License {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(License {
            body: LicenseBody::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::envelope;
    use p2drm_crypto::rng::test_rng;
    use p2drm_rel::Limit;

    fn make_license(seed: u64) -> (License, RsaKeyPair, RsaKeyPair) {
        let mut rng = test_rng(seed);
        let provider = RsaKeyPair::generate(512, &mut rng);
        let holder = RsaKeyPair::generate(512, &mut rng);
        let env = envelope::seal(holder.public(), &[0x11; 32], &mut rng);
        let body = LicenseBody {
            license_id: LicenseId::random(&mut rng),
            content_id: ContentId::random(&mut rng),
            holder: holder.public().clone(),
            rights: Rights::builder().play(Limit::Count(3)).build(),
            key_envelope: env,
            issued_epoch: 5,
        };
        (License::issue(body, &provider), provider, holder)
    }

    #[test]
    fn issue_verify_roundtrip() {
        let (lic, provider, holder) = make_license(130);
        assert!(lic.verify(provider.public()).is_ok());
        // Holder can open the envelope; provider key cannot.
        let key = envelope::open(&holder, &lic.body.key_envelope).unwrap();
        assert_eq!(key, vec![0x11; 32]);
        assert!(envelope::open(&provider, &lic.body.key_envelope).is_err());
    }

    #[test]
    fn tampered_license_rejected() {
        let (lic, provider, _) = make_license(131);
        let mut bad = lic.clone();
        bad.body.rights = Rights::builder().play(Limit::Unlimited).build();
        assert!(bad.verify(provider.public()).is_err());

        let mut bad = lic.clone();
        bad.body.issued_epoch += 1;
        assert!(bad.verify(provider.public()).is_err());
    }

    #[test]
    fn wrong_provider_key_rejected() {
        let (lic, _, _) = make_license(132);
        let other = RsaKeyPair::generate(512, &mut test_rng(133));
        assert!(lic.verify(other.public()).is_err());
    }

    #[test]
    fn codec_roundtrip_and_size() {
        let (lic, provider, _) = make_license(134);
        let bytes = p2drm_codec::to_bytes(&lic);
        assert_eq!(bytes.len(), lic.encoded_len());
        let back: License = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, lic);
        assert!(back.verify(provider.public()).is_ok());
    }

    #[test]
    fn license_contains_no_identity_fields() {
        // Structural privacy: the license encodes exactly the fields above;
        // scanning for a user-identity needle must fail by construction.
        let (lic, _, _) = make_license(135);
        let bytes = p2drm_codec::to_bytes(&lic);
        let user_needle = crate::ids::UserId::from_label("victim");
        assert!(!bytes
            .windows(user_needle.0.len())
            .any(|w| w == user_needle.0));
    }
}
