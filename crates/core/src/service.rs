//! The versioned wire API: a byte-level request/response layer over the
//! provider and registration authority.
//!
//! Everything below [`crate::system::System`] is an in-process Rust call,
//! but the paper's protocols are *message exchanges*: a user's device and
//! the provider/RA interoperate only through serialized messages, never
//! shared memory. This module makes that boundary real. Every operation a
//! remote party can invoke travels as one tagged envelope:
//!
//! | offset | field | encoding |
//! |---|---|---|
//! | 0 | version | `u8`, currently [`WIRE_VERSION`] = 1 |
//! | 1 | op-code | `u8`, see [`OpCode`] |
//! | 2 | correlation id | `u64` little-endian, echoed verbatim in the response |
//! | 10 | payload | the op's canonical message encoding, consuming the rest exactly |
//!
//! Requests decode with strict [`p2drm_codec::from_bytes`] semantics:
//! trailing bytes, non-canonical varints and redundant integer padding are
//! all rejected. A malformed, truncated or unknown-version request yields
//! a well-formed [`WireResponse::Error`] — never a panic.
//!
//! # Error taxonomy
//!
//! The workspace's ten per-crate error enums are unified behind the
//! stable numeric [`ApiErrorCode`] carried in error responses, so
//! internal refactors cannot leak unstably onto the wire:
//!
//! | range | meaning |
//! |---|---|
//! | 1–9 | envelope: malformed, unsupported version, unknown op, unavailable |
//! | 10–19 | cryptography (`CryptoError`) |
//! | 20–29 | certificates and chains (`PkiError`, `ChainError`) |
//! | 30–39 | payment (`PaymentError`) |
//! | 40–49 | storage (`StoreError`) |
//! | 50–59 | licenses and rights (`BadLicense`, `AlreadyRedeemed`, REL) |
//! | 60–69 | identity and proofs (revocation, pseudonyms, cards, evidence) |
//! | 70–79 | lookups (unknown content / license) |
//! | 80–89 | authorized-domain extension (`DomainError`) |
//! | 90–98 | big-number arithmetic (`BigError`) |
//! | 99 | internal |
//!
//! # Serving and calling
//!
//! [`ProviderService`] is the server: one entry point,
//! [`ProviderService::handle`]`(&self, &[u8]) -> Vec<u8>`, shared by N
//! threads — it decodes, dispatches onto the `&self` concurrent
//! [`ContentProvider`]/[`RegistrationAuthority`] paths (generic over the
//! store backend, so it serves `MemBackend` and `WalShardedKv` alike) and
//! encodes the reply. [`WireClient`] is the typed caller: it frames
//! envelopes over a [`Transport`] (an in-proc [`Loopback`] is provided)
//! and runs the multi-round flows as explicit session state machines
//! ([`PurchaseSession`], [`PseudonymIssueSession`],
//! [`AttributeIssueSession`], [`PlaySession`]).
//!
//! ```
//! use p2drm_core::service::{Loopback, WireClient};
//! use p2drm_core::system::{System, SystemConfig};
//! use p2drm_crypto::rng::test_rng;
//!
//! let mut rng = test_rng(7);
//! let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
//! let cid = sys.publish_content("Track", 100, b"bits", &mut rng);
//! let mut alice = sys.register_user("alice", &mut rng).unwrap();
//! sys.fund(&alice, 500);
//! let mut device = sys.register_device(&mut rng).unwrap();
//!
//! let service = sys.wire_service(0xC0FFEE);
//! let mut client = WireClient::new(Loopback::new(&service));
//! client
//!     .obtain_pseudonym(&mut alice, sys.ra.blind_public(), sys.ttp.escrow_key(), &mut rng)
//!     .unwrap();
//! let license = client.purchase(&mut alice, &sys.mint, cid, &mut rng).unwrap();
//! let audio = client.play(&alice, &mut device, &license, &mut rng).unwrap();
//! assert_eq!(audio, b"bits");
//! ```

use crate::content::ContentMeta;
use crate::entities::device::{challenge_message, CompliantDevice};
use crate::entities::provider::{ContentProvider, MemBackend};
use crate::entities::ra::RegistrationAuthority;
use crate::entities::user::UserAgent;
use crate::ids::{ContentId, LicenseId};
use crate::license::License;
use crate::protocol::messages::{
    transfer_proof_bytes, AttributeIssueRequest, AttributeIssueResponse, CatalogRequest,
    CatalogResponse, CrlSync, CrlSyncRequest, DownloadRequest, DownloadResponse, LicenseStatus,
    LicenseStatusRequest, LicenseStatusResponse, MetricEntry, MetricSummary, MetricsDumpRequest,
    MetricsDumpResponse, PseudonymIssueRequest, PseudonymIssueResponse, PurchaseRequest,
    PurchaseResponse, SpanEntry, SpanStage, TransferRequest, TransferResponse,
};
use crate::CoreError;
use p2drm_codec::{CodecError, Decode, Encode, Reader, Writer};
use p2drm_crypto::blind::Blinded;
use p2drm_crypto::elgamal::ElGamalPublicKey;
use p2drm_crypto::rng::ChaChaRng;
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::RsaPublicKey;
use p2drm_obs::{
    AtomicHistogram, Counter, MetricSource, MetricValue, Registry, Snapshot, Summary, Timer,
    TraceConfig, Tracer,
};
use p2drm_payment::Mint;
use p2drm_pki::cert::{AttributeCertBody, KeyId, PseudonymCertBody, PseudonymCertificate};
use p2drm_rel::AccessRequest;
use p2drm_store::{ConcurrentKv, Kv};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crate::retry::{Admit, CircuitBreaker, Idempotency, RetryBudget, RetryPolicy};

/// The wire format version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Envelope header length: version + op-code + correlation id.
pub const ENVELOPE_HEADER_LEN: usize = 10;

// ---------------------------------------------------------------------------
// Op-codes
// ---------------------------------------------------------------------------

/// Operation tag carried in envelope byte 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Error response (responses only; rejected in requests).
    Error = 0,
    /// Anonymous purchase.
    Purchase = 1,
    /// Anonymous content download (the remote half of play).
    Download = 2,
    /// Privacy-preserving transfer.
    Transfer = 3,
    /// Blind pseudonym issuance (RA).
    PseudonymIssue = 4,
    /// Blind attribute issuance (RA).
    AttributeIssue = 5,
    /// CRL synchronization.
    CrlSync = 6,
    /// Catalog lookup / listing.
    Catalog = 7,
    /// License-status query (transfer reconciliation).
    LicenseStatus = 8,
    /// Unified metrics snapshot (operator op; off unless the provider
    /// opts in via `ProviderConfig::metrics_dump`).
    MetricsDump = 9,
}

/// Number of defined op-codes (contiguous from 0).
pub(crate) const OPCODE_COUNT: usize = 10;

impl OpCode {
    /// The wire byte.
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Option<OpCode> {
        Some(match b {
            0 => OpCode::Error,
            1 => OpCode::Purchase,
            2 => OpCode::Download,
            3 => OpCode::Transfer,
            4 => OpCode::PseudonymIssue,
            5 => OpCode::AttributeIssue,
            6 => OpCode::CrlSync,
            7 => OpCode::Catalog,
            8 => OpCode::LicenseStatus,
            9 => OpCode::MetricsDump,
            _ => return None,
        })
    }

    /// Short static label for diagnostics, span names and metric names.
    pub fn label(self) -> &'static str {
        match self {
            OpCode::Error => "error",
            OpCode::Purchase => "purchase",
            OpCode::Download => "download",
            OpCode::Transfer => "transfer",
            OpCode::PseudonymIssue => "pseudonym-issue",
            OpCode::AttributeIssue => "attribute-issue",
            OpCode::CrlSync => "crl-sync",
            OpCode::Catalog => "catalog",
            OpCode::LicenseStatus => "license-status",
            OpCode::MetricsDump => "metrics-dump",
        }
    }

    /// Retry classification for the recovery policy (see
    /// [`crate::retry::Idempotency`]).
    ///
    /// Reads ([`OpCode::Catalog`], [`OpCode::Download`],
    /// [`OpCode::LicenseStatus`], [`OpCode::CrlSync`],
    /// [`OpCode::MetricsDump`]) and the blind-issuance rounds (re-running
    /// a round with the same blinded value yields the same signature) are
    /// retry-safe. [`OpCode::Purchase`] deposits a coin and
    /// [`OpCode::Transfer`] retires a license — blindly re-sending after
    /// an ambiguous failure can double-commit, so those must go through
    /// coin parking / `LicenseStatus` reconciliation.
    pub fn idempotency(self) -> crate::retry::Idempotency {
        use crate::retry::Idempotency;
        match self {
            OpCode::Purchase | OpCode::Transfer => Idempotency::MustReconcile,
            OpCode::Error
            | OpCode::Download
            | OpCode::PseudonymIssue
            | OpCode::AttributeIssue
            | OpCode::CrlSync
            | OpCode::Catalog
            | OpCode::LicenseStatus
            | OpCode::MetricsDump => Idempotency::Safe,
        }
    }
}

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// Stable numeric error taxonomy carried in [`ApiError`] responses.
///
/// Codes are part of the wire contract: a variant's number never changes,
/// and new codes extend the table. Unknown codes received from a newer
/// peer decode to [`ApiErrorCode::Unrecognized`], preserving the raw
/// number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApiErrorCode {
    /// Request bytes failed to decode (truncated, trailing garbage,
    /// non-canonical encoding).
    MalformedRequest,
    /// Envelope version byte unknown to this endpoint.
    UnsupportedVersion,
    /// Envelope op-code unknown (or `Error` in a request).
    UnknownOpcode,
    /// The op exists but this endpoint does not serve it (e.g. no RA
    /// attached).
    ServiceUnavailable,
    /// Cryptographic failure other than a bad signature.
    Crypto,
    /// A signature failed to verify.
    BadSignature,
    /// Certificate invalid (issuer, structure, key type).
    Certificate,
    /// Certificate outside its validity window.
    CertificateExpired,
    /// Certificate chain failed to verify.
    ChainInvalid,
    /// Payment failure other than the two named below.
    Payment,
    /// Coin or balance does not cover the price.
    InsufficientFunds,
    /// Coin serial already deposited.
    DoubleSpend,
    /// Server-side storage failure.
    Storage,
    /// License signature or structure invalid.
    BadLicense,
    /// License id already redeemed/transferred (the paper's unique-ID
    /// rule).
    AlreadyRedeemed,
    /// Rights denied the requested action.
    RightsDenied,
    /// Rights expression failed to parse.
    RightsParse,
    /// Entity revoked (card, pseudonym, license).
    Revoked,
    /// Pseudonym certificate rejected.
    BadPseudonym,
    /// Holder/authentication proof failed.
    BadProof,
    /// Smart card refused (budget, entitlement, unknown card).
    CardRefused,
    /// Evidence failed verification at the TTP.
    BadEvidence,
    /// Unknown content id.
    UnknownContent,
    /// Unknown license id.
    UnknownLicense,
    /// Authorized-domain failure.
    Domain,
    /// Big-number arithmetic failure.
    Arithmetic,
    /// Unclassified server-side failure.
    Internal,
    /// A code minted by a newer peer; the raw number is preserved.
    Unrecognized(u16),
}

impl ApiErrorCode {
    /// The stable numeric code.
    pub fn code(self) -> u16 {
        match self {
            ApiErrorCode::MalformedRequest => 1,
            ApiErrorCode::UnsupportedVersion => 2,
            ApiErrorCode::UnknownOpcode => 3,
            ApiErrorCode::ServiceUnavailable => 4,
            ApiErrorCode::Crypto => 10,
            ApiErrorCode::BadSignature => 11,
            ApiErrorCode::Certificate => 20,
            ApiErrorCode::CertificateExpired => 21,
            ApiErrorCode::ChainInvalid => 22,
            ApiErrorCode::Payment => 30,
            ApiErrorCode::InsufficientFunds => 31,
            ApiErrorCode::DoubleSpend => 32,
            ApiErrorCode::Storage => 40,
            ApiErrorCode::BadLicense => 50,
            ApiErrorCode::AlreadyRedeemed => 51,
            ApiErrorCode::RightsDenied => 52,
            ApiErrorCode::RightsParse => 53,
            ApiErrorCode::Revoked => 60,
            ApiErrorCode::BadPseudonym => 61,
            ApiErrorCode::BadProof => 62,
            ApiErrorCode::CardRefused => 63,
            ApiErrorCode::BadEvidence => 64,
            ApiErrorCode::UnknownContent => 70,
            ApiErrorCode::UnknownLicense => 71,
            ApiErrorCode::Domain => 80,
            ApiErrorCode::Arithmetic => 90,
            ApiErrorCode::Internal => 99,
            ApiErrorCode::Unrecognized(raw) => raw,
        }
    }

    /// Maps a wire number back to its variant (unknown numbers are
    /// preserved as [`ApiErrorCode::Unrecognized`]).
    pub fn from_code(code: u16) -> ApiErrorCode {
        match code {
            1 => ApiErrorCode::MalformedRequest,
            2 => ApiErrorCode::UnsupportedVersion,
            3 => ApiErrorCode::UnknownOpcode,
            4 => ApiErrorCode::ServiceUnavailable,
            10 => ApiErrorCode::Crypto,
            11 => ApiErrorCode::BadSignature,
            20 => ApiErrorCode::Certificate,
            21 => ApiErrorCode::CertificateExpired,
            22 => ApiErrorCode::ChainInvalid,
            30 => ApiErrorCode::Payment,
            31 => ApiErrorCode::InsufficientFunds,
            32 => ApiErrorCode::DoubleSpend,
            40 => ApiErrorCode::Storage,
            50 => ApiErrorCode::BadLicense,
            51 => ApiErrorCode::AlreadyRedeemed,
            52 => ApiErrorCode::RightsDenied,
            53 => ApiErrorCode::RightsParse,
            60 => ApiErrorCode::Revoked,
            61 => ApiErrorCode::BadPseudonym,
            62 => ApiErrorCode::BadProof,
            63 => ApiErrorCode::CardRefused,
            64 => ApiErrorCode::BadEvidence,
            70 => ApiErrorCode::UnknownContent,
            71 => ApiErrorCode::UnknownLicense,
            80 => ApiErrorCode::Domain,
            90 => ApiErrorCode::Arithmetic,
            99 => ApiErrorCode::Internal,
            raw => ApiErrorCode::Unrecognized(raw),
        }
    }

    /// Whether this code belongs to the payment range (a failed purchase
    /// whose coin was consumed or rejected by the mint — clients must not
    /// return such a coin to the wallet).
    pub fn is_payment(self) -> bool {
        (30..40).contains(&self.code())
    }
}

impl std::fmt::Display for ApiErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}({})", self, self.code())
    }
}

impl From<&CodecError> for ApiErrorCode {
    fn from(_: &CodecError) -> Self {
        ApiErrorCode::MalformedRequest
    }
}

impl From<&p2drm_crypto::CryptoError> for ApiErrorCode {
    fn from(e: &p2drm_crypto::CryptoError) -> Self {
        match e {
            p2drm_crypto::CryptoError::BadSignature => ApiErrorCode::BadSignature,
            _ => ApiErrorCode::Crypto,
        }
    }
}

impl From<&p2drm_pki::PkiError> for ApiErrorCode {
    fn from(e: &p2drm_pki::PkiError) -> Self {
        match e {
            p2drm_pki::PkiError::Expired { .. } => ApiErrorCode::CertificateExpired,
            _ => ApiErrorCode::Certificate,
        }
    }
}

impl From<&p2drm_pki::ChainError> for ApiErrorCode {
    fn from(e: &p2drm_pki::ChainError) -> Self {
        match e {
            p2drm_pki::ChainError::Revoked { .. } => ApiErrorCode::Revoked,
            _ => ApiErrorCode::ChainInvalid,
        }
    }
}

impl From<&p2drm_payment::PaymentError> for ApiErrorCode {
    fn from(e: &p2drm_payment::PaymentError) -> Self {
        match e {
            p2drm_payment::PaymentError::InsufficientFunds { .. } => {
                ApiErrorCode::InsufficientFunds
            }
            p2drm_payment::PaymentError::DoubleSpend => ApiErrorCode::DoubleSpend,
            _ => ApiErrorCode::Payment,
        }
    }
}

impl From<&p2drm_store::StoreError> for ApiErrorCode {
    fn from(_: &p2drm_store::StoreError) -> Self {
        ApiErrorCode::Storage
    }
}

impl From<&p2drm_rel::ParseError> for ApiErrorCode {
    fn from(_: &p2drm_rel::ParseError) -> Self {
        ApiErrorCode::RightsParse
    }
}

impl From<&p2drm_bignum::BigError> for ApiErrorCode {
    fn from(_: &p2drm_bignum::BigError) -> Self {
        ApiErrorCode::Arithmetic
    }
}

impl From<&CoreError> for ApiErrorCode {
    fn from(e: &CoreError) -> Self {
        match e {
            CoreError::Pki(e) => e.into(),
            CoreError::Chain(e) => e.into(),
            CoreError::Crypto(e) => e.into(),
            CoreError::Payment(e) => e.into(),
            CoreError::Store(e) => e.into(),
            CoreError::BadLicense(_) => ApiErrorCode::BadLicense,
            CoreError::AlreadyRedeemed(_) => ApiErrorCode::AlreadyRedeemed,
            CoreError::Denied(_) => ApiErrorCode::RightsDenied,
            CoreError::Revoked(_) => ApiErrorCode::Revoked,
            CoreError::BadPseudonym(_) => ApiErrorCode::BadPseudonym,
            CoreError::BadProof => ApiErrorCode::BadProof,
            CoreError::UnknownContent(_) => ApiErrorCode::UnknownContent,
            CoreError::UnknownLicense(_) => ApiErrorCode::UnknownLicense,
            CoreError::BadEvidence(_) => ApiErrorCode::BadEvidence,
            CoreError::Card(_) => ApiErrorCode::CardRefused,
        }
    }
}

/// The wire error response: a stable code plus an advisory human-readable
/// detail (the detail is **not** part of the contract; only the code is).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// Stable numeric classification.
    pub code: ApiErrorCode,
    /// Free-text diagnosis (advisory only; may change between builds).
    pub detail: String,
    /// Backpressure hint in milliseconds: how long the sender suggests
    /// the client wait before retrying. `0` means no hint. Busy/shed
    /// responses derive this from current load, turning load shedding
    /// into cooperative degradation; recovery policies take
    /// `max(backoff, retry_after_ms)` as the pause floor.
    pub retry_after_ms: u32,
}

impl ApiError {
    /// Builds an error response (no retry hint).
    pub fn new(code: ApiErrorCode, detail: impl Into<String>) -> Self {
        ApiError {
            code,
            detail: detail.into(),
            retry_after_ms: 0,
        }
    }

    /// Attaches a backpressure hint (see [`ApiError::retry_after_ms`]).
    pub fn with_retry_after(mut self, ms: u32) -> Self {
        self.retry_after_ms = ms;
        self
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ApiError {}

impl From<CoreError> for ApiError {
    fn from(e: CoreError) -> Self {
        ApiError {
            code: (&e).into(),
            detail: e.to_string(),
            retry_after_ms: 0,
        }
    }
}

impl Encode for ApiError {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.code.code() as u32);
        w.put_str(&self.detail);
        w.put_u32(self.retry_after_ms);
    }
}

impl Decode for ApiError {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        let raw = r.get_u32()?;
        if raw > u16::MAX as u32 {
            return Err(CodecError::BadLength(raw as u64));
        }
        Ok(ApiError {
            code: ApiErrorCode::from_code(raw as u16),
            detail: r.get_str()?,
            retry_after_ms: r.get_u32()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Request / response bodies and envelopes
// ---------------------------------------------------------------------------

/// Every operation a remote party can request, as a typed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRequest {
    /// Anonymous purchase.
    Purchase(PurchaseRequest),
    /// Anonymous download (the remote half of play).
    Download(DownloadRequest),
    /// Privacy-preserving transfer.
    Transfer(TransferRequest),
    /// Blind pseudonym issuance.
    PseudonymIssue(PseudonymIssueRequest),
    /// Blind attribute issuance.
    AttributeIssue(AttributeIssueRequest),
    /// CRL synchronization.
    CrlSync(CrlSyncRequest),
    /// Catalog lookup / listing.
    Catalog(CatalogRequest),
    /// License-status query (transfer reconciliation).
    LicenseStatus(LicenseStatusRequest),
    /// Unified metrics snapshot (operator op, opt-in).
    MetricsDump(MetricsDumpRequest),
}

impl WireRequest {
    /// The envelope op-code for this body.
    pub fn opcode(&self) -> OpCode {
        match self {
            WireRequest::Purchase(_) => OpCode::Purchase,
            WireRequest::Download(_) => OpCode::Download,
            WireRequest::Transfer(_) => OpCode::Transfer,
            WireRequest::PseudonymIssue(_) => OpCode::PseudonymIssue,
            WireRequest::AttributeIssue(_) => OpCode::AttributeIssue,
            WireRequest::CrlSync(_) => OpCode::CrlSync,
            WireRequest::Catalog(_) => OpCode::Catalog,
            WireRequest::LicenseStatus(_) => OpCode::LicenseStatus,
            WireRequest::MetricsDump(_) => OpCode::MetricsDump,
        }
    }

    fn encode_payload(&self, w: &mut Writer) {
        match self {
            WireRequest::Purchase(m) => m.encode(w),
            WireRequest::Download(m) => m.encode(w),
            WireRequest::Transfer(m) => m.encode(w),
            WireRequest::PseudonymIssue(m) => m.encode(w),
            WireRequest::AttributeIssue(m) => m.encode(w),
            WireRequest::CrlSync(m) => m.encode(w),
            WireRequest::Catalog(m) => m.encode(w),
            WireRequest::LicenseStatus(m) => m.encode(w),
            WireRequest::MetricsDump(m) => m.encode(w),
        }
    }

    fn decode_payload(op: OpCode, payload: &[u8]) -> Result<Self, EnvelopeError> {
        let body = match op {
            OpCode::Purchase => WireRequest::Purchase(decode_strict(payload)?),
            OpCode::Download => WireRequest::Download(decode_strict(payload)?),
            OpCode::Transfer => WireRequest::Transfer(decode_strict(payload)?),
            OpCode::PseudonymIssue => WireRequest::PseudonymIssue(decode_strict(payload)?),
            OpCode::AttributeIssue => WireRequest::AttributeIssue(decode_strict(payload)?),
            OpCode::CrlSync => WireRequest::CrlSync(decode_strict(payload)?),
            OpCode::Catalog => WireRequest::Catalog(decode_strict(payload)?),
            OpCode::LicenseStatus => WireRequest::LicenseStatus(decode_strict(payload)?),
            OpCode::MetricsDump => WireRequest::MetricsDump(decode_strict(payload)?),
            OpCode::Error => return Err(EnvelopeError::UnknownOpcode(OpCode::Error.byte())),
        };
        Ok(body)
    }
}

/// Every reply the service can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireResponse {
    /// Purchase succeeded: the license.
    Purchase(PurchaseResponse),
    /// Download payload.
    Download(DownloadResponse),
    /// Transfer succeeded: the reissued license.
    Transfer(TransferResponse),
    /// Blind signature over the pseudonym candidate.
    PseudonymIssue(PseudonymIssueResponse),
    /// Blind signature under the attribute key.
    AttributeIssue(AttributeIssueResponse),
    /// Full signed CRLs.
    CrlSync(CrlSync),
    /// Catalog metadata.
    Catalog(CatalogResponse),
    /// Authoritative license status.
    LicenseStatus(LicenseStatusResponse),
    /// Unified metrics snapshot + recent spans.
    MetricsDump(MetricsDumpResponse),
    /// The request failed; the code is stable, the detail advisory.
    Error(ApiError),
}

impl WireResponse {
    /// The envelope op-code for this body.
    pub fn opcode(&self) -> OpCode {
        match self {
            WireResponse::Purchase(_) => OpCode::Purchase,
            WireResponse::Download(_) => OpCode::Download,
            WireResponse::Transfer(_) => OpCode::Transfer,
            WireResponse::PseudonymIssue(_) => OpCode::PseudonymIssue,
            WireResponse::AttributeIssue(_) => OpCode::AttributeIssue,
            WireResponse::CrlSync(_) => OpCode::CrlSync,
            WireResponse::Catalog(_) => OpCode::Catalog,
            WireResponse::LicenseStatus(_) => OpCode::LicenseStatus,
            WireResponse::MetricsDump(_) => OpCode::MetricsDump,
            WireResponse::Error(_) => OpCode::Error,
        }
    }

    /// Short label for diagnostics.
    pub fn label(&self) -> &'static str {
        self.opcode().label()
    }

    fn encode_payload(&self, w: &mut Writer) {
        match self {
            WireResponse::Purchase(m) => m.encode(w),
            WireResponse::Download(m) => m.encode(w),
            WireResponse::Transfer(m) => m.encode(w),
            WireResponse::PseudonymIssue(m) => m.encode(w),
            WireResponse::AttributeIssue(m) => m.encode(w),
            WireResponse::CrlSync(m) => m.encode(w),
            WireResponse::Catalog(m) => m.encode(w),
            WireResponse::LicenseStatus(m) => m.encode(w),
            WireResponse::MetricsDump(m) => m.encode(w),
            WireResponse::Error(m) => m.encode(w),
        }
    }

    fn decode_payload(op: OpCode, payload: &[u8]) -> Result<Self, EnvelopeError> {
        let body = match op {
            OpCode::Purchase => WireResponse::Purchase(decode_strict(payload)?),
            OpCode::Download => WireResponse::Download(decode_strict(payload)?),
            OpCode::Transfer => WireResponse::Transfer(decode_strict(payload)?),
            OpCode::PseudonymIssue => WireResponse::PseudonymIssue(decode_strict(payload)?),
            OpCode::AttributeIssue => WireResponse::AttributeIssue(decode_strict(payload)?),
            OpCode::CrlSync => WireResponse::CrlSync(decode_strict(payload)?),
            OpCode::Catalog => WireResponse::Catalog(decode_strict(payload)?),
            OpCode::LicenseStatus => WireResponse::LicenseStatus(decode_strict(payload)?),
            OpCode::MetricsDump => WireResponse::MetricsDump(decode_strict(payload)?),
            OpCode::Error => WireResponse::Error(decode_strict(payload)?),
        };
        Ok(body)
    }
}

fn decode_strict<T: Decode>(payload: &[u8]) -> Result<T, EnvelopeError> {
    p2drm_codec::from_bytes(payload).map_err(EnvelopeError::Malformed)
}

/// Why envelope bytes failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// Op-code byte undefined (or `Error` in a request).
    UnknownOpcode(u8),
    /// Header or payload failed strict decoding.
    Malformed(CodecError),
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            EnvelopeError::UnknownOpcode(b) => write!(f, "unknown op-code {b}"),
            EnvelopeError::Malformed(e) => write!(f, "malformed envelope: {e}"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

impl From<EnvelopeError> for ApiError {
    fn from(e: EnvelopeError) -> Self {
        let code = match e {
            EnvelopeError::UnsupportedVersion(_) => ApiErrorCode::UnsupportedVersion,
            EnvelopeError::UnknownOpcode(_) => ApiErrorCode::UnknownOpcode,
            EnvelopeError::Malformed(_) => ApiErrorCode::MalformedRequest,
        };
        ApiError::new(code, e.to_string())
    }
}

/// Splits envelope bytes into `(version, opcode byte, correlation,
/// payload)` without interpreting the op.
fn split_envelope(bytes: &[u8]) -> Result<(u8, u8, u64, &[u8]), EnvelopeError> {
    if bytes.len() < ENVELOPE_HEADER_LEN {
        return Err(EnvelopeError::Malformed(CodecError::UnexpectedEof));
    }
    // lint: allow(panic, length checked against ENVELOPE_HEADER_LEN above)
    let version = bytes[0];
    // lint: allow(panic, length checked against ENVELOPE_HEADER_LEN above)
    let op = bytes[1];
    let correlation = read_correlation(bytes);
    // lint: allow(panic, length checked against ENVELOPE_HEADER_LEN above)
    Ok((version, op, correlation, &bytes[ENVELOPE_HEADER_LEN..]))
}

/// Reads the correlation id from envelope bytes without panicking slice
/// math: the zip simply stops short on truncated input (callers that
/// care check the length first).
fn read_correlation(bytes: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    for (dst, src) in word.iter_mut().zip(bytes.iter().skip(2)) {
        *dst = *src;
    }
    u64::from_le_bytes(word)
}

/// Best-effort correlation id extraction from (possibly malformed)
/// request bytes, so even rejected requests get a correlated reply.
pub fn correlation_hint(bytes: &[u8]) -> u64 {
    if bytes.len() >= ENVELOPE_HEADER_LEN {
        read_correlation(bytes)
    } else {
        0
    }
}

/// A framed request: correlation id + typed body. Serializes to the
/// envelope layout in the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// Client-chosen id echoed in the response.
    pub correlation_id: u64,
    /// The operation.
    pub body: WireRequest,
}

impl RequestEnvelope {
    /// Serializes the envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.put_u8(WIRE_VERSION);
        w.put_u8(self.body.opcode().byte());
        w.put_u64(self.correlation_id);
        self.body.encode_payload(&mut w);
        w.into_bytes()
    }

    /// Strictly parses request bytes (exact payload consumption, version
    /// and op-code checked).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EnvelopeError> {
        let (version, op, correlation_id, payload) = split_envelope(bytes)?;
        if version != WIRE_VERSION {
            return Err(EnvelopeError::UnsupportedVersion(version));
        }
        let op = OpCode::from_byte(op).ok_or(EnvelopeError::UnknownOpcode(op))?;
        Ok(RequestEnvelope {
            correlation_id,
            body: WireRequest::decode_payload(op, payload)?,
        })
    }
}

/// A framed response: correlation id + typed body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseEnvelope {
    /// Echo of the request's correlation id.
    pub correlation_id: u64,
    /// The outcome.
    pub body: WireResponse,
}

impl ResponseEnvelope {
    /// Serializes the envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.put_u8(WIRE_VERSION);
        w.put_u8(self.body.opcode().byte());
        w.put_u64(self.correlation_id);
        self.body.encode_payload(&mut w);
        w.into_bytes()
    }

    /// Strictly parses response bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EnvelopeError> {
        let (version, op, correlation_id, payload) = split_envelope(bytes)?;
        if version != WIRE_VERSION {
            return Err(EnvelopeError::UnsupportedVersion(version));
        }
        let op = OpCode::from_byte(op).ok_or(EnvelopeError::UnknownOpcode(op))?;
        Ok(ResponseEnvelope {
            correlation_id,
            body: WireResponse::decode_payload(op, payload)?,
        })
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Metric name for one op's request-latency histogram. Names are static
/// strings by construction — the privacy rule for every metric in this
/// workspace (no pseudonyms, card ids, license ids or coin serials in
/// telemetry).
fn op_hist_name(op: OpCode) -> &'static str {
    match op {
        OpCode::Error => "service_error_ns",
        OpCode::Purchase => "service_purchase_ns",
        OpCode::Download => "service_download_ns",
        OpCode::Transfer => "service_transfer_ns",
        OpCode::PseudonymIssue => "service_pseudonym_issue_ns",
        OpCode::AttributeIssue => "service_attribute_issue_ns",
        OpCode::CrlSync => "service_crl_sync_ns",
        OpCode::Catalog => "service_catalog_ns",
        OpCode::LicenseStatus => "service_license_status_ns",
        OpCode::MetricsDump => "service_metrics_dump_ns",
    }
}

/// Registry-backed service instrumentation: request/error counters and
/// one latency histogram per wire op, resolved once at construction so
/// the hot path is plain relaxed atomics.
struct ServiceStats {
    served: Arc<Counter>,
    errors: Arc<Counter>,
    /// Indexed by op-code byte; slot 0 (`Error`) receives requests whose
    /// envelope never parsed to an op.
    op_ns: [Arc<AtomicHistogram>; OPCODE_COUNT],
}

impl ServiceStats {
    fn new(registry: &Registry) -> Self {
        let op_ns = std::array::from_fn(|i| {
            let op = OpCode::from_byte(i as u8).unwrap_or(OpCode::Error);
            registry.histogram(op_hist_name(op))
        });
        ServiceStats {
            served: registry.counter("service_requests"),
            errors: registry.counter("service_errors"),
            op_ns,
        }
    }

    fn hist(&self, op_byte: u8) -> &AtomicHistogram {
        // Unknown bytes never reach here with a real op; route any
        // out-of-range byte to the error slot rather than indexing.
        match self.op_ns.get(op_byte as usize) {
            Some(h) => h,
            None => &self.op_ns[0], // lint: allow(panic, array is non-empty by construction)
        }
    }
}

/// The byte-level DRM service: decodes envelopes, dispatches onto the
/// shared `&self` provider (and RA, when attached) and encodes replies.
///
/// Generic over the provider's [`ConcurrentKv`] backend, so the same
/// service fronts the volatile [`MemBackend`] and the durable
/// [`WalShardedKv`](p2drm_store::WalShardedKv). All entry points take
/// `&self`; the service is `Sync` whenever the backend is, so N transport
/// threads share one instance.
///
/// The service keeps its own view of protocol time (epoch + clock) —
/// server-authoritative, like a deployment would — settable through
/// [`ProviderService::set_time`].
///
/// The provider (and optional RA) are held by [`Arc`], so the service is
/// a self-contained value: hand it to a transport server that spawns its
/// own threads (`p2drm-net`'s `DrmServer` does exactly that) while the
/// caller keeps its own handles to the same provider for inspection.
pub struct ProviderService<B: ConcurrentKv = MemBackend> {
    provider: Arc<ContentProvider<B>>,
    ra: Option<Arc<RegistrationAuthority>>,
    epoch: AtomicU32,
    now: AtomicU64,
    /// 256-bit key for per-request RNG derivation (license ids, envelope
    /// sealing): SHA-256 of the caller's seed mixed with fresh OS
    /// entropy. The caller seed only *separates* services — it is never
    /// the sole source of cryptographic randomness — and each request
    /// keys an independent ChaCha20 stream by its counter, so concurrent
    /// requests never share generator state or a lock.
    rng_key: [u8; 32],
    requests: AtomicU64,
    /// Metrics registry this service records into (and snapshots for
    /// [`OpCode::MetricsDump`]).
    registry: Arc<Registry>,
    /// Correlation-id request tracer; starts disabled, enabled via
    /// [`ProviderService::set_tracing`].
    tracer: Arc<Tracer>,
    stats: ServiceStats,
}

impl<B: ConcurrentKv> ProviderService<B> {
    /// Service over a provider, with no RA attached (issuance ops answer
    /// [`ApiErrorCode::ServiceUnavailable`]). Starts at epoch 0, time 1.
    ///
    /// `seed` separates this service's RNG streams from other instances;
    /// it is hashed together with 256 bits of fresh OS entropy into the
    /// service's RNG key, so the randomness behind
    /// [`ProviderService::handle`] — license ids, key envelopes — is a
    /// ChaCha20 keystream unpredictable even to a caller who knows the
    /// seed (and, unlike the test-grade xoshiro `StdRng`, not
    /// recoverable from observed output). Deterministic tests should
    /// drive [`ProviderService::handle_with_rng`] instead.
    ///
    /// Records into the process-wide [`p2drm_obs::global`] registry; use
    /// [`ProviderService::with_registry`] to isolate metrics (tests,
    /// side-by-side services).
    pub fn new(provider: Arc<ContentProvider<B>>, seed: u64) -> Self
    where
        B: Send + Sync + 'static,
    {
        let registry = Arc::clone(p2drm_obs::global());
        Self::with_registry(provider, seed, registry)
    }

    /// [`ProviderService::new`] recording into a caller-supplied
    /// [`Registry`] instead of the global one. The provider (verify
    /// cache, valve, store) and the tracer are registered as weak
    /// snapshot sources, so one [`Registry::snapshot`] — or one wire
    /// [`OpCode::MetricsDump`] — carries service, valve, cache, store
    /// and batch-crypto metrics together.
    pub fn with_registry(
        provider: Arc<ContentProvider<B>>,
        seed: u64,
        registry: Arc<Registry>,
    ) -> Self
    where
        B: Send + Sync + 'static,
    {
        let stats = ServiceStats::new(&registry);
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let provider_weak = Arc::downgrade(&provider);
        registry.register_source(provider_weak as Weak<dyn MetricSource + Send + Sync>);
        let tracer_weak = Arc::downgrade(&tracer);
        registry.register_source(tracer_weak as Weak<dyn MetricSource + Send + Sync>);
        ProviderService {
            provider,
            ra: None,
            epoch: AtomicU32::new(0),
            now: AtomicU64::new(1),
            rng_key: p2drm_crypto::sha256::sha256_concat(&[
                b"p2drm-service-rng-v1",
                &seed.to_le_bytes(),
                &p2drm_crypto::rng::os_entropy32(),
            ]),
            requests: AtomicU64::new(0),
            registry,
            tracer,
            stats,
        }
    }

    /// Attaches a registration authority, enabling the pseudonym and
    /// attribute issuance ops.
    pub fn with_ra(mut self, ra: Arc<RegistrationAuthority>) -> Self {
        self.ra = Some(ra);
        self
    }

    /// The provider this service fronts (shared handle).
    pub fn provider(&self) -> &Arc<ContentProvider<B>> {
        &self.provider
    }

    /// The metrics registry this service records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The correlation-id tracer (disabled until
    /// [`ProviderService::set_tracing`]).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Enables or disables per-request span capture. Span fields are
    /// static labels, durations and the client-chosen wire correlation
    /// id — never pseudonyms, card ids, license ids or coin serials.
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Sets the service's protocol time.
    pub fn set_time(&self, epoch: u32, now: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.now.store(now, Ordering::Relaxed);
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Current wall-clock (unix-second stand-in).
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// The single byte-level entry point: decode, dispatch, encode.
    ///
    /// Total: every input — truncated, bit-flipped, wrong version,
    /// unknown op, trailing garbage — produces a well-formed
    /// [`ResponseEnvelope`], never a panic, and a failed request leaves
    /// the underlying provider fully serviceable.
    pub fn handle(&self, request: &[u8]) -> Vec<u8> {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        // Nonce-separated ChaCha20 streams under one entropy-keyed
        // 256-bit key: one independent CSPRNG per request, no shared
        // lock on the hot path, and no way to predict one request's
        // randomness from another's output.
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&n.to_le_bytes()); // lint: allow(panic, nonce is 12 bytes, the 8-byte counter prefix always fits)
        let mut rng = ChaChaRng::new(self.rng_key, nonce);
        self.handle_with_rng(request, &mut rng)
    }

    /// [`ProviderService::handle`] with caller-supplied randomness
    /// (deterministic tests).
    pub fn handle_with_rng<R: CryptoRng + ?Sized>(&self, request: &[u8], rng: &mut R) -> Vec<u8> {
        let timer = Timer::start(self.registry.is_enabled());
        self.stats.served.inc();
        let (op_byte, response) = match RequestEnvelope::from_bytes(request) {
            Ok(envelope) => {
                let op = envelope.body.opcode();
                // Span fields: correlation id (client-chosen, already on
                // the wire) + static op label. Nothing identifying.
                let _span = self.tracer.begin(envelope.correlation_id, op.label());
                let body = self
                    .dispatch(&envelope.body, rng)
                    .unwrap_or_else(WireResponse::Error);
                (
                    op.byte(),
                    ResponseEnvelope {
                        correlation_id: envelope.correlation_id,
                        body,
                    },
                )
            }
            Err(e) => (
                OpCode::Error.byte(),
                ResponseEnvelope {
                    correlation_id: correlation_hint(request),
                    body: WireResponse::Error(e.into()),
                },
            ),
        };
        if matches!(response.body, WireResponse::Error(_)) {
            self.stats.errors.inc();
        }
        let bytes = response.to_bytes();
        if let Some(ns) = timer.elapsed_ns() {
            self.stats.hist(op_byte).record(ns);
        }
        bytes
    }

    /// Typed dispatch (the decoded middle of [`ProviderService::handle`]).
    pub fn dispatch<R: CryptoRng + ?Sized>(
        &self,
        request: &WireRequest,
        rng: &mut R,
    ) -> Result<WireResponse, ApiError> {
        let epoch = self.epoch();
        let now = self.now();
        match request {
            WireRequest::Purchase(req) => {
                let license = self.provider.handle_purchase(req, epoch, rng)?;
                Ok(WireResponse::Purchase(PurchaseResponse { license }))
            }
            WireRequest::Download(req) => {
                let (nonce, ciphertext) = self.provider.download(&req.content_id)?;
                Ok(WireResponse::Download(DownloadResponse {
                    nonce,
                    ciphertext,
                }))
            }
            WireRequest::Transfer(req) => {
                let license = self.provider.handle_transfer(req, epoch, rng)?;
                Ok(WireResponse::Transfer(TransferResponse { license }))
            }
            WireRequest::PseudonymIssue(req) => {
                let ra = self.require_ra("pseudonym issuance")?;
                let blind_sig = ra.issue_pseudonym(
                    req.card_id,
                    &req.card_cert,
                    &req.blinded,
                    &req.auth_sig,
                    now,
                )?;
                Ok(WireResponse::PseudonymIssue(PseudonymIssueResponse {
                    blind_sig,
                }))
            }
            WireRequest::AttributeIssue(req) => {
                let ra = self.require_ra("attribute issuance")?;
                let blind_sig = ra.issue_attribute(
                    req.card_id,
                    &req.card_cert,
                    &req.attribute,
                    &req.blinded,
                    &req.auth_sig,
                    now,
                )?;
                Ok(WireResponse::AttributeIssue(AttributeIssueResponse {
                    blind_sig,
                }))
            }
            WireRequest::CrlSync(_) => Ok(WireResponse::CrlSync(CrlSync {
                license_crl: self.provider.signed_license_crl(now),
                pseudonym_crl: self.provider.signed_pseudonym_crl(now),
            })),
            WireRequest::Catalog(req) => {
                let items = match req.content_id {
                    Some(id) => vec![self.provider.content_meta(&id).ok_or_else(|| {
                        ApiError::new(
                            ApiErrorCode::UnknownContent,
                            format!("unknown content {id}"),
                        )
                    })?],
                    None => self.provider.list_content(),
                };
                Ok(WireResponse::Catalog(CatalogResponse { items }))
            }
            WireRequest::LicenseStatus(req) => {
                Ok(WireResponse::LicenseStatus(LicenseStatusResponse {
                    status: self.provider.license_status(&req.license_id),
                }))
            }
            WireRequest::MetricsDump(_) => {
                if !self.provider.config().metrics_dump {
                    return Err(ApiError::new(
                        ApiErrorCode::ServiceUnavailable,
                        "metrics dump not enabled on this endpoint",
                    ));
                }
                Ok(WireResponse::MetricsDump(self.metrics_dump_response()))
            }
        }
    }

    /// The unified snapshot as a wire message: every registry metric
    /// (service, valve, verify cache, store, batch crypto) plus the
    /// tracer's recent spans.
    pub fn metrics_dump_response(&self) -> MetricsDumpResponse {
        let snapshot = self.registry.snapshot();
        MetricsDumpResponse {
            metrics: snapshot.entries.iter().map(metric_entry).collect(),
            spans: self.tracer.recent().iter().map(span_entry).collect(),
        }
    }

    fn require_ra(&self, what: &str) -> Result<&RegistrationAuthority, ApiError> {
        self.ra.as_deref().ok_or_else(|| {
            ApiError::new(
                ApiErrorCode::ServiceUnavailable,
                format!("{what} not served by this endpoint (no RA attached)"),
            )
        })
    }
}

fn metric_entry((name, value): &(String, MetricValue)) -> MetricEntry {
    match value {
        MetricValue::Counter(v) => MetricEntry::Counter {
            name: name.clone(),
            value: *v,
        },
        MetricValue::Gauge(v) => MetricEntry::Gauge {
            name: name.clone(),
            value: *v,
        },
        MetricValue::Histogram(s) => MetricEntry::Histogram {
            name: name.clone(),
            summary: MetricSummary {
                count: s.count,
                mean_ns: s.mean_ns.round() as u64,
                p50_ns: s.p50_ns,
                p90_ns: s.p90_ns,
                p99_ns: s.p99_ns,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
            },
        },
    }
}

fn span_entry(r: &p2drm_obs::SpanRecord) -> SpanEntry {
    SpanEntry {
        corr_id: r.corr_id,
        op: r.op.to_string(),
        total_ns: r.total_ns,
        slow: r.slow,
        stages: r
            .stages
            .iter()
            .map(|(label, ns)| SpanStage {
                label: (*label).to_string(),
                ns: *ns,
            })
            .collect(),
    }
}

/// Rebuilds an exposition-ready [`Snapshot`] from a decoded
/// [`MetricsDumpResponse`] (the client side of [`OpCode::MetricsDump`]):
/// same entries in the same order, with each histogram mean carried as
/// the rounded integer that travelled the wire. Render with
/// [`Snapshot::to_text`] or [`Snapshot::to_json`].
pub fn snapshot_from_dump(dump: &MetricsDumpResponse) -> Snapshot {
    let entries = dump
        .metrics
        .iter()
        .map(|e| match e {
            MetricEntry::Counter { name, value } => (name.clone(), MetricValue::Counter(*value)),
            MetricEntry::Gauge { name, value } => (name.clone(), MetricValue::Gauge(*value)),
            MetricEntry::Histogram { name, summary } => (
                name.clone(),
                MetricValue::Histogram(Summary {
                    count: summary.count,
                    mean_ns: summary.mean_ns as f64,
                    p50_ns: summary.p50_ns,
                    p90_ns: summary.p90_ns,
                    p99_ns: summary.p99_ns,
                    min_ns: summary.min_ns,
                    max_ns: summary.max_ns,
                }),
            ),
        })
        .collect();
    Snapshot { entries }
}

// ---------------------------------------------------------------------------
// Transport + client
// ---------------------------------------------------------------------------

/// Why a transport failed to complete a round trip.
///
/// Real transports fail, and the variants split on the one question the
/// client's recovery logic needs answered: **did the request possibly
/// reach the service?** [`TransportError::Unreachable`] means definitely
/// not (client state can unwind as if the call was never made); the
/// other variants are ambiguous (the service may have committed), so
/// consumed resources — a purchase's coin — must be parked and
/// reconciled, never silently restored or dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The request was never sent — no connection could be established,
    /// or the transport refused it locally (e.g. over the frame cap).
    Unreachable(String),
    /// The connection failed after the request may have left this host.
    Broken(String),
    /// A frame violated the framing contract (oversized, torn, garbage
    /// length prefix). The request may still have been served.
    Frame(String),
}

impl TransportError {
    /// Whether the request definitely never reached the service, making
    /// it safe to unwind client-side state as if the call had not
    /// happened. Everything else is ambiguous.
    pub fn definitely_unsent(&self) -> bool {
        matches!(self, TransportError::Unreachable(_))
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable(d) => write!(f, "service unreachable: {d}"),
            TransportError::Broken(d) => write!(f, "connection broken mid-exchange: {d}"),
            TransportError::Frame(d) => write!(f, "framing violation: {d}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Moves request bytes to a service and returns response bytes, with
/// **multiple requests allowed in flight at once** on one channel.
/// Implementations may be sockets, queues, or the in-proc [`Loopback`].
///
/// The contract is submit/complete, keyed by the envelope's correlation
/// id (which the caller must also stamp into the request bytes — the
/// server echoes it, and the transport matches replies by it):
///
/// * [`Transport::submit`] hands one request to the channel. An error
///   classifies **that request only**: `Unreachable` means it provably
///   never left this host (the caller may unwind state as if the call
///   was never made); `Broken`/`Frame` mean it *may* have left, so the
///   caller must treat the outcome as ambiguous. Either way,
///   previously submitted requests stay in flight — their fate is
///   reported by `complete`.
/// * [`Transport::complete`] blocks for the **next** reply, in whatever
///   order the service answers — `Ok(Some((corr_id, bytes)))` resolves
///   exactly one in-flight submission. `Ok(None)` means the `deadline`
///   passed (or nothing was in flight) with the channel still healthy.
///   `Err(_)` is a **channel failure**: every request in flight becomes
///   ambiguous at once, the transport forgets them, and a later
///   `submit` may re-establish the channel.
/// * A reply whose correlation id is not currently in flight — unknown,
///   or already consumed by an earlier `complete` — must be **rejected
///   as a channel failure**, never delivered twice or misdelivered.
///
/// `deadline: None` means "wait as long as this transport considers
/// reasonable" (a socket transport's read timeout); exceeding *that*
/// patience is `Err(Broken)`, not `Ok(None)`, because a request was in
/// flight and its outcome is now unknown.
pub trait Transport {
    /// Hands one request (stamped with `corr_id`) to the channel.
    fn submit(&self, corr_id: u64, request: &[u8]) -> Result<(), TransportError>;

    /// Blocks for the next reply, whichever in-flight request it
    /// resolves. See the trait docs for the `deadline`/`None`/`Err`
    /// semantics.
    fn complete(
        &self,
        deadline: Option<std::time::Instant>,
    ) -> Result<Option<(u64, Vec<u8>)>, TransportError>;

    /// One-shot round trip — the degenerate pipeline of depth 1:
    /// submit, then complete until `corr_id`'s reply arrives. Replies
    /// to other (abandoned) correlation ids are discarded.
    fn roundtrip(&self, corr_id: u64, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        self.submit(corr_id, request)?;
        loop {
            match self.complete(None)? {
                Some((id, reply)) if id == corr_id => return Ok(reply),
                Some(_) => continue,
                None => {
                    return Err(TransportError::Broken(
                        "transport reported nothing in flight while a reply was outstanding"
                            .to_string(),
                    ))
                }
            }
        }
    }
}

/// In-process transport: [`Transport::submit`] calls
/// [`ProviderService::handle`] synchronously and queues the reply;
/// [`Transport::complete`] pops replies in submission order. The bytes
/// still make the full encode → dispatch → decode journey, so this is
/// the serialization-overhead baseline a real socket would add to.
/// Infallible by construction — there is no wire to lose bytes on.
pub struct Loopback<'s, B: ConcurrentKv> {
    service: &'s ProviderService<B>,
    replies: std::sync::Mutex<std::collections::VecDeque<(u64, Vec<u8>)>>,
}

impl<'s, B: ConcurrentKv> Loopback<'s, B> {
    /// In-process transport over `service`.
    pub fn new(service: &'s ProviderService<B>) -> Self {
        Loopback {
            service,
            replies: std::sync::Mutex::new(std::collections::VecDeque::new()),
        }
    }
}

impl<B: ConcurrentKv> Transport for Loopback<'_, B> {
    fn submit(&self, corr_id: u64, request: &[u8]) -> Result<(), TransportError> {
        let reply = self.service.handle(request);
        self.replies
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back((corr_id, reply));
        Ok(())
    }

    fn complete(
        &self,
        _deadline: Option<std::time::Instant>,
    ) -> Result<Option<(u64, Vec<u8>)>, TransportError> {
        Ok(self
            .replies
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front())
    }
}

/// Client-side failure of a wire call.
#[derive(Debug)]
pub enum WireError {
    /// The service answered with an error response.
    Api(ApiError),
    /// The transport could not complete the round trip.
    Transport(TransportError),
    /// The response bytes failed to parse.
    Envelope(EnvelopeError),
    /// The response echoed a different correlation id.
    CorrelationMismatch {
        /// Id the client sent.
        sent: u64,
        /// Id the response carried.
        got: u64,
    },
    /// The response body was a different operation than requested.
    UnexpectedResponse {
        /// What the client asked for.
        expected: &'static str,
        /// What came back.
        got: &'static str,
    },
    /// A client-side protocol step failed before/after the wire call.
    Client(CoreError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Api(e) => write!(f, "service error: {e}"),
            WireError::Transport(e) => write!(f, "transport failure: {e}"),
            WireError::Envelope(e) => write!(f, "bad response envelope: {e}"),
            WireError::CorrelationMismatch { sent, got } => {
                write!(f, "correlation mismatch: sent {sent}, got {got}")
            }
            WireError::UnexpectedResponse { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
            WireError::Client(e) => write!(f, "client-side failure: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CoreError> for WireError {
    fn from(e: CoreError) -> Self {
        WireError::Client(e)
    }
}

impl From<ApiError> for WireError {
    fn from(e: ApiError) -> Self {
        WireError::Api(e)
    }
}

impl From<EnvelopeError> for WireError {
    fn from(e: EnvelopeError) -> Self {
        WireError::Envelope(e)
    }
}

impl From<TransportError> for WireError {
    fn from(e: TransportError) -> Self {
        WireError::Transport(e)
    }
}

impl From<p2drm_payment::PaymentError> for WireError {
    fn from(e: p2drm_payment::PaymentError) -> Self {
        WireError::Client(CoreError::Payment(e))
    }
}

/// Counters/histograms that make client-side recovery visible instead
/// of silent: retries taken, give-ups, breaker activity, reconciles,
/// and the backoff pauses actually slept.
pub struct RecoveryMetrics {
    /// Retries actually sent (`client_retries`).
    pub retries: Arc<Counter>,
    /// Operations abandoned with retries still possible in principle but
    /// attempts/budget/deadline exhausted (`client_retry_giveups`).
    pub giveups: Arc<Counter>,
    /// Circuit-breaker state transitions (`client_breaker_transitions`).
    pub breaker_transitions: Arc<Counter>,
    /// Requests rejected locally by an open breaker
    /// (`client_breaker_rejections`).
    pub breaker_rejections: Arc<Counter>,
    /// Reconciliation actions taken — transfer status repairs and
    /// parked-coin settlements (`client_reconciles`).
    pub reconciles: Arc<Counter>,
    /// Distribution of backoff pauses slept (`client_backoff_ns`).
    pub backoff_ns: Arc<AtomicHistogram>,
}

impl RecoveryMetrics {
    /// Registers the recovery series on `registry` (idempotent: same
    /// names return the same shared handles).
    pub fn register(registry: &Registry) -> Self {
        RecoveryMetrics {
            retries: registry.counter("client_retries"),
            giveups: registry.counter("client_retry_giveups"),
            breaker_transitions: registry.counter("client_breaker_transitions"),
            breaker_rejections: registry.counter("client_breaker_rejections"),
            reconciles: registry.counter("client_reconciles"),
            backoff_ns: registry.histogram("client_backoff_ns"),
        }
    }
}

/// End-to-end recovery policy for a [`WireClient`]: retry whole
/// operations (not just connects) under a backoff policy, bounded by a
/// retry budget and a circuit breaker, honoring the server's
/// `retry_after_ms` backpressure hints, and retrying ambiguous failures
/// only for ops classified retry-safe ([`OpCode::idempotency`]).
pub struct Recovery {
    /// Backoff/attempts/deadline policy (deterministic jitter).
    pub policy: RetryPolicy,
    /// Per-client retry budget shared across all ops on this client.
    pub budget: RetryBudget,
    /// Per-client circuit breaker.
    pub breaker: CircuitBreaker,
    /// Optional observability (None: recovery runs unmetered).
    pub metrics: Option<RecoveryMetrics>,
}

impl Recovery {
    /// Default recovery tuned for the in-tree services, with a
    /// deterministic jitter stream derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Recovery {
            policy: RetryPolicy::seeded(seed),
            budget: RetryBudget::new(32, 100),
            breaker: CircuitBreaker::new(8, Duration::from_millis(50)),
            metrics: None,
        }
    }

    /// Attaches recovery metrics registered on `registry`.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = Some(RecoveryMetrics::register(registry));
        self
    }
}

/// Typed client over any [`Transport`]: frames envelopes, matches
/// correlation ids, and drives the multi-round protocol flows as session
/// state machines against the client-side state (user agent, smart card,
/// device) while the provider/RA live behind the wire.
pub struct WireClient<T: Transport> {
    transport: T,
    /// Correlation-id source: a monotone atomic counter, so ids are
    /// unique per client/connection even across concurrently prepared
    /// pipelined sessions. Id 0 is reserved (it marks a server's
    /// pre-decode error reply) and skipped; on the astronomically
    /// distant wrap-around of the `u64` the counter passes 0 and keeps
    /// going — ids only collide if a request from 2⁶⁴ calls ago is
    /// somehow still in flight, which every transport rejects as an
    /// unknown-id channel failure rather than misdelivering.
    next_correlation: AtomicU64,
    /// Epoch the client stamps into pseudonym/attribute bodies. The
    /// server validates freshness regardless; a stale hint just gets the
    /// issuance rejected.
    epoch: u32,
    /// Server clock learned from signed CRL timestamps (cached).
    now_hint: Option<u64>,
    /// Operation-level recovery policy; `None` keeps the historical
    /// single-attempt behavior.
    recovery: Option<Recovery>,
}

impl<T: Transport> WireClient<T> {
    /// Client over `transport`, assuming epoch 0 until told otherwise.
    pub fn new(transport: T) -> Self {
        WireClient {
            transport,
            next_correlation: AtomicU64::new(1),
            epoch: 0,
            now_hint: None,
            recovery: None,
        }
    }

    /// Enables operation-level recovery: every [`WireClient::call`]
    /// retries per the policy (bounded by budget, breaker and deadline),
    /// honoring server `retry_after_ms` hints; ambiguous failures are
    /// retried only for retry-safe ops ([`OpCode::idempotency`]).
    pub fn with_recovery(mut self, recovery: Recovery) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Installs (or replaces) the recovery policy on a live client.
    pub fn set_recovery(&mut self, recovery: Option<Recovery>) {
        self.recovery = recovery;
    }

    /// The active recovery policy, if any (breaker/budget inspection).
    pub fn recovery(&self) -> Option<&Recovery> {
        self.recovery.as_ref()
    }

    /// Sets the epoch used for blind-issuance bodies (out-of-band time
    /// discipline, exactly like the in-process engines' `now_epoch`
    /// parameter).
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// The next fresh correlation id (never 0 — reserved for the
    /// server's pre-decode error replies).
    fn next_corr(&self) -> u64 {
        loop {
            let id = self.next_correlation.fetch_add(1, Ordering::Relaxed);
            if id != 0 {
                return id;
            }
        }
    }

    /// Decodes one reply delivered for correlation id `sent` and checks
    /// the envelope agrees. A correlation-0 **error** body is a server's
    /// *pre-decode* reply — a busy shed or a frame-level reject sent
    /// before any request was read. The request was provably not
    /// dispatched, so the error is authoritative (and failure handling
    /// can safely unwind), not a mismatch.
    fn decode_reply(sent: u64, reply: &[u8]) -> Result<WireResponse, WireError> {
        let envelope = ResponseEnvelope::from_bytes(reply)?;
        if envelope.correlation_id != sent {
            if envelope.correlation_id == 0 {
                if let WireResponse::Error(e) = envelope.body {
                    return Ok(WireResponse::Error(e));
                }
            }
            return Err(WireError::CorrelationMismatch {
                sent,
                got: envelope.correlation_id,
            });
        }
        Ok(envelope.body)
    }

    /// One framed exchange under the recovery policy (when installed):
    /// encode, submit, complete until this call's reply arrives, decode,
    /// match correlation — retrying failed exchanges per the policy.
    /// Every attempt uses a fresh correlation id, so a late reply to an
    /// abandoned attempt can never satisfy its retry.
    pub fn call(&mut self, body: WireRequest) -> Result<WireResponse, WireError> {
        match self.recovery.take() {
            None => self.call_once(body),
            Some(rec) => {
                let out = self.call_recovering(&rec, body);
                self.recovery = Some(rec);
                out
            }
        }
    }

    /// One framed round trip, exactly one attempt.
    fn call_once(&mut self, body: WireRequest) -> Result<WireResponse, WireError> {
        let sent = self.next_corr();
        let request = RequestEnvelope {
            correlation_id: sent,
            body,
        };
        let reply = self.transport.roundtrip(sent, &request.to_bytes())?;
        Self::decode_reply(sent, &reply)
    }

    /// [`WireClient::call_once`] in a policy-bounded retry loop.
    ///
    /// Retry classification:
    /// * decoded [`ApiErrorCode::ServiceUnavailable`] — a busy shed (or
    ///   an op this endpoint does not serve); the server provably did
    ///   not commit the op, so **any** op may retry, pausing at least
    ///   the response's `retry_after_ms` hint;
    /// * transport failure that is definitely-unsent — any op retries;
    /// * ambiguous transport/envelope/correlation failure — only
    ///   retry-safe ops retry; must-reconcile ops surface the error so
    ///   the caller's parking/reconcile accounting runs;
    /// * any other decoded error — authoritative, never retried.
    fn call_recovering(
        &mut self,
        rec: &Recovery,
        body: WireRequest,
    ) -> Result<WireResponse, WireError> {
        let transitions_before = rec.breaker.transitions();
        let out = self.call_recovering_inner(rec, body);
        if let Some(m) = &rec.metrics {
            m.breaker_transitions
                .add(rec.breaker.transitions() - transitions_before);
        }
        out
    }

    fn call_recovering_inner(
        &mut self,
        rec: &Recovery,
        body: WireRequest,
    ) -> Result<WireResponse, WireError> {
        let idem = body.opcode().idempotency();
        let deadline = rec.policy.op_deadline.map(|d| Instant::now() + d);
        let mut retry: u32 = 0;
        loop {
            match rec.breaker.admit() {
                Admit::Rejected => {
                    if let Some(m) = &rec.metrics {
                        m.breaker_rejections.inc();
                    }
                    return Err(WireError::Api(ApiError::new(
                        ApiErrorCode::ServiceUnavailable,
                        "circuit breaker open: failing fast without sending",
                    )));
                }
                Admit::Allowed | Admit::Probe => {}
            }
            let outcome = self.call_once(body.clone());
            // `None` → final; `Some(floor)` → retriable with a minimum
            // pause (the server's backpressure hint).
            let floor = match &outcome {
                Ok(WireResponse::Error(e)) if e.code == ApiErrorCode::ServiceUnavailable => {
                    rec.breaker.on_failure();
                    Some(Duration::from_millis(u64::from(e.retry_after_ms)))
                }
                Ok(_) => {
                    rec.breaker.on_success();
                    rec.budget.on_success();
                    return outcome;
                }
                Err(WireError::Transport(t)) => {
                    rec.breaker.on_failure();
                    (t.definitely_unsent() || idem == Idempotency::Safe).then_some(Duration::ZERO)
                }
                Err(WireError::Envelope(_))
                | Err(WireError::CorrelationMismatch { .. })
                | Err(WireError::UnexpectedResponse { .. }) => {
                    rec.breaker.on_failure();
                    (idem == Idempotency::Safe).then_some(Duration::ZERO)
                }
                // A decoded non-busy error is the server's authoritative
                // answer; a client-side error will not change on resend.
                Err(WireError::Api(_)) | Err(WireError::Client(_)) => None,
            };
            let Some(floor) = floor else {
                return outcome;
            };
            retry += 1;
            let pause = rec.policy.backoff(retry).max(floor);
            let deadline_blocks = deadline.is_some_and(|dl| Instant::now() + pause >= dl);
            if retry >= rec.policy.max_attempts || deadline_blocks || !rec.budget.try_spend() {
                if let Some(m) = &rec.metrics {
                    m.giveups.inc();
                }
                return outcome;
            }
            if let Some(m) = &rec.metrics {
                m.retries.inc();
                m.backoff_ns.record(pause.as_nanos() as u64);
            }
            rec.policy.pause(retry, floor);
        }
    }

    /// Pipelines `bodies` on the transport — submit them all, then
    /// complete replies **in whatever order the service answers** — and
    /// returns one outcome per request, in input order.
    ///
    /// Failure granularity follows the [`Transport`] contract: a submit
    /// error marks only that slot (so an `Unreachable` there is still
    /// definitely-unsent); a complete error is a channel failure, so
    /// every still-unresolved slot gets the same ambiguous transport
    /// error. A reply resolving an id this batch never sent is
    /// discarded (it can only be a stale answer to an abandoned call).
    pub fn call_many(&mut self, bodies: Vec<WireRequest>) -> Vec<Result<WireResponse, WireError>> {
        let mut results: Vec<Option<Result<WireResponse, WireError>>> =
            (0..bodies.len()).map(|_| None).collect();
        let mut pending: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::with_capacity(bodies.len());
        for (slot, body) in bodies.into_iter().enumerate() {
            let sent = self.next_corr();
            let request = RequestEnvelope {
                correlation_id: sent,
                body,
            };
            match self.transport.submit(sent, &request.to_bytes()) {
                Ok(()) => {
                    pending.insert(sent, slot);
                }
                // lint: allow(panic, slot enumerates bodies and results has one slot per body)
                Err(e) => results[slot] = Some(Err(WireError::Transport(e))),
            }
        }
        while !pending.is_empty() {
            match self.transport.complete(None) {
                Ok(Some((corr, reply))) => {
                    if let Some(slot) = pending.remove(&corr) {
                        // lint: allow(panic, slot comes from pending, which only holds valid slots)
                        results[slot] = Some(Self::decode_reply(corr, &reply));
                    }
                }
                Ok(None) => {
                    let err = TransportError::Broken(
                        "transport reported nothing in flight while replies were outstanding"
                            .to_string(),
                    );
                    for (_, slot) in pending.drain() {
                        // lint: allow(panic, slot comes from pending, which only holds valid slots)
                        results[slot] = Some(Err(WireError::Transport(err.clone())));
                    }
                }
                Err(e) => {
                    for (_, slot) in pending.drain() {
                        // lint: allow(panic, slot comes from pending, which only holds valid slots)
                        results[slot] = Some(Err(WireError::Transport(e.clone())));
                    }
                }
            }
        }
        results
            .into_iter()
            // lint: allow(panic, the completion loop above resolves every slot)
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Lists the catalog.
    pub fn catalog(&mut self) -> Result<Vec<ContentMeta>, WireError> {
        match self.call(WireRequest::Catalog(CatalogRequest { content_id: None }))? {
            WireResponse::Catalog(c) => Ok(c.items),
            other => Err(unexpected("catalog", other)),
        }
    }

    /// Looks up one catalog item.
    pub fn content_meta(&mut self, id: ContentId) -> Result<ContentMeta, WireError> {
        match self.call(WireRequest::Catalog(CatalogRequest {
            content_id: Some(id),
        }))? {
            WireResponse::Catalog(mut c) if !c.items.is_empty() => Ok(c.items.remove(0)),
            WireResponse::Catalog(_) => Err(WireError::Api(ApiError::new(
                ApiErrorCode::UnknownContent,
                format!("unknown content {id}"),
            ))),
            other => Err(unexpected("catalog", other)),
        }
    }

    /// Blind pseudonym issuance over the wire (card-side state machine +
    /// one RA round trip).
    pub fn obtain_pseudonym<R: CryptoRng + ?Sized>(
        &mut self,
        user: &mut UserAgent,
        ra_blind_key: &RsaPublicKey,
        ttp_key: &ElGamalPublicKey,
        rng: &mut R,
    ) -> Result<KeyId, WireError> {
        let (session, request) =
            PseudonymIssueSession::begin(user, ra_blind_key, ttp_key, self.epoch, rng)?;
        match self.call(WireRequest::PseudonymIssue(request))? {
            WireResponse::PseudonymIssue(resp) => Ok(session.finish(user, ra_blind_key, &resp)?),
            other => Err(unexpected("pseudonym-issue", other)),
        }
    }

    /// Blind attribute issuance over the wire, bound to the user's
    /// current pseudonym.
    pub fn obtain_attribute<R: CryptoRng + ?Sized>(
        &mut self,
        user: &mut UserAgent,
        attribute: &str,
        attribute_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<KeyId, WireError> {
        let (session, request) =
            AttributeIssueSession::begin(user, attribute, attribute_key, self.epoch, rng)?;
        match self.call(WireRequest::AttributeIssue(request))? {
            WireResponse::AttributeIssue(resp) => Ok(session.finish(user, &resp)?),
            other => Err(unexpected("attribute-issue", other)),
        }
    }

    /// Anonymous purchase over the wire: catalog quote, coin withdrawal
    /// (client ↔ mint, off this wire), purchase round trip, wallet
    /// recovery on failure.
    ///
    /// Coin accounting on the failure paths:
    /// * decoded **error response** — the server did not issue; the coin
    ///   returns to the wallet unless the error is in the payment range
    ///   (the mint consumed or rejected it);
    /// * **definitely-unsent transport failure**
    ///   ([`TransportError::definitely_unsent`], e.g. connect refused) —
    ///   the request never left this host, so the coin simply returns
    ///   to the wallet;
    /// * **ambiguous outcome** (connection broke mid-exchange, reply
    ///   fails to decode, correlation mismatch, unexpected response op)
    ///   — the server may or may not have deposited the coin, so it is
    ///   parked in the wallet's pending pool
    ///   ([`p2drm_payment::Wallet::pending`]) rather than silently
    ///   dropped; once the transport recovers, settle it with
    ///   [`p2drm_payment::Wallet::reconcile_pending`] against the
    ///   mint's authoritative spent-serial record.
    pub fn purchase<R: CryptoRng + ?Sized>(
        &mut self,
        user: &mut UserAgent,
        mint: &Mint,
        content_id: ContentId,
        rng: &mut R,
    ) -> Result<License, WireError> {
        let meta = self.content_meta(content_id)?;
        let (session, request) = PurchaseSession::begin(user, mint, &meta, rng)?;
        match self.call(WireRequest::Purchase(request)) {
            Ok(WireResponse::Purchase(resp)) => Ok(session.finish(user, resp)),
            Ok(WireResponse::Error(e)) => {
                session.abort(user, &e);
                Err(WireError::Api(e))
            }
            Ok(other) => {
                session.park(user);
                Err(unexpected("purchase", other))
            }
            Err(WireError::Transport(t)) if t.definitely_unsent() => {
                session.recover(user);
                Err(WireError::Transport(t))
            }
            Err(e) => {
                session.park(user);
                Err(e)
            }
        }
    }

    /// Pipelines several anonymous purchases on one connection: all
    /// sessions begin (each withdrawing its own covering coin), all
    /// requests are submitted, and replies settle **as they arrive**,
    /// possibly out of order. Returns one outcome per content id, in
    /// input order.
    ///
    /// Coin accounting is per session and identical to
    /// [`WireClient::purchase`]: a decoded error aborts (coin returns
    /// unless the error is in the payment range), a definitely-unsent
    /// transport failure recovers the coin, and every ambiguous outcome
    /// — including a channel failure that voids several in-flight
    /// sessions at once — parks its coin for reconciliation.
    pub fn purchase_many<R: CryptoRng + ?Sized>(
        &mut self,
        user: &mut UserAgent,
        mint: &Mint,
        content_ids: &[ContentId],
        rng: &mut R,
    ) -> Vec<Result<License, WireError>> {
        // One catalog round trip quotes every item.
        let catalog = match self.catalog() {
            Ok(items) => items,
            Err(e) => {
                // No session began, no coin moved: fail every slot with
                // a fresh lookup attempt's error shape.
                let mut out = Vec::with_capacity(content_ids.len());
                out.push(Err(e));
                for _ in 1..content_ids.len() {
                    out.push(Err(WireError::Api(ApiError::new(
                        ApiErrorCode::ServiceUnavailable,
                        "catalog quote failed; purchase not attempted",
                    ))));
                }
                return out;
            }
        };
        let mut results: Vec<Option<Result<License, WireError>>> =
            (0..content_ids.len()).map(|_| None).collect();
        let mut sessions: std::collections::HashMap<u64, (usize, PurchaseSession)> =
            std::collections::HashMap::new();
        for (slot, cid) in content_ids.iter().enumerate() {
            let Some(meta) = catalog.iter().find(|m| m.id == *cid) else {
                // lint: allow(panic, slot enumerates content_ids and results has one slot per id)
                results[slot] = Some(Err(WireError::Api(ApiError::new(
                    ApiErrorCode::UnknownContent,
                    format!("unknown content {cid}"),
                ))));
                continue;
            };
            let (session, request) = match PurchaseSession::begin(user, mint, meta, rng) {
                Ok(pair) => pair,
                Err(e) => {
                    // lint: allow(panic, slot enumerates content_ids and results has one slot per id)
                    results[slot] = Some(Err(WireError::Client(e)));
                    continue;
                }
            };
            let sent = self.next_corr();
            let envelope = RequestEnvelope {
                correlation_id: sent,
                body: WireRequest::Purchase(request),
            };
            match self.transport.submit(sent, &envelope.to_bytes()) {
                Ok(()) => {
                    sessions.insert(sent, (slot, session));
                }
                Err(t) if t.definitely_unsent() => {
                    session.recover(user);
                    // lint: allow(panic, slot enumerates content_ids and results has one slot per id)
                    results[slot] = Some(Err(WireError::Transport(t)));
                }
                Err(t) => {
                    session.park(user);
                    // lint: allow(panic, slot enumerates content_ids and results has one slot per id)
                    results[slot] = Some(Err(WireError::Transport(t)));
                }
            }
        }
        while !sessions.is_empty() {
            match self.transport.complete(None) {
                Ok(Some((corr, reply))) => {
                    let Some((slot, session)) = sessions.remove(&corr) else {
                        continue;
                    };
                    // lint: allow(panic, slot comes from sessions, which only holds valid slots)
                    results[slot] = Some(match Self::decode_reply(corr, &reply) {
                        Ok(WireResponse::Purchase(resp)) => Ok(session.finish(user, resp)),
                        Ok(WireResponse::Error(e)) => {
                            session.abort(user, &e);
                            Err(WireError::Api(e))
                        }
                        Ok(other) => {
                            session.park(user);
                            Err(unexpected("purchase", other))
                        }
                        Err(e) => {
                            session.park(user);
                            Err(e)
                        }
                    });
                }
                Ok(None) => {
                    let err = TransportError::Broken(
                        "transport reported nothing in flight while replies were outstanding"
                            .to_string(),
                    );
                    for (_, (slot, session)) in sessions.drain() {
                        session.park(user);
                        // lint: allow(panic, slot comes from sessions, which only holds valid slots)
                        results[slot] = Some(Err(WireError::Transport(err.clone())));
                    }
                }
                Err(e) => {
                    // Channel failure: every in-flight purchase is now
                    // ambiguous at once — park them all.
                    for (_, (slot, session)) in sessions.drain() {
                        session.park(user);
                        // lint: allow(panic, slot comes from sessions, which only holds valid slots)
                        results[slot] = Some(Err(WireError::Transport(e.clone())));
                    }
                }
            }
        }
        results
            .into_iter()
            // lint: allow(panic, the completion loop above resolves every slot)
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Privacy-preserving transfer over the wire (both agents are local
    /// to this client — e.g. a marketplace app handling the hand-over).
    ///
    /// Local state moves only after a decoded success response. That is
    /// deliberately conservative, and it leaves a known divergence
    /// window: if the provider **commits** the transfer but the response
    /// is lost or fails to decode, this call errors while the sender
    /// still holds a license the provider has already retired (the
    /// recipient's fresh license bytes were in the lost response and
    /// cannot be recovered here). After any ambiguous outcome — an
    /// [`WireError::Envelope`], [`WireError::CorrelationMismatch`] or
    /// [`WireError::UnexpectedResponse`] — repair the sender's view with
    /// [`WireClient::reconcile_transfer`], which re-queries the
    /// authoritative license status by id.
    pub fn transfer<R: CryptoRng + ?Sized>(
        &mut self,
        sender: &mut UserAgent,
        recipient: &mut UserAgent,
        license_id: LicenseId,
        _rng: &mut R,
    ) -> Result<License, WireError> {
        let owned = sender
            .license(&license_id)
            .ok_or(CoreError::UnknownLicense(license_id))?
            .clone();
        let recipient_cert = recipient
            .current_pseudonym()
            .ok_or(CoreError::BadPseudonym("recipient has no usable pseudonym"))?
            .clone();
        let proof_bytes = transfer_proof_bytes(&license_id, &recipient_cert.pseudonym_id());
        let proof = sender
            .card
            .sign_with_pseudonym(&owned.pseudonym, &proof_bytes)?;
        let recipient_pseudonym = recipient_cert.pseudonym_id();
        let request = TransferRequest {
            license: owned.license,
            recipient_cert,
            proof,
        };
        match self.call(WireRequest::Transfer(request))? {
            WireResponse::Transfer(resp) => {
                sender.remove_license(&license_id);
                recipient.note_pseudonym_use();
                recipient.add_license(resp.license.clone(), recipient_pseudonym);
                Ok(resp.license)
            }
            other => Err(unexpected("transfer", other)),
        }
    }

    /// Queries the provider's authoritative status of a license id.
    pub fn license_status(&mut self, license_id: LicenseId) -> Result<LicenseStatus, WireError> {
        match self.call(WireRequest::LicenseStatus(LicenseStatusRequest {
            license_id,
        }))? {
            WireResponse::LicenseStatus(resp) => Ok(resp.status),
            other => Err(unexpected("license-status", other)),
        }
    }

    /// Repairs the sender's local state after an ambiguous transfer
    /// outcome (see [`WireClient::transfer`]): re-queries the license's
    /// authoritative status and drops it locally when the provider has
    /// already retired it ([`LicenseStatus::Transferred`] — the transfer
    /// committed server-side — or [`LicenseStatus::Revoked`]). Returns
    /// `true` when a stale local license was dropped, `false` when the
    /// license is still active (the transfer never committed; the sender
    /// keeps it and may retry).
    pub fn reconcile_transfer(
        &mut self,
        sender: &mut UserAgent,
        license_id: LicenseId,
    ) -> Result<bool, WireError> {
        if let Some(m) = self.recovery.as_ref().and_then(|r| r.metrics.as_ref()) {
            m.reconciles.inc();
        }
        match self.license_status(license_id)? {
            LicenseStatus::Transferred | LicenseStatus::Revoked => {
                Ok(sender.remove_license(&license_id).is_some())
            }
            LicenseStatus::Active { .. } | LicenseStatus::Unknown => Ok(false),
        }
    }

    /// Plays a license on a device: the challenge/proof/key-release
    /// rounds run locally between device and card, only the anonymous
    /// download crosses the wire.
    pub fn play<SD: Kv, R: CryptoRng + ?Sized>(
        &mut self,
        user: &UserAgent,
        device: &mut CompliantDevice<SD>,
        license: &License,
        rng: &mut R,
    ) -> Result<Vec<u8>, WireError> {
        let now = self.server_now()?;
        let (session, request) = PlaySession::begin(user, device, license, now, rng)?;
        match self.call(WireRequest::Download(request))? {
            WireResponse::Download(resp) => Ok(session.finish(device, &resp)?),
            other => Err(unexpected("download", other)),
        }
    }

    /// Synchronizes the device's CRLs from the service.
    pub fn sync_crls<SD: Kv>(&mut self, device: &mut CompliantDevice<SD>) -> Result<(), WireError> {
        let request = CrlSyncRequest {
            license_seq: device.crl_sequence(),
            pseudonym_seq: 0,
        };
        match self.call(WireRequest::CrlSync(request))? {
            WireResponse::CrlSync(resp) => {
                self.now_hint = Some(resp.license_crl.issued_at);
                device.sync_crls(&resp.license_crl, &resp.pseudonym_crl)?;
                Ok(())
            }
            other => Err(unexpected("crl-sync", other)),
        }
    }

    /// Fetches the provider's unified metrics snapshot (requires the
    /// server's `metrics_dump` opt-in; otherwise answers
    /// [`ApiErrorCode::ServiceUnavailable`]). Convert with
    /// [`snapshot_from_dump`] for text/JSON exposition.
    pub fn metrics_dump(&mut self) -> Result<MetricsDumpResponse, WireError> {
        match self.call(WireRequest::MetricsDump(MetricsDumpRequest {}))? {
            WireResponse::MetricsDump(resp) => Ok(resp),
            other => Err(unexpected("metrics-dump", other)),
        }
    }

    /// The server clock, learned from the `issued_at` stamp of a signed
    /// CRL (cached after the first probe; the paper's devices sync CRLs
    /// anyway, so this costs nothing extra in practice).
    fn server_now(&mut self) -> Result<u64, WireError> {
        if let Some(now) = self.now_hint {
            return Ok(now);
        }
        match self.call(WireRequest::CrlSync(CrlSyncRequest {
            license_seq: 0,
            pseudonym_seq: 0,
        }))? {
            WireResponse::CrlSync(resp) => {
                self.now_hint = Some(resp.license_crl.issued_at);
                Ok(resp.license_crl.issued_at)
            }
            other => Err(unexpected("crl-sync", other)),
        }
    }
}

fn unexpected(expected: &'static str, got: WireResponse) -> WireError {
    match got {
        WireResponse::Error(e) => WireError::Api(e),
        other => WireError::UnexpectedResponse {
            expected,
            got: other.label(),
        },
    }
}

// ---------------------------------------------------------------------------
// Client-side session state machines
// ---------------------------------------------------------------------------

/// Client half of blind pseudonym issuance.
///
/// `begin` (card builds body + escrow, blinds, authenticates) →
/// *wire round trip* → `finish` (unblind, self-check, store).
pub struct PseudonymIssueSession {
    body: PseudonymCertBody,
    blinded: Blinded,
}

impl PseudonymIssueSession {
    /// Card-side first round: returns the session and the request to
    /// send.
    pub fn begin<R: CryptoRng + ?Sized>(
        user: &mut UserAgent,
        ra_blind_key: &RsaPublicKey,
        ttp_key: &ElGamalPublicKey,
        epoch: u32,
        rng: &mut R,
    ) -> Result<(Self, PseudonymIssueRequest), CoreError> {
        let body = user.card.begin_pseudonym(ttp_key, epoch, rng)?;
        let blinded = Blinded::new(ra_blind_key, &body.signing_bytes(), rng)?;
        let auth_sig =
            user.card
                .sign_with_master(&crate::protocol::messages::pseudonym_auth_bytes(
                    &user.card.card_id(),
                    &blinded.blinded,
                ))?;
        let request = PseudonymIssueRequest {
            card_id: user.card.card_id(),
            card_cert: user.card.master_cert().clone(),
            blinded: blinded.blinded.clone(),
            auth_sig,
        };
        Ok((PseudonymIssueSession { body, blinded }, request))
    }

    /// Card-side final round: unblind the RA's signature, verify the
    /// resulting certificate, store it on the agent.
    pub fn finish(
        self,
        user: &mut UserAgent,
        ra_blind_key: &RsaPublicKey,
        response: &PseudonymIssueResponse,
    ) -> Result<KeyId, CoreError> {
        let signature = self.blinded.unblind(ra_blind_key, &response.blind_sig)?;
        let cert = PseudonymCertificate {
            body: self.body,
            signature,
        };
        cert.verify(ra_blind_key)
            .map_err(|_| CoreError::BadPseudonym("unblinded signature invalid"))?;
        let id = cert.pseudonym_id();
        user.add_pseudonym(cert);
        Ok(id)
    }
}

/// Client half of blind attribute issuance (binds to the current
/// pseudonym).
pub struct AttributeIssueSession {
    attribute: String,
    attribute_key: RsaPublicKey,
    body: AttributeCertBody,
    blinded: Blinded,
}

impl AttributeIssueSession {
    /// Card-side first round.
    pub fn begin<R: CryptoRng + ?Sized>(
        user: &mut UserAgent,
        attribute: &str,
        attribute_key: &RsaPublicKey,
        epoch: u32,
        rng: &mut R,
    ) -> Result<(Self, AttributeIssueRequest), CoreError> {
        let pseudonym_cert = user
            .current_pseudonym()
            .ok_or(CoreError::BadPseudonym("no usable pseudonym to bind to"))?;
        let body = AttributeCertBody {
            pseudonym_key: pseudonym_cert.body.pseudonym_key.clone(),
            epoch,
        };
        let blinded = Blinded::new(attribute_key, &body.signing_bytes(), rng)?;
        let auth_sig =
            user.card
                .sign_with_master(&crate::protocol::messages::attribute_auth_bytes(
                    &user.card.card_id(),
                    attribute,
                    &blinded.blinded,
                ))?;
        let request = AttributeIssueRequest {
            card_id: user.card.card_id(),
            card_cert: user.card.master_cert().clone(),
            attribute: attribute.to_string(),
            blinded: blinded.blinded.clone(),
            auth_sig,
        };
        Ok((
            AttributeIssueSession {
                attribute: attribute.to_string(),
                attribute_key: attribute_key.clone(),
                body,
                blinded,
            },
            request,
        ))
    }

    /// Card-side final round.
    pub fn finish(
        self,
        user: &mut UserAgent,
        response: &AttributeIssueResponse,
    ) -> Result<KeyId, CoreError> {
        let signature = self
            .blinded
            .unblind(&self.attribute_key, &response.blind_sig)?;
        let cert = p2drm_pki::cert::AttributeCertificate {
            attribute: self.attribute,
            body: self.body,
            signature,
        };
        cert.verify(&self.attribute_key)
            .map_err(|_| CoreError::BadPseudonym("unblinded attribute signature invalid"))?;
        let id = cert.pseudonym_id();
        user.add_attribute_cert(cert);
        Ok(id)
    }
}

/// Client half of an anonymous purchase: quote → pay (coin withdrawal
/// with the mint) → request → settle, with coin recovery on non-payment
/// failures (mirrors [`crate::protocol::purchase()`]).
pub struct PurchaseSession {
    /// The withdrawn coin, kept so [`PurchaseSession::abort`] can return
    /// it to the wallet (the rest of the request needs no unwinding).
    coin: p2drm_payment::Coin,
    pseudonym: KeyId,
}

impl PurchaseSession {
    /// Builds the purchase request from a catalog quote: attaches the
    /// current pseudonym, a covering coin, and the attribute credential
    /// when the item demands one.
    pub fn begin<R: CryptoRng + ?Sized>(
        user: &mut UserAgent,
        mint: &Mint,
        meta: &ContentMeta,
        rng: &mut R,
    ) -> Result<(Self, PurchaseRequest), CoreError> {
        let pseudonym_cert = user
            .current_pseudonym()
            .ok_or(CoreError::BadPseudonym("no usable pseudonym (policy)"))?
            .clone();
        let attribute_cert = match &meta.required_attribute {
            None => None,
            Some(attr) => Some(
                user.attribute_cert_for(&pseudonym_cert.pseudonym_id(), attr)
                    .ok_or(CoreError::BadPseudonym(
                        "attribute credential required but not held for this pseudonym",
                    ))?
                    .clone(),
            ),
        };
        let account = user.account.clone();
        let coin = user
            .wallet
            .coin_for_amount(mint, &account, meta.price, rng)?;
        let request = PurchaseRequest {
            content_id: meta.id,
            pseudonym_cert,
            coin,
            attribute_cert,
        };
        Ok((
            PurchaseSession {
                coin: request.coin.clone(),
                pseudonym: request.pseudonym_cert.pseudonym_id(),
            },
            request,
        ))
    }

    /// Settles a successful purchase: bookkeeping on the agent, returns
    /// the license.
    pub fn finish(self, user: &mut UserAgent, response: PurchaseResponse) -> License {
        user.note_pseudonym_use();
        user.add_license(response.license.clone(), self.pseudonym);
        response.license
    }

    /// Unwinds a failed purchase: the withdrawn coin goes back to the
    /// wallet unless the failure was a payment error (the mint consumed
    /// or rejected the coin — re-spending it would double-spend).
    pub fn abort(self, user: &mut UserAgent, error: &ApiError) {
        if !error.code.is_payment() {
            user.wallet.put_back(self.coin);
        }
    }

    /// Parks the coin after an **ambiguous** outcome — the request went
    /// out but no decodable answer came back, so the provider may or may
    /// not have deposited the coin. It moves to the wallet's pending
    /// pool: not spendable (that could double-spend), not lost (the
    /// wallet reconciles it later).
    pub fn park(self, user: &mut UserAgent) {
        user.wallet.park(self.coin);
    }

    /// Returns the coin to the spendable wallet after a failure that
    /// **provably never reached the service**
    /// ([`TransportError::definitely_unsent`]): nothing was deposited,
    /// so re-spending cannot double-spend.
    pub fn recover(self, user: &mut UserAgent) {
        user.wallet.put_back(self.coin);
    }
}

/// Client half of play: the device↔card challenge/proof/key-release
/// rounds run locally in `begin`; the provider only ever sees the
/// anonymous [`DownloadRequest`], and `finish` decrypts + consumes.
pub struct PlaySession {
    content_key: [u8; 32],
    license: License,
    access: AccessRequest,
}

impl PlaySession {
    /// Local rounds: holder challenge, card proof, device compliance
    /// check, key release. Returns the single message that crosses the
    /// wire.
    pub fn begin<SD: Kv, R: CryptoRng + ?Sized>(
        user: &UserAgent,
        device: &mut CompliantDevice<SD>,
        license: &License,
        now: u64,
        rng: &mut R,
    ) -> Result<(Self, DownloadRequest), CoreError> {
        let owned = user
            .license(&license.id())
            .ok_or(CoreError::UnknownLicense(license.id()))?;
        let pseudonym_cert = user
            .pseudonym_certs()
            .iter()
            .find(|c| c.pseudonym_id() == owned.pseudonym)
            .ok_or(CoreError::BadPseudonym(
                "certificate for holder key missing",
            ))?;

        let nonce = device.make_challenge(rng);
        let proof_sig = user
            .card
            .sign_with_pseudonym(&owned.pseudonym, &challenge_message(&nonce, &license.id()))?;
        let access = AccessRequest::play(now, device.binding_id());
        device.check_access(license, Some(pseudonym_cert), &nonce, &proof_sig, &access)?;
        let sealed = user.card.unwrap_and_reseal(
            &owned.pseudonym,
            &license.body.key_envelope,
            device.public_key(),
            rng,
        )?;
        let content_key = device.open_sealed_key(&sealed)?;
        Ok((
            PlaySession {
                content_key,
                license: license.clone(),
                access,
            },
            DownloadRequest {
                content_id: license.body.content_id,
            },
        ))
    }

    /// Decrypts the downloaded payload and consumes the play on the
    /// device.
    pub fn finish<SD: Kv>(
        self,
        device: &mut CompliantDevice<SD>,
        response: &DownloadResponse,
    ) -> Result<Vec<u8>, CoreError> {
        let payload = crate::content::decrypt_payload(
            &self.content_key,
            &response.nonce,
            &response.ciphertext,
        );
        device.consume(&self.license, &self.access)?;
        Ok(payload)
    }
}
