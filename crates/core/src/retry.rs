//! Client-side recovery policy primitives: exponential backoff with
//! deterministic jitter, per-op deadlines, a per-client retry *budget*,
//! and a circuit breaker.
//!
//! These are deliberately transport-agnostic plain types — the wire
//! client composes them (see `service::Recovery`), and the TCP
//! transport's connect loop runs on the same [`RetryPolicy`] instead of
//! a bespoke `sleep(backoff * attempt)` loop. All randomness is
//! deterministic: the jitter for retry *n* is a pure function of
//! `(jitter_seed, n)`, so a seeded run replays byte-identically.
//!
//! The retry **budget** bounds amplification: every retry (not first
//! attempt) spends one token, and every success deposits a fraction of
//! a token back. Under a persistent outage a client therefore sends
//! `initial + success_rate × deposit` retries, not `max_attempts ×`
//! its offered load — the difference between a thundering herd and
//! cooperative degradation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Whether an operation may be blindly re-sent after an *ambiguous*
/// failure (the request may have been dispatched and its reply lost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Idempotency {
    /// Re-executing is harmless: reads, issuance rounds that the server
    /// dedupes, CRL sync. Retried on any transport failure.
    Safe,
    /// Re-executing can double-commit (purchase deposits a coin,
    /// transfer retires a license): retried only when the failure proves
    /// the request never left this host, or the server answered with a
    /// pre-dispatch busy shed; anything ambiguous must go through the
    /// reconcile path (coin parking / `LicenseStatus`) instead.
    MustReconcile,
}

/// Backoff/deadline/attempt policy for one logical operation.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// First retry's backoff; retry *n* waits `base × 2^(n-1)` (capped).
    pub base_backoff: Duration,
    /// Upper bound on a single backoff pause.
    pub max_backoff: Duration,
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Wall-clock budget for the whole operation, retries included.
    /// `None` leaves the operation bounded by attempts alone.
    pub op_deadline: Option<Duration>,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(640),
            max_attempts: 4,
            op_deadline: Some(Duration::from_secs(10)),
            jitter_seed: 0,
        }
    }
}

/// SplitMix64 — the jitter stream's mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Policy with a specific jitter seed (chaos drills replay runs).
    pub fn seeded(seed: u64) -> Self {
        RetryPolicy {
            jitter_seed: seed,
            ..Self::default()
        }
    }

    /// The pause before retry `retry` (1-based; `0` — the first attempt
    /// — returns zero, fixing the classic `backoff * attempt` loop that
    /// sleeps 0ms before its first retry). Exponential in the retry
    /// index, capped at [`RetryPolicy::max_backoff`], then scaled by a
    /// deterministic jitter factor in `[0.5, 1.0]` so synchronized
    /// clients de-synchronize without losing replayability.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let exp = retry.min(20) - 1; // 2^20 × base already exceeds any cap in use
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        // Jitter in [1/2, 1]: keep the top bit, randomize the rest.
        let j = splitmix64(self.jitter_seed ^ u64::from(retry));
        let frac = 0.5 + (j >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        raw.mul_f64(frac)
    }

    /// Sleeps the backoff for retry `retry`, raised to at least `floor`
    /// (a server's `retry_after_ms` hint). Returns the pause actually
    /// taken. This is the policy's single sleeping call site — retry
    /// loops elsewhere must route their waiting through here (enforced
    /// by the `retry` lint pass).
    pub fn pause(&self, retry: u32, floor: Duration) -> Duration {
        let d = self.backoff(retry).max(floor);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Runs `attempt_fn` up to [`RetryPolicy::max_attempts`] times,
    /// pausing per [`RetryPolicy::backoff`] between attempts and
    /// respecting the deadline (an attempt whose preceding pause would
    /// cross the deadline is not made). `attempt_fn` receives the
    /// 0-based attempt index. The connect loop in `p2drm-net` runs on
    /// this instead of a hand-rolled sleep loop.
    pub fn run<T, E>(&self, mut attempt_fn: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let deadline = self.op_deadline.map(|d| Instant::now() + d);
        let mut last_err: Option<E> = None;
        for attempt in 0..self.max_attempts.max(1) {
            if attempt > 0 {
                let pause = self.backoff(attempt);
                if let Some(dl) = deadline {
                    if Instant::now() + pause >= dl {
                        break;
                    }
                }
                self.pause(attempt, Duration::ZERO);
            }
            match attempt_fn(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
        }
        // max_attempts >= 1 guarantees at least one attempt ran, and the
        // only paths here are "attempts exhausted" or "deadline hit
        // after a failure" — both recorded an error.
        Err(last_err.expect("at least one attempt always runs"))
    }
}

/// Token-bucket retry budget shared by every operation on one client.
///
/// Retries spend a whole token; successes deposit `refill_permille`
/// thousandths of a token (capped at the initial balance). Tokens are
/// tracked in millitokens on one atomic, so the budget is cheap and
/// safely shared across threads.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicU64,
    cap_millitokens: u64,
    refill_permille: u64,
}

impl RetryBudget {
    /// Budget holding `initial` retry tokens, refilled by
    /// `refill_permille`/1000 of a token per recorded success.
    pub fn new(initial: u32, refill_permille: u32) -> Self {
        let cap = u64::from(initial) * 1000;
        RetryBudget {
            millitokens: AtomicU64::new(cap),
            cap_millitokens: cap,
            refill_permille: u64::from(refill_permille),
        }
    }

    /// Spends one retry token. `false` means the budget is exhausted —
    /// the caller must give up rather than amplify load.
    pub fn try_spend(&self) -> bool {
        self.millitokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                t.checked_sub(1000)
            })
            .is_ok()
    }

    /// Records a successful operation, depositing the refill fraction.
    pub fn on_success(&self) {
        let cap = self.cap_millitokens;
        let refill = self.refill_permille;
        let _ = self
            .millitokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some((t + refill).min(cap))
            });
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u32 {
        (self.millitokens.load(Ordering::Relaxed) / 1000) as u32
    }
}

/// Circuit-breaker state (the classic three states).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected locally until the cooldown ends.
    Open,
    /// Cooldown elapsed: probe requests test whether the peer recovered.
    HalfOpen,
}

/// Verdict from [`CircuitBreaker::admit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Closed: proceed normally.
    Allowed,
    /// Half-open: proceed, and this request's outcome decides the state.
    Probe,
    /// Open: do not send; fail fast locally.
    Rejected,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// Consecutive-failure circuit breaker: trips open after
/// `failure_threshold` consecutive failures, rejects locally for
/// `cooldown`, then half-opens and lets a probe through; the probe's
/// outcome closes it or re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
    transitions: AtomicU64,
}

impl CircuitBreaker {
    /// Breaker tripping after `failure_threshold` consecutive failures
    /// and cooling down for `cooldown`.
    pub fn new(failure_threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            transitions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        // Breaker state is advisory; a poisoned lock's last write is safe
        // to observe.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn transition(&self, inner: &mut BreakerInner, to: BreakerState) {
        if inner.state != to {
            inner.state = to;
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Gate before sending a request.
    pub fn admit(&self) -> Admit {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Admit::Allowed,
            BreakerState::HalfOpen => Admit::Probe,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if cooled {
                    self.transition(&mut inner, BreakerState::HalfOpen);
                    Admit::Probe
                } else {
                    Admit::Rejected
                }
            }
        }
    }

    /// Records a successful exchange; closes the breaker.
    pub fn on_success(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        self.transition(&mut inner, BreakerState::Closed);
    }

    /// Records a failed exchange; trips the breaker at the threshold
    /// (and immediately from half-open — a failed probe re-opens).
    pub fn on_failure(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = inner.state == BreakerState::HalfOpen
            || inner.consecutive_failures >= self.failure_threshold;
        if trip {
            inner.opened_at = Some(Instant::now());
            self.transition(&mut inner, BreakerState::Open);
        }
    }

    /// Current state (advisory — may change immediately after).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Total state transitions since construction (feeds the
    /// `client_breaker_transitions` counter).
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_zero_then_exponential_and_capped() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            max_attempts: 10,
            op_deadline: None,
            jitter_seed: 7,
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        for retry in 1..10u32 {
            let unjittered = Duration::from_millis(10)
                .saturating_mul(1 << (retry - 1))
                .min(Duration::from_millis(100));
            let b = p.backoff(retry);
            assert!(
                b <= unjittered,
                "jitter only shrinks: {b:?} vs {unjittered:?}"
            );
            assert!(b >= unjittered.mul_f64(0.5), "jitter floor is 1/2");
        }
        // Cap holds even at absurd retry counts.
        assert!(p.backoff(64) <= Duration::from_millis(100));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy::seeded(42);
        let b = RetryPolicy::seeded(42);
        let c = RetryPolicy::seeded(43);
        let seq = |p: &RetryPolicy| (1..8).map(|i| p.backoff(i)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b), "same seed, same schedule");
        assert_ne!(seq(&a), seq(&c), "different seed, different jitter");
    }

    #[test]
    fn run_retries_until_success_and_reports_last_error() {
        let p = RetryPolicy {
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(4),
            max_attempts: 4,
            op_deadline: None,
            jitter_seed: 1,
        };
        let mut calls = 0;
        let out: Result<u32, &str> = p.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err("nope")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);

        let out: Result<(), String> = p.run(|attempt| Err(format!("fail {attempt}")));
        assert_eq!(out, Err("fail 3".to_string()), "last error surfaces");
    }

    #[test]
    fn budget_spends_and_refills() {
        let b = RetryBudget::new(2, 500); // 2 tokens, half a token back per success
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "exhausted");
        b.on_success();
        assert!(!b.try_spend(), "half a token is not a token");
        b.on_success();
        assert!(b.try_spend(), "two successes funded one retry");
        for _ in 0..100 {
            b.on_success();
        }
        assert_eq!(b.available(), 2, "refill caps at the initial balance");
    }

    #[test]
    fn breaker_trips_half_opens_and_recovers() {
        let br = CircuitBreaker::new(3, Duration::from_millis(1));
        assert_eq!(br.admit(), Admit::Allowed);
        br.on_failure();
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Closed, "below threshold");
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.admit(), Admit::Rejected);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(br.admit(), Admit::Probe, "cooldown elapsed: half-open");
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Open, "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(br.admit(), Admit::Probe);
        br.on_success();
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.admit(), Admit::Allowed);
        assert_eq!(br.transitions(), 5, "closed→open→half→open→half→closed");
    }
}
