//! Typed random identifiers.
//!
//! Every identifier is 16 random bytes — unguessable, collision-free at
//! simulation scale, and *meaningless*: an id carries no information about
//! who created it, which is a privacy requirement for [`LicenseId`] in
//! particular (the paper's anonymous licenses are identified solely by a
//! unique random id).

use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::rng::CryptoRng;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub [u8; 16]);

        impl $name {
            /// Generates a fresh random id.
            pub fn random<R: CryptoRng + ?Sized>(rng: &mut R) -> Self {
                let mut b = [0u8; 16];
                rng.fill_bytes(&mut b);
                $name(b)
            }

            /// Deterministic id from a label (tests and fixtures).
            pub fn from_label(label: &str) -> Self {
                let digest = p2drm_crypto::sha256::sha256_concat(&[
                    $tag.as_bytes(),
                    label.as_bytes(),
                ]);
                $name(digest[..16].try_into().unwrap())
            }

            /// The raw bytes.
            pub fn as_bytes(&self) -> &[u8; 16] {
                &self.0
            }

            /// Full hex rendering.
            pub fn to_hex(&self) -> String {
                self.0.iter().map(|b| format!("{b:02x}")).collect()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Short form: tag + first 6 bytes.
                write!(f, "{}:{}", $tag, &self.to_hex()[..12])
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{self}")
            }
        }

        impl Encode for $name {
            fn encode(&self, w: &mut Writer) {
                w.put_raw(&self.0);
            }
        }

        impl Decode for $name {
            fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
                Ok($name(r.get_raw(16)?.try_into().expect("fixed width")))
            }
        }
    };
}

define_id!(
    /// A real-world user identity (known to the RA, escrowed to the TTP,
    /// and — in the privacy-preserving flow — *never* sent to providers).
    UserId,
    "user"
);
define_id!(
    /// A smart card.
    CardId,
    "card"
);
define_id!(
    /// A compliant device.
    DeviceId,
    "dev"
);
define_id!(
    /// A content item in a provider's catalog.
    ContentId,
    "content"
);
define_id!(
    /// A license. Unique per issuance; the spent-ID store keyed by this id
    /// is what makes anonymous licenses single-redeemable.
    LicenseId,
    "lic"
);

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn random_ids_distinct() {
        let mut rng = test_rng(1);
        let a = LicenseId::random(&mut rng);
        let b = LicenseId::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn labeled_ids_deterministic_and_tag_separated() {
        assert_eq!(UserId::from_label("alice"), UserId::from_label("alice"));
        assert_ne!(UserId::from_label("alice"), UserId::from_label("bob"));
        // Same label, different type => different bytes (tag separation).
        assert_ne!(UserId::from_label("x").0, CardId::from_label("x").0);
    }

    #[test]
    fn display_is_short_and_tagged() {
        let id = ContentId::from_label("song");
        let s = id.to_string();
        assert!(s.starts_with("content:"));
        assert!(s.len() < 24);
        assert_eq!(id.to_hex().len(), 32);
    }

    #[test]
    fn codec_roundtrip() {
        let id = DeviceId::from_label("tv");
        let bytes = p2drm_codec::to_bytes(&id);
        assert_eq!(bytes.len(), 16);
        assert_eq!(p2drm_codec::from_bytes::<DeviceId>(&bytes).unwrap(), id);
    }
}
