//! The baseline: conventional identity-bound DRM.
//!
//! This is the comparator for every benchmark — exactly what the paper's
//! scheme replaces. Purchases are identified charges, licenses bind to the
//! user's master key, and the provider's purchase log links every sale to
//! an account name.

use crate::content::ContentCatalog;
use crate::entities::device::{challenge_message, CompliantDevice};
use crate::entities::user::UserAgent;
use crate::ids::{ContentId, LicenseId};
use crate::license::{License, LicenseBody};
use crate::{CoreError, Party, Transcript};
use p2drm_crypto::envelope;
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use p2drm_payment::identified::PaymentProcessor;
use p2drm_pki::authority::CertificateAuthority;
use p2drm_pki::cert::{Certificate, EntityKind, SubjectKey, Validity};
use p2drm_rel::{AccessRequest, Rights};
use p2drm_store::Kv;
use std::collections::HashMap;

/// A conventional (non-private) DRM provider.
pub struct BaselineProvider {
    keys: RsaKeyPair,
    cert: Certificate,
    catalog: ContentCatalog,
    rights_templates: HashMap<ContentId, Rights>,
    processor: PaymentProcessor,
    /// account -> purchases: the linkable record the paper eliminates.
    purchase_log: Vec<(String, ContentId)>,
}

impl BaselineProvider {
    /// Creates a baseline provider chaining to `root`.
    pub fn new<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        processor: PaymentProcessor,
        key_bits: usize,
        validity: Validity,
        rng: &mut R,
    ) -> Self {
        let keys = RsaKeyPair::generate(key_bits, rng);
        let cert = root.issue(
            EntityKind::ContentProvider,
            SubjectKey::Rsa(keys.public().clone()),
            validity,
            vec![],
        );
        BaselineProvider {
            keys,
            cert,
            catalog: ContentCatalog::new(),
            rights_templates: HashMap::new(),
            processor,
            purchase_log: Vec::new(),
        }
    }

    /// License verification key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Provider certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Publishes content (same shape as the private provider).
    pub fn publish<R: CryptoRng + ?Sized>(
        &mut self,
        title: impl Into<String>,
        price: u64,
        payload: &[u8],
        rights: Rights,
        rng: &mut R,
    ) -> ContentId {
        let id = self.catalog.publish(title, price, payload, rng);
        self.rights_templates.insert(id, rights);
        id
    }

    /// Identified purchase: charge the account, bind the license to the
    /// user's master (identity) key.
    #[allow(clippy::too_many_arguments)]
    pub fn purchase_identified<R: CryptoRng + ?Sized>(
        &mut self,
        user: &mut UserAgent,
        ra_identity_key: &RsaPublicKey,
        content_id: ContentId,
        now: u64,
        now_epoch: u32,
        rng: &mut R,
        transcript: &mut Transcript,
    ) -> Result<License, CoreError> {
        // User sends identity certificate + account — fully identifying.
        user.card.master_cert().verify(ra_identity_key, now)?;
        let mut id_msg = user.account.clone().into_bytes();
        id_msg.extend_from_slice(&p2drm_codec::to_bytes(user.card.master_cert()));
        transcript.record(Party::User, Party::Provider, "identified-request", id_msg);

        let item = self
            .catalog
            .get(&content_id)
            .ok_or(CoreError::UnknownContent(content_id))?;
        let receipt = self.processor.charge(&user.account, item.meta.price)?;
        transcript.record(
            Party::Provider,
            Party::Mint,
            "card-charge",
            p2drm_codec::to_bytes(&receipt),
        );

        let rights = self
            .rights_templates
            .get(&content_id)
            .cloned()
            .unwrap_or_else(Rights::standard_purchase);
        let body = LicenseBody {
            license_id: LicenseId::random(rng),
            content_id,
            holder: user.card.master_public().clone(),
            rights,
            key_envelope: envelope::seal(user.card.master_public(), &item.key, rng),
            issued_epoch: now_epoch,
        };
        let license = License::issue(body, &self.keys);
        transcript.record(
            Party::Provider,
            Party::User,
            "license",
            p2drm_codec::to_bytes(&license),
        );
        self.purchase_log.push((user.account.clone(), content_id));
        user.add_license(
            license.clone(),
            p2drm_pki::cert::KeyId::of_rsa(user.card.master_public()),
        );
        Ok(license)
    }

    /// Anonymous-equivalent of download (the payload itself is identical).
    pub fn download(&self, content_id: &ContentId) -> Result<([u8; 12], Vec<u8>), CoreError> {
        let item = self
            .catalog
            .get(content_id)
            .ok_or(CoreError::UnknownContent(*content_id))?;
        Ok((item.nonce, item.ciphertext.clone()))
    }

    /// The provider's linkable sales record.
    pub fn purchase_log(&self) -> &[(String, ContentId)] {
        &self.purchase_log
    }

    /// The payment processor (shared with the system).
    pub fn processor(&self) -> &PaymentProcessor {
        &self.processor
    }
}

/// Identity-bound playback: same device enforcement loop, but the holder
/// key is the master key and no pseudonym certificate is involved.
pub fn play_identified<SD: Kv, R: CryptoRng + ?Sized>(
    user: &UserAgent,
    device: &mut CompliantDevice<SD>,
    provider: &BaselineProvider,
    license: &License,
    now: u64,
    rng: &mut R,
    transcript: &mut Transcript,
) -> Result<Vec<u8>, CoreError> {
    let nonce = device.make_challenge(rng);
    let proof = user
        .card
        .sign_with_master(&challenge_message(&nonce, &license.id()))?;
    transcript.record(
        Party::Card,
        Party::Device,
        "holder-proof",
        p2drm_codec::to_bytes(&proof),
    );
    let req = AccessRequest::play(now, device.binding_id());
    device.check_access(license, None, &nonce, &proof, &req)?;

    let sealed =
        user.card
            .unwrap_master_and_reseal(&license.body.key_envelope, device.public_key(), rng)?;
    transcript.record(
        Party::Card,
        Party::Device,
        "key-release",
        p2drm_codec::to_bytes(&sealed),
    );
    let content_key = device.open_sealed_key(&sealed)?;
    let (content_nonce, ciphertext) = provider.download(&license.body.content_id)?;
    transcript.record(
        Party::Provider,
        Party::Device,
        "download-response",
        ciphertext.clone(),
    );
    let payload = crate::content::decrypt_payload(&content_key, &content_nonce, &ciphertext);
    device.consume(license, &req)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn identified_purchase_and_play() {
        let mut rng = test_rng(210);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_baseline_content("B", 100, b"BASELINE DATA", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 1000);

        let mut t = Transcript::new();
        let ra_key = sys.ra.identity_public().clone();
        let license = sys
            .baseline
            .purchase_identified(
                &mut alice,
                &ra_key,
                cid,
                sys.now(),
                sys.epoch(),
                &mut rng,
                &mut t,
            )
            .unwrap();
        assert!(license.verify(sys.baseline.public_key()).is_ok());

        let mut device = sys.register_baseline_device(&mut rng).unwrap();
        let mut t2 = Transcript::new();
        let payload = play_identified(
            &alice,
            &mut device,
            &sys.baseline,
            &license,
            sys.now(),
            &mut rng,
            &mut t2,
        )
        .unwrap();
        assert_eq!(payload, b"BASELINE DATA");
    }

    #[test]
    fn baseline_leaks_identity_by_design() {
        // The contrast test: the baseline purchase transcript DOES carry
        // the account name to the provider — the leak P2DRM removes.
        let mut rng = test_rng(211);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_baseline_content("B", 100, b"D", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        sys.fund(&alice, 1000);
        let mut t = Transcript::new();
        let ra_key = sys.ra.identity_public().clone();
        sys.baseline
            .purchase_identified(
                &mut alice,
                &ra_key,
                cid,
                sys.now(),
                sys.epoch(),
                &mut rng,
                &mut t,
            )
            .unwrap();
        assert!(t.scan_for(Party::Provider, alice.account.as_bytes()));
        assert_eq!(sys.baseline.purchase_log().len(), 1);
        assert_eq!(sys.baseline.purchase_log()[0].0, alice.account);
    }

    #[test]
    fn unfunded_account_rejected() {
        let mut rng = test_rng(212);
        let mut sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_baseline_content("B", 100, b"D", &mut rng);
        let mut alice = sys.register_user("alice", &mut rng).unwrap();
        let mut t = Transcript::new();
        let ra_key = sys.ra.identity_public().clone();
        let res = sys.baseline.purchase_identified(
            &mut alice,
            &ra_key,
            cid,
            sys.now(),
            sys.epoch(),
            &mut rng,
            &mut t,
        );
        assert!(matches!(res, Err(CoreError::Payment(_))));
    }
}
