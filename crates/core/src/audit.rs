//! Protocol transcripts: every protocol engine logs each message it sends
//! with its exact canonical byte size.
//!
//! Transcripts serve three purposes:
//!
//! 1. **Experiment E1** — message count / byte cost per protocol, the
//!    "Table 1" artifact in EXPERIMENTS.md;
//! 2. **Privacy auditing** — [`Transcript::scan_for`] greps the raw bytes
//!    of everything a given party *received* for a forbidden needle (e.g.
//!    the user id) — the machine-checkable version of the paper's "the
//!    provider learns nothing identifying" claim;
//! 3. **T-figures** — rendered transcripts reproduce the paper's protocol
//!    figures as executable artifacts.

use std::fmt;

/// Protocol principals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Party {
    /// The human-side agent software.
    User,
    /// The tamper-resistant smart card.
    Card,
    /// Registration authority.
    Ra,
    /// Content provider / license server.
    Provider,
    /// Compliant rendering device.
    Device,
    /// Anonymity-revocation trusted third party.
    Ttp,
    /// E-cash mint.
    Mint,
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Party::User => "User",
            Party::Card => "Card",
            Party::Ra => "RA",
            Party::Provider => "Provider",
            Party::Device => "Device",
            Party::Ttp => "TTP",
            Party::Mint => "Mint",
        };
        write!(f, "{s}")
    }
}

/// One logged message.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Sender.
    pub from: Party,
    /// Receiver.
    pub to: Party,
    /// Message label (stable, used in reports).
    pub label: &'static str,
    /// The canonical message bytes.
    pub bytes: Vec<u8>,
}

/// An ordered protocol transcript.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    entries: Vec<Entry>,
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logs a message (engines call this with `p2drm_codec::to_bytes`).
    pub fn record(&mut self, from: Party, to: Party, label: &'static str, bytes: Vec<u8>) {
        self.entries.push(Entry {
            from,
            to,
            label,
            bytes,
        });
    }

    /// Logged messages in order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of messages.
    pub fn message_count(&self) -> usize {
        self.entries.len()
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes.len()).sum()
    }

    /// Bytes received by `party`.
    pub fn bytes_received_by(&self, party: Party) -> usize {
        self.entries
            .iter()
            .filter(|e| e.to == party)
            .map(|e| e.bytes.len())
            .sum()
    }

    /// True if any message **received by** `party` contains `needle`.
    ///
    /// This is the leak detector: after a purchase, the provider's received
    /// bytes must not contain the user id, master-key fingerprint, or
    /// account name.
    pub fn scan_for(&self, party: Party, needle: &[u8]) -> bool {
        if needle.is_empty() {
            return false;
        }
        self.entries
            .iter()
            .filter(|e| e.to == party)
            .any(|e| e.bytes.windows(needle.len()).any(|w| w == needle))
    }

    /// Renders the transcript as an ASCII protocol figure (the T-figures
    /// in EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "  {:<8} -> {:<8}  {:<28} {:>6} B\n",
                e.from.to_string(),
                e.to.to_string(),
                e.label,
                e.bytes.len()
            ));
        }
        out.push_str(&format!(
            "  total: {} messages, {} bytes\n",
            self.message_count(),
            self.total_bytes()
        ));
        out
    }

    /// Appends another transcript (protocol composition).
    pub fn extend(&mut self, other: Transcript) {
        self.entries.extend(other.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transcript {
        let mut t = Transcript::new();
        t.record(
            Party::User,
            Party::Provider,
            "purchase-request",
            vec![1, 2, 3, 42, 5],
        );
        t.record(Party::Provider, Party::Mint, "deposit", vec![9; 10]);
        t.record(Party::Provider, Party::User, "license", vec![7; 20]);
        t
    }

    #[test]
    fn counting_and_sizing() {
        let t = sample();
        assert_eq!(t.message_count(), 3);
        assert_eq!(t.total_bytes(), 35);
        assert_eq!(t.bytes_received_by(Party::Provider), 5);
        assert_eq!(t.bytes_received_by(Party::User), 20);
        assert_eq!(t.bytes_received_by(Party::Ttp), 0);
    }

    #[test]
    fn scan_finds_needles_only_in_received() {
        let t = sample();
        assert!(t.scan_for(Party::Provider, &[3, 42]));
        assert!(!t.scan_for(Party::Provider, &[42, 3]));
        // Provider *sent* [9;10] but never received it.
        assert!(!t.scan_for(Party::Provider, &[9, 9]));
        assert!(t.scan_for(Party::Mint, &[9, 9]));
        assert!(!t.scan_for(Party::Provider, &[]));
    }

    #[test]
    fn render_contains_rows_and_totals() {
        let s = sample().render();
        assert!(s.contains("purchase-request"));
        assert!(s.contains("total: 3 messages, 35 bytes"));
    }

    #[test]
    fn extend_composes() {
        let mut a = sample();
        let b = sample();
        a.extend(b);
        assert_eq!(a.message_count(), 6);
    }
}
