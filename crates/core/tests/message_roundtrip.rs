//! Round-trip property tests for every protocol message: the canonical
//! encoding decodes back to an equal value, and the strict
//! `p2drm_codec::from_bytes` rejects any input with trailing bytes —
//! which is what makes the wire envelopes in `p2drm_core::service`
//! dispatchable without ambiguity.
//!
//! Heavyweight components (certificates, licenses, signed CRLs) come
//! from one shared fixture; each property case varies the cheap fields
//! (ids, nonces, payload bytes, epochs) around them.

use p2drm_codec::{CodecError, Decode, Encode};
use p2drm_core::entities::smartcard::CardBudget;
use p2drm_core::ids::{CardId, ContentId, LicenseId};
use p2drm_core::license::License;
use p2drm_core::protocol::messages::*;
use p2drm_core::service::{
    ApiError, ApiErrorCode, RequestEnvelope, ResponseEnvelope, WireRequest, WireResponse,
};
use p2drm_core::system::{System, SystemConfig};
use p2drm_core::Transcript;
use p2drm_crypto::rng::test_rng;
use p2drm_crypto::rsa::RsaSignature;
use p2drm_pki::cert::{AttributeCertificate, Certificate, PseudonymCertificate};
use p2drm_pki::crl::SignedCrl;
use proptest::prelude::*;
use std::fmt::Debug;
use std::sync::OnceLock;

/// Everything heavyweight the messages embed, built once.
struct Fixture {
    card_cert: Certificate,
    pseudonym_cert: PseudonymCertificate,
    attribute_cert: AttributeCertificate,
    coin: p2drm_payment::Coin,
    license: License,
    sealed: p2drm_crypto::envelope::Envelope,
    signature: RsaSignature,
    license_crl: SignedCrl,
    pseudonym_crl: SignedCrl,
    meta: p2drm_core::content::ContentMeta,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let mut rng = test_rng(0x207E57);
        let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
        let cid = sys.publish_content("fixture-item", 100, b"fixture payload", &mut rng);
        let mut alice = sys
            .register_user_with_budget("alice", CardBudget { max_pseudonyms: 8 }, &mut rng)
            .expect("fresh system registers alice");
        sys.fund(&alice, 1_000);
        sys.grant_attribute(&alice, "adult", &mut rng)
            .expect("attribute grant on fresh RA");
        sys.ensure_attribute(&mut alice, "adult", &mut rng)
            .expect("attribute issuance for entitled user");
        let license = sys
            .purchase(&mut alice, cid, &mut rng)
            .expect("funded purchase");
        sys.provider
            .revoke_license(&license.id())
            .expect("revocation persists on mem backend");
        let pseudonym_cert = alice
            .pseudonym_certs()
            .last()
            .expect("issued above")
            .clone();
        // The purchase may have rotated the pseudonym; any held
        // credential works for encoding purposes.
        let attribute_cert = alice
            .pseudonym_certs()
            .iter()
            .find_map(|c| alice.attribute_cert_for(&c.pseudonym_id(), "adult"))
            .expect("attribute credential issued above")
            .clone();
        let account = alice.account.clone();
        let coin = alice
            .wallet
            .withdraw(&sys.mint, &account, 100, &mut rng)
            .expect("funded withdrawal");
        let sealed = license.body.key_envelope.clone();
        let signature = license.signature.clone();
        Fixture {
            card_cert: alice.card.master_cert().clone(),
            pseudonym_cert,
            attribute_cert,
            coin,
            license: license.clone(),
            sealed,
            signature,
            license_crl: sys.provider.signed_license_crl(77),
            pseudonym_crl: sys.provider.signed_pseudonym_crl(77),
            meta: sys
                .provider
                .content_meta(&cid)
                .expect("published item is listed"),
        }
    })
}

/// decode(encode(m)) == m, and any trailing byte is rejected.
fn check_roundtrip<T: Encode + Decode + PartialEq + Debug>(m: &T) -> Result<(), String> {
    let bytes = p2drm_codec::to_bytes(m);
    let back: T =
        p2drm_codec::from_bytes(&bytes).map_err(|e| format!("decode failed for {m:?}: {e}"))?;
    if &back != m {
        return Err(format!("roundtrip changed value: {m:?} -> {back:?}"));
    }
    for extra in [0x00u8, 0x01, 0xFF] {
        let mut longer = bytes.clone();
        longer.push(extra);
        match p2drm_codec::from_bytes::<T>(&longer) {
            Err(CodecError::TrailingBytes(1)) => {}
            other => return Err(format!("trailing byte {extra:#x} not rejected: {other:?}")),
        }
    }
    Ok(())
}

fn id16(seed: u64) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&seed.to_le_bytes());
    b[8..].copy_from_slice(&seed.rotate_left(29).to_le_bytes());
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pseudonym_issue_request_roundtrip(seed in any::<u64>()) {
        let fx = fixture();
        let m = PseudonymIssueRequest {
            card_id: CardId(id16(seed)),
            card_cert: fx.card_cert.clone(),
            blinded: p2drm_bignum::UBig::from_u64(seed | 1),
            auth_sig: fx.signature.clone(),
        };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn pseudonym_issue_response_roundtrip(seed in any::<u64>()) {
        let m = PseudonymIssueResponse { blind_sig: p2drm_bignum::UBig::from_u64(seed) };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn attribute_issue_request_roundtrip(seed in any::<u64>(), attr in "[a-z-]{1,24}") {
        let fx = fixture();
        let m = AttributeIssueRequest {
            card_id: CardId(id16(seed)),
            card_cert: fx.card_cert.clone(),
            attribute: attr,
            blinded: p2drm_bignum::UBig::from_u64(seed | 1),
            auth_sig: fx.signature.clone(),
        };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn attribute_issue_response_roundtrip(seed in any::<u64>()) {
        let m = AttributeIssueResponse { blind_sig: p2drm_bignum::UBig::from_u64(seed) };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn purchase_request_roundtrip(seed in any::<u64>(), with_attr in any::<bool>()) {
        let fx = fixture();
        let mut coin = fx.coin.clone();
        coin.serial = {
            let mut s = [0u8; 32];
            s[..16].copy_from_slice(&id16(seed));
            s
        };
        coin.denomination = seed | 1;
        let m = PurchaseRequest {
            content_id: ContentId(id16(seed)),
            pseudonym_cert: fx.pseudonym_cert.clone(),
            coin,
            attribute_cert: with_attr.then(|| fx.attribute_cert.clone()),
        };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn purchase_response_roundtrip(seed in any::<u64>()) {
        let fx = fixture();
        let mut license = fx.license.clone();
        license.body.license_id = LicenseId(id16(seed));
        let m = PurchaseResponse { license };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn download_request_roundtrip(seed in any::<u64>()) {
        let m = DownloadRequest { content_id: ContentId(id16(seed)) };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn download_response_roundtrip(nonce in any::<[u8; 12]>(), body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let m = DownloadResponse { nonce, ciphertext: body };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn holder_challenge_roundtrip(nonce in any::<[u8; 32]>(), seed in any::<u64>()) {
        let m = HolderChallenge { nonce, license_id: LicenseId(id16(seed)) };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn holder_proof_roundtrip(_seed in any::<u64>()) {
        let fx = fixture();
        let m = HolderProof { signature: fx.signature.clone() };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn key_release_roundtrip(_seed in any::<u64>()) {
        let fx = fixture();
        let m = KeyRelease { sealed: fx.sealed.clone() };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn transfer_request_roundtrip(seed in any::<u64>()) {
        let fx = fixture();
        let mut license = fx.license.clone();
        license.body.license_id = LicenseId(id16(seed));
        let m = TransferRequest {
            license,
            recipient_cert: fx.pseudonym_cert.clone(),
            proof: fx.signature.clone(),
        };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn transfer_response_roundtrip(seed in any::<u64>()) {
        let fx = fixture();
        let mut license = fx.license.clone();
        license.body.license_id = LicenseId(id16(seed));
        let m = TransferResponse { license };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn crl_sync_request_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        let m = CrlSyncRequest { license_seq: a, pseudonym_seq: b };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn crl_sync_roundtrip(_seed in any::<u64>()) {
        let fx = fixture();
        let m = CrlSync {
            license_crl: fx.license_crl.clone(),
            pseudonym_crl: fx.pseudonym_crl.clone(),
        };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn catalog_request_roundtrip(seed in any::<u64>(), by_id in any::<bool>()) {
        let m = CatalogRequest { content_id: by_id.then(|| ContentId(id16(seed))) };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn license_status_request_roundtrip(seed in any::<u64>()) {
        let m = LicenseStatusRequest { license_id: LicenseId(id16(seed)) };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn license_status_response_roundtrip(variant in 0u8..4) {
        let fx = fixture();
        let status = match variant {
            0 => LicenseStatus::Unknown,
            1 => LicenseStatus::Active {
                holder: p2drm_pki::cert::KeyId::of_rsa(&fx.license.body.holder),
            },
            2 => LicenseStatus::Transferred,
            _ => LicenseStatus::Revoked,
        };
        let m = LicenseStatusResponse { status };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn catalog_response_roundtrip(seed in any::<u64>(), n in 0usize..4) {
        let fx = fixture();
        let items = (0..n)
            .map(|i| {
                let mut meta = fx.meta.clone();
                meta.id = ContentId(id16(seed.wrapping_add(i as u64)));
                meta.price = seed.wrapping_mul(i as u64 + 1);
                meta
            })
            .collect();
        let m = CatalogResponse { items };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
    }

    #[test]
    fn api_error_roundtrip(raw in any::<u16>(), detail in "[a-zA-Z0-9 _-]{0,48}", hint in any::<u32>()) {
        let m = ApiError { code: ApiErrorCode::from_code(raw), detail, retry_after_ms: hint };
        prop_assert!(check_roundtrip(&m).is_ok(), "{:?}", check_roundtrip(&m));
        // The numeric code itself survives the enum round trip, even for
        // codes this build does not know.
        prop_assert_eq!(ApiErrorCode::from_code(raw).code(), raw);
    }
}

/// Envelope framing round-trips for every request/response op, and the
/// envelope parser rejects trailing garbage like the payload decoders.
#[test]
fn envelopes_roundtrip_every_opcode() {
    let fx = fixture();
    let requests = vec![
        WireRequest::Purchase(PurchaseRequest {
            content_id: fx.meta.id,
            pseudonym_cert: fx.pseudonym_cert.clone(),
            coin: fx.coin.clone(),
            attribute_cert: Some(fx.attribute_cert.clone()),
        }),
        WireRequest::Download(DownloadRequest {
            content_id: fx.meta.id,
        }),
        WireRequest::Transfer(TransferRequest {
            license: fx.license.clone(),
            recipient_cert: fx.pseudonym_cert.clone(),
            proof: fx.signature.clone(),
        }),
        WireRequest::PseudonymIssue(PseudonymIssueRequest {
            card_id: CardId(id16(1)),
            card_cert: fx.card_cert.clone(),
            blinded: p2drm_bignum::UBig::from_u64(9),
            auth_sig: fx.signature.clone(),
        }),
        WireRequest::AttributeIssue(AttributeIssueRequest {
            card_id: CardId(id16(2)),
            card_cert: fx.card_cert.clone(),
            attribute: "adult".into(),
            blinded: p2drm_bignum::UBig::from_u64(11),
            auth_sig: fx.signature.clone(),
        }),
        WireRequest::CrlSync(CrlSyncRequest {
            license_seq: 3,
            pseudonym_seq: 4,
        }),
        WireRequest::Catalog(CatalogRequest {
            content_id: Some(fx.meta.id),
        }),
        WireRequest::LicenseStatus(LicenseStatusRequest {
            license_id: LicenseId(id16(5)),
        }),
    ];
    for (i, body) in requests.into_iter().enumerate() {
        let envelope = RequestEnvelope {
            correlation_id: 0xC0DE + i as u64,
            body,
        };
        let bytes = envelope.to_bytes();
        let back = RequestEnvelope::from_bytes(&bytes).expect("request envelope parses");
        assert_eq!(back, envelope);
        let mut longer = bytes;
        longer.push(0);
        assert!(
            RequestEnvelope::from_bytes(&longer).is_err(),
            "trailing byte accepted for request op {i}"
        );
    }

    let responses = vec![
        WireResponse::Purchase(PurchaseResponse {
            license: fx.license.clone(),
        }),
        WireResponse::Download(DownloadResponse {
            nonce: [3; 12],
            ciphertext: vec![1, 2, 3],
        }),
        WireResponse::Transfer(TransferResponse {
            license: fx.license.clone(),
        }),
        WireResponse::PseudonymIssue(PseudonymIssueResponse {
            blind_sig: p2drm_bignum::UBig::from_u64(13),
        }),
        WireResponse::AttributeIssue(AttributeIssueResponse {
            blind_sig: p2drm_bignum::UBig::from_u64(17),
        }),
        WireResponse::CrlSync(CrlSync {
            license_crl: fx.license_crl.clone(),
            pseudonym_crl: fx.pseudonym_crl.clone(),
        }),
        WireResponse::Catalog(CatalogResponse {
            items: vec![fx.meta.clone()],
        }),
        WireResponse::LicenseStatus(LicenseStatusResponse {
            status: LicenseStatus::Transferred,
        }),
        WireResponse::Error(ApiError::new(ApiErrorCode::BadProof, "nope")),
    ];
    for (i, body) in responses.into_iter().enumerate() {
        let envelope = ResponseEnvelope {
            correlation_id: 0xFACE + i as u64,
            body,
        };
        let bytes = envelope.to_bytes();
        let back = ResponseEnvelope::from_bytes(&bytes).expect("response envelope parses");
        assert_eq!(back, envelope);
        let mut longer = bytes;
        longer.push(0xFF);
        assert!(
            ResponseEnvelope::from_bytes(&longer).is_err(),
            "trailing byte accepted for response op {i}"
        );
    }
}

/// The engines' transcript bytes are exactly the canonical encodings, so
/// a recorded purchase request decodes back into a dispatchable message.
#[test]
fn transcript_bytes_are_decodable_wire_bytes() {
    let mut rng = test_rng(0x7A_BE5);
    let sys = System::bootstrap(SystemConfig::fast_test(), &mut rng);
    let cid = sys.publish_content("t", 100, b"payload", &mut rng);
    let mut alice = sys.register_user("alice", &mut rng).expect("fresh user");
    sys.fund(&alice, 500);
    let mut t = Transcript::new();
    sys.purchase_with_transcript(&mut alice, cid, &mut rng, &mut t)
        .expect("funded purchase");
    let recorded = t
        .entries()
        .iter()
        .find(|m| m.label == "purchase-request")
        .expect("purchase transcript records the request");
    let decoded: PurchaseRequest =
        p2drm_codec::from_bytes(&recorded.bytes).expect("transcript bytes decode");
    assert_eq!(decoded.content_id, cid);
}
