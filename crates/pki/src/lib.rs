//! Minimal certificate infrastructure for the P2DRM protocols.
//!
//! This replaces the X.509 machinery a production deployment would use with
//! a small, canonical-encoded format carrying exactly what the paper's
//! protocols need:
//!
//! * [`cert`] — certificate bodies/signatures, entity kinds, extensions
//!   (compliance flags, identity escrow), and the *blind-issued* pseudonym
//!   certificate variant.
//! * [`authority`] — certificate authorities: self-signed roots,
//!   subordinate issuance, and the RA's dedicated blind-signing key.
//! * [`chain`] — trust stores and chain verification (expiry + revocation).
//! * [`crl`] — revocation lists: sorted-vector with binary search, a Bloom
//!   filter prefilter variant (ablation for experiment E5), and signed CRL
//!   envelopes.
//! * [`vcache`] — a bounded, sharded [`VerifyCache`] remembering successful
//!   signature verifications (keyed by cert bytes ‖ key fingerprint ‖
//!   epoch bucket) so repeat presentations of the same certificate skip
//!   the RSA exponentiation; structural checks (revocation, validity,
//!   epoch freshness) always re-run.
//!
//! Key separation note: an authority holds **two** RSA keys — a certificate
//! signing key (PKCS#1 v1.5 over structured bodies) and, for the RA, a
//! blind signing key that only ever signs full-domain hashes of pseudonym
//! bodies. A signature from one key means nothing under the other, which is
//! what makes blind issuance safe to offer.

#![forbid(unsafe_code)]

pub mod authority;
pub mod cert;
pub mod chain;
pub mod crl;
pub mod vcache;

pub use authority::{CertificateAuthority, RegistrationAuthorityKeys};
pub use cert::{
    AttributeCertBody, AttributeCertificate, Certificate, CertificateBody, EntityKind, Extension,
    KeyId, PseudonymCertBody, PseudonymCertificate, SubjectKey, Validity,
};
pub use chain::{ChainError, TrustStore};
pub use crl::{
    verify_crl_batch, BloomCrl, CrlBatchOutcome, RevocationList, SignedCrl, SignedCrlDelta,
};
pub use vcache::{CacheCounters, VerifyCache};

/// Errors raised by certificate verification and issuance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// Signature over the body failed to verify.
    BadSignature,
    /// Certificate not valid at the evaluation time.
    Expired { now: u64, from: u64, until: u64 },
    /// The subject key type does not match what the operation needs.
    WrongKeyType,
    /// Issuer mismatch or unknown issuer.
    UnknownIssuer,
    /// Serialized form malformed.
    Encoding(p2drm_codec::CodecError),
    /// Underlying crypto failure.
    Crypto(p2drm_crypto::CryptoError),
}

impl std::fmt::Display for PkiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PkiError::BadSignature => write!(f, "certificate signature invalid"),
            PkiError::Expired { now, from, until } => {
                write!(f, "certificate not valid at {now} (window {from}..{until})")
            }
            PkiError::WrongKeyType => write!(f, "subject key type mismatch"),
            PkiError::UnknownIssuer => write!(f, "issuer unknown or mismatched"),
            PkiError::Encoding(e) => write!(f, "encoding: {e}"),
            PkiError::Crypto(e) => write!(f, "crypto: {e}"),
        }
    }
}

impl std::error::Error for PkiError {}

impl From<p2drm_codec::CodecError> for PkiError {
    fn from(e: p2drm_codec::CodecError) -> Self {
        PkiError::Encoding(e)
    }
}

impl From<p2drm_crypto::CryptoError> for PkiError {
    fn from(e: p2drm_crypto::CryptoError) -> Self {
        PkiError::Crypto(e)
    }
}
