//! Bounded, sharded signature-verification cache.
//!
//! Every protocol entry point that accepts a certificate pays an RSA
//! exponentiation to check its signature — and under load the *same*
//! certificate arrives over and over (a pseudonym buying several items, a
//! provider cert checked by every device, CRL envelopes re-verified per
//! sync). [`VerifyCache`] remembers **successful** verifications so N
//! requests presenting the same bytes pay for one exponentiation.
//!
//! # Coherence
//!
//! Only the *signature* result is cached, never the surrounding policy
//! decisions: callers must keep running their cheap structural checks
//! (revocation lists, validity windows, epoch freshness) on every request.
//! On top of that, the cache key is the SHA-256 of
//! `certificate bytes ‖ verifying-key fingerprint ‖ epoch bucket`, so a
//! cached success from one epoch bucket can never answer for another —
//! entries age out of reach as time advances even if eviction never
//! touches them. Failures are not cached (an attacker could otherwise
//! poison a key with garbage insertions, and failed verifications are not
//! a hot path).
//!
//! # Shape
//!
//! Fixed shard count (keyed by the first key byte), each shard an
//! independently locked map with **LRU-ish sampled eviction**: when a full
//! shard takes an insert, a small sample of entries is probed and the
//! least-recently-used of the sample is evicted — O(sample) instead of a
//! full scan, approximating LRU the way Redis does. Hand-rolled on `std`
//! only (offline environment, no external dependencies).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shards in every cache (keyed by the first key byte).
const SHARDS: usize = 8;

/// Entries probed per eviction; the oldest of the sample is evicted.
const EVICTION_SAMPLE: usize = 16;

/// Monotonic hit/miss/insert/evict counters, cheap to snapshot — the sim
/// and experiments report these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache (RSA verify skipped).
    pub hits: u64,
    /// Lookups that fell through to a real verification.
    pub misses: u64,
    /// Successful verifications recorded.
    pub insertions: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    /// key -> last-use stamp (shard-local logical clock).
    entries: HashMap<[u8; 32], u64>,
    clock: u64,
}

/// The cache. All methods take `&self`; shards lock independently.
pub struct VerifyCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for VerifyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyCache")
            .field("capacity", &(self.per_shard * SHARDS))
            .field("counters", &self.counters())
            .finish()
    }
}

impl Default for VerifyCache {
    /// A moderately sized cache (2048 entries ≈ 64 KiB of keys).
    fn default() -> Self {
        VerifyCache::new(2048)
    }
}

impl VerifyCache {
    /// Cache bounded to roughly `capacity` entries across all shards.
    /// `capacity == 0` disables caching entirely (every lookup misses,
    /// inserts are dropped) — the ablation/comparison configuration.
    pub fn new(capacity: usize) -> Self {
        VerifyCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// True when the cache can hold entries at all.
    pub fn is_enabled(&self) -> bool {
        self.per_shard > 0
    }

    /// Builds a cache key: SHA-256 over the length-prefixed `parts`
    /// (length prefixes prevent ambiguity between part boundaries).
    /// Conventionally `parts` is `[certificate bytes, verifying-key
    /// fingerprint, epoch-bucket bytes]`.
    pub fn key(parts: &[&[u8]]) -> [u8; 32] {
        let mut h = p2drm_crypto::sha256::Sha256::new();
        for part in parts {
            h.update(&(part.len() as u64).to_le_bytes());
            h.update(part);
        }
        h.finalize()
    }

    fn shard(&self, key: &[u8; 32]) -> &Mutex<Shard> {
        &self.shards[key[0] as usize % SHARDS]
    }

    /// Looks up a previous *successful* verification under `key`,
    /// refreshing its recency on a hit.
    pub fn check(&self, key: &[u8; 32]) -> bool {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut shard = self.shard(key).lock().expect("vcache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.entries.get_mut(key) {
            Some(s) => {
                *s = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Records a successful verification under `key`, evicting the
    /// least-recently-used of a small sample when the shard is full.
    pub fn insert(&self, key: [u8; 32]) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("vcache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        if shard.entries.len() >= self.per_shard && !shard.entries.contains_key(&key) {
            // LRU-ish: probe a bounded sample, evict its oldest entry.
            if let Some(victim) = shard
                .entries
                .iter()
                .take(EVICTION_SAMPLE)
                .min_by_key(|(_, &s)| s)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, stamp);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience wrapper: consult the cache, run `verify` on a miss,
    /// record a success. `verify`'s error passes through untouched.
    pub fn verify_with<E>(
        &self,
        key: [u8; 32],
        verify: impl FnOnce() -> Result<(), E>,
    ) -> Result<(), E> {
        if self.check(&key) {
            return Ok(());
        }
        verify()?;
        self.insert(key);
        Ok(())
    }

    /// Snapshot of the monotonic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("vcache shard poisoned").entries.len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(b: u8) -> [u8; 32] {
        VerifyCache::key(&[&[b]])
    }

    #[test]
    fn miss_then_hit() {
        let c = VerifyCache::new(64);
        let k = key_of(1);
        assert!(!c.check(&k));
        c.insert(k);
        assert!(c.check(&k));
        let counters = c.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.insertions, 1);
        assert!((counters.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = VerifyCache::new(0);
        let k = key_of(2);
        assert!(!c.is_enabled());
        c.insert(k);
        assert!(!c.check(&k));
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_bounded_with_eviction() {
        let c = VerifyCache::new(16); // 2 per shard
        for b in 0..=255u8 {
            c.insert(key_of(b));
        }
        assert!(c.len() <= 16, "len {} exceeds capacity", c.len());
        assert!(c.counters().evictions > 0);
    }

    #[test]
    fn recently_used_survive_eviction_pressure() {
        let c = VerifyCache::new(2 * SHARDS); // 2 entries per shard
        let hot = key_of(0);
        c.insert(hot);
        // Keep `hot` fresh while hammering its shard with cold keys: the
        // sampled eviction must always pick the stale cold entry.
        let mut same_shard = Vec::new();
        for b in 1..=255u8 {
            let k = key_of(b);
            if k[0] % SHARDS as u8 == hot[0] % SHARDS as u8 {
                same_shard.push(k);
            }
        }
        for k in same_shard.iter().take(6) {
            assert!(c.check(&hot), "hot entry evicted under LRU-ish policy");
            c.insert(*k);
        }
        assert!(c.check(&hot), "hot entry evicted despite constant use");
        assert!(c.len() <= 2 * SHARDS);
    }

    #[test]
    fn verify_with_skips_on_hit_and_propagates_errors() {
        let c = VerifyCache::new(64);
        let k = key_of(9);
        let mut calls = 0;
        assert!(c
            .verify_with::<()>(k, || {
                calls += 1;
                Ok(())
            })
            .is_ok());
        assert!(c
            .verify_with::<()>(k, || {
                calls += 1;
                Ok(())
            })
            .is_ok());
        assert_eq!(calls, 1, "second verification must come from the cache");
        let bad = key_of(10);
        assert_eq!(c.verify_with(bad, || Err("boom")), Err("boom"));
        assert!(!c.check(&bad), "failures must not be cached");
    }

    #[test]
    fn key_parts_are_unambiguous() {
        assert_ne!(
            VerifyCache::key(&[b"ab", b"c"]),
            VerifyCache::key(&[b"a", b"bc"])
        );
        assert_ne!(VerifyCache::key(&[b"ab"]), VerifyCache::key(&[b"ab", b""]));
    }
}
