//! Revocation lists.
//!
//! The paper's double-redemption and abuse-revocation mechanisms make
//! revocation checks the hottest read path in a provider/device. We ship
//! two interchangeable structures, compared in experiment **E5**:
//!
//! * [`RevocationList`] — sorted vector + binary search (`O(log n)`, exact);
//! * [`BloomCrl`] — Bloom prefilter in front of the sorted list (`O(k)`
//!   expected for the common *not revoked* case, exact overall because
//!   positives are confirmed against the list).

use crate::cert::KeyId;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::rsa::{RsaPublicKey, RsaSignature};
use p2drm_crypto::sha256::sha256_concat;

/// Exact revocation list: sorted ids, binary-searched.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RevocationList {
    ids: Vec<KeyId>,
}

impl RevocationList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arbitrary-order ids (sorts and dedups).
    pub fn from_ids(mut ids: Vec<KeyId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        RevocationList { ids }
    }

    /// Adds an id (keeps order; no-op when present).
    pub fn insert(&mut self, id: KeyId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Exact membership test.
    pub fn contains(&self, id: &KeyId) -> bool {
        self.ids.binary_search(id).is_ok()
    }

    /// Linear-scan membership (ablation baseline for E5 only).
    pub fn contains_linear(&self, id: &KeyId) -> bool {
        self.ids.iter().any(|x| x == id)
    }

    /// Number of revoked ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is revoked.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates ids in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &KeyId> {
        self.ids.iter()
    }
}

impl Encode for RevocationList {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.ids);
    }
}

impl Decode for RevocationList {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(RevocationList::from_ids(r.get_seq()?))
    }
}

/// Bloom-filtered revocation list: constant-expected-time negative checks
/// with exact confirmation for positives.
#[derive(Clone, Debug)]
pub struct BloomCrl {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    exact: RevocationList,
}

impl BloomCrl {
    /// Sizes the filter for `expected_items` at roughly the given
    /// false-positive rate (`fp_rate` in (0,1)).
    pub fn new(expected_items: usize, fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let fp = fp_rate.clamp(1e-9, 0.5);
        let m = (-(n * fp.ln()) / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil();
        let num_bits = (m as usize).max(64);
        let k = ((m / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        BloomCrl {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            num_hashes: k.min(16),
            exact: RevocationList::new(),
        }
    }

    fn bit_positions(&self, id: &KeyId) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: h_i = h1 + i*h2 (Kirsch–Mitzenmacher).
        let d = sha256_concat(&[b"bloom", &id.0]);
        let h1 = u64::from_le_bytes(d[..8].try_into().unwrap());
        let h2 = u64::from_le_bytes(d[8..16].try_into().unwrap()) | 1;
        let m = self.num_bits as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Adds an id to filter and exact list.
    pub fn insert(&mut self, id: KeyId) -> bool {
        let positions: Vec<usize> = self.bit_positions(&id).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.exact.insert(id)
    }

    /// Exact membership (Bloom prefilter, list confirmation).
    pub fn contains(&self, id: &KeyId) -> bool {
        if !self.maybe_contains(id) {
            return false;
        }
        self.exact.contains(id)
    }

    /// Filter-only probe (may return false positives; never false negatives).
    pub fn maybe_contains(&self, id: &KeyId) -> bool {
        self.bit_positions(id)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Number of revoked ids.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when nothing is revoked.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }
}

/// A CRL signed by its issuing authority, with a sequence number so relying
/// parties can require freshness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedCrl {
    /// Issuer key id.
    pub issuer: KeyId,
    /// Monotonic sequence number.
    pub sequence: u64,
    /// Issuance time (unix seconds).
    pub issued_at: u64,
    /// The list itself.
    pub list: RevocationList,
    /// Issuer signature over the canonical encoding of the above.
    pub signature: RsaSignature,
}

impl SignedCrl {
    fn payload_bytes(
        issuer: &KeyId,
        sequence: u64,
        issued_at: u64,
        list: &RevocationList,
    ) -> Vec<u8> {
        let mut w = Writer::new();
        issuer.encode(&mut w);
        w.put_u64(sequence);
        w.put_u64(issued_at);
        list.encode(&mut w);
        w.into_bytes()
    }

    /// Creates and signs a CRL with the issuer keypair.
    pub fn create(
        issuer_kp: &p2drm_crypto::rsa::RsaKeyPair,
        sequence: u64,
        issued_at: u64,
        list: RevocationList,
    ) -> Self {
        let issuer = KeyId::of_rsa(issuer_kp.public());
        let payload = Self::payload_bytes(&issuer, sequence, issued_at, &list);
        SignedCrl {
            issuer,
            sequence,
            issued_at,
            signature: issuer_kp.sign(&payload),
            list,
        }
    }

    /// Verifies issuer signature.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), crate::PkiError> {
        if KeyId::of_rsa(issuer_key) != self.issuer {
            return Err(crate::PkiError::UnknownIssuer);
        }
        let payload = Self::payload_bytes(&self.issuer, self.sequence, self.issued_at, &self.list);
        issuer_key
            .verify(&payload, &self.signature)
            .map_err(|_| crate::PkiError::BadSignature)
    }
}

impl Encode for SignedCrl {
    fn encode(&self, w: &mut Writer) {
        self.issuer.encode(w);
        w.put_u64(self.sequence);
        w.put_u64(self.issued_at);
        self.list.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for SignedCrl {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(SignedCrl {
            issuer: KeyId::decode(r)?,
            sequence: r.get_u64()?,
            issued_at: r.get_u64()?,
            list: RevocationList::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

/// A signed incremental CRL update: everything revoked between two
/// sequence numbers. Devices that already hold sequence `from_sequence`
/// apply the delta instead of re-downloading the full list — O(changes)
/// instead of O(revoked) bandwidth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedCrlDelta {
    /// Issuer key id.
    pub issuer: KeyId,
    /// Sequence the recipient must already hold.
    pub from_sequence: u64,
    /// Sequence after applying.
    pub to_sequence: u64,
    /// Issuance time.
    pub issued_at: u64,
    /// Ids revoked in `(from_sequence, to_sequence]`.
    pub added: Vec<KeyId>,
    /// Issuer signature over the canonical encoding of the above.
    pub signature: RsaSignature,
}

impl SignedCrlDelta {
    fn payload_bytes(
        issuer: &KeyId,
        from_sequence: u64,
        to_sequence: u64,
        issued_at: u64,
        added: &[KeyId],
    ) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"p2drm-crl-delta");
        issuer.encode(&mut w);
        w.put_u64(from_sequence);
        w.put_u64(to_sequence);
        w.put_u64(issued_at);
        w.put_seq(added);
        w.into_bytes()
    }

    /// Creates and signs a delta.
    pub fn create(
        issuer_kp: &p2drm_crypto::rsa::RsaKeyPair,
        from_sequence: u64,
        to_sequence: u64,
        issued_at: u64,
        mut added: Vec<KeyId>,
    ) -> Self {
        added.sort_unstable();
        added.dedup();
        let issuer = KeyId::of_rsa(issuer_kp.public());
        let payload = Self::payload_bytes(&issuer, from_sequence, to_sequence, issued_at, &added);
        SignedCrlDelta {
            issuer,
            from_sequence,
            to_sequence,
            issued_at,
            signature: issuer_kp.sign(&payload),
            added,
        }
    }

    /// Verifies the issuer signature.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), crate::PkiError> {
        if KeyId::of_rsa(issuer_key) != self.issuer {
            return Err(crate::PkiError::UnknownIssuer);
        }
        let payload = Self::payload_bytes(
            &self.issuer,
            self.from_sequence,
            self.to_sequence,
            self.issued_at,
            &self.added,
        );
        issuer_key
            .verify(&payload, &self.signature)
            .map_err(|_| crate::PkiError::BadSignature)
    }

    /// Applies onto `list` if the recipient's `current_sequence` lines up
    /// (no gaps, no replays). Returns the new sequence.
    pub fn apply(
        &self,
        list: &mut RevocationList,
        current_sequence: u64,
    ) -> Result<u64, crate::PkiError> {
        if self.from_sequence != current_sequence || self.to_sequence < self.from_sequence {
            return Err(crate::PkiError::UnknownIssuer); // sequence mismatch
        }
        for id in &self.added {
            list.insert(*id);
        }
        Ok(self.to_sequence)
    }
}

impl Encode for SignedCrlDelta {
    fn encode(&self, w: &mut Writer) {
        self.issuer.encode(w);
        w.put_u64(self.from_sequence);
        w.put_u64(self.to_sequence);
        w.put_u64(self.issued_at);
        w.put_seq(&self.added);
        self.signature.encode(w);
    }
}

impl Decode for SignedCrlDelta {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(SignedCrlDelta {
            issuer: KeyId::decode(r)?,
            from_sequence: r.get_u64()?,
            to_sequence: r.get_u64()?,
            issued_at: r.get_u64()?,
            added: r.get_seq()?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

/// Outcome of [`verify_crl_batch`]: which inputs failed, if any.
///
/// Indices count CRLs first, then deltas, in input order — so with
/// `crls.len() == c`, index `c + j` names `deltas[j]`. Valid items in the
/// same batch are unaffected by their neighbours' failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrlBatchOutcome {
    /// Indices of the failing items (empty = everything verified).
    pub rejected: Vec<usize>,
}

impl CrlBatchOutcome {
    /// True when every envelope in the batch verified.
    pub fn all_valid(&self) -> bool {
        self.rejected.is_empty()
    }

    /// Collapses to the classic per-item result shape.
    pub fn into_result(self) -> Result<(), crate::PkiError> {
        if self.all_valid() {
            Ok(())
        } else {
            Err(crate::PkiError::BadSignature)
        }
    }
}

/// Verifies a set of full CRLs and CRL deltas under one issuer key with a
/// single batched signature check.
///
/// A device syncing a backlog of `k` deltas (or a CRL pair) pays roughly
/// one combined exponentiation instead of `k` — the payloads are distinct
/// (sequence numbers differ), so the screening batch
/// ([`p2drm_crypto::batch::screen_batch`]) applies directly. A failing
/// envelope is isolated by the batch verifier's binary-split fallback and
/// reported by index; every other envelope is still accepted.
///
/// Issuer-id mismatches are rejected before any signature work, exactly
/// like the individual `verify` methods.
pub fn verify_crl_batch(
    issuer_key: &RsaPublicKey,
    crls: &[&SignedCrl],
    deltas: &[&SignedCrlDelta],
) -> CrlBatchOutcome {
    let id = KeyId::of_rsa(issuer_key);
    let mut rejected = Vec::new();
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(crls.len() + deltas.len());
    let mut sigs: Vec<&RsaSignature> = Vec::with_capacity(crls.len() + deltas.len());
    let mut indices: Vec<usize> = Vec::with_capacity(crls.len() + deltas.len());
    for (i, crl) in crls.iter().enumerate() {
        if crl.issuer != id {
            rejected.push(i);
            continue;
        }
        payloads.push(SignedCrl::payload_bytes(
            &crl.issuer,
            crl.sequence,
            crl.issued_at,
            &crl.list,
        ));
        sigs.push(&crl.signature);
        indices.push(i);
    }
    for (j, delta) in deltas.iter().enumerate() {
        if delta.issuer != id {
            rejected.push(crls.len() + j);
            continue;
        }
        payloads.push(SignedCrlDelta::payload_bytes(
            &delta.issuer,
            delta.from_sequence,
            delta.to_sequence,
            delta.issued_at,
            &delta.added,
        ));
        sigs.push(&delta.signature);
        indices.push(crls.len() + j);
    }
    let items: Vec<(&[u8], &RsaSignature)> = payloads.iter().map(Vec::as_slice).zip(sigs).collect();
    let report = p2drm_crypto::batch::screen_batch(issuer_key, &items);
    rejected.extend(report.rejected.iter().map(|&slot| indices[slot]));
    rejected.sort_unstable();
    CrlBatchOutcome { rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::digest_id;
    use p2drm_crypto::rng::test_rng;
    use p2drm_crypto::rsa::RsaKeyPair;

    fn id(i: u64) -> KeyId {
        digest_id(&i.to_le_bytes())
    }

    #[test]
    fn insert_contains_dedup() {
        let mut crl = RevocationList::new();
        assert!(crl.insert(id(1)));
        assert!(crl.insert(id(2)));
        assert!(!crl.insert(id(1)), "duplicate insert reports false");
        assert_eq!(crl.len(), 2);
        assert!(crl.contains(&id(1)));
        assert!(!crl.contains(&id(3)));
        assert_eq!(crl.contains_linear(&id(2)), crl.contains(&id(2)));
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let crl = RevocationList::from_ids(vec![id(5), id(1), id(5), id(3)]);
        assert_eq!(crl.len(), 3);
        let ids: Vec<_> = crl.iter().cloned().collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn binary_and_linear_agree() {
        let crl = RevocationList::from_ids((0..200).map(id).collect());
        for i in 0..400 {
            assert_eq!(crl.contains(&id(i)), crl.contains_linear(&id(i)), "i={i}");
        }
    }

    #[test]
    fn bloom_no_false_negatives() {
        let mut bloom = BloomCrl::new(1000, 0.01);
        for i in 0..1000 {
            bloom.insert(id(i));
        }
        for i in 0..1000 {
            assert!(bloom.contains(&id(i)), "false negative at {i}");
            assert!(bloom.maybe_contains(&id(i)));
        }
    }

    #[test]
    fn bloom_exact_on_negatives() {
        let mut bloom = BloomCrl::new(1000, 0.01);
        for i in 0..1000 {
            bloom.insert(id(i));
        }
        // contains() is exact even where maybe_contains() false-positives.
        for i in 1000..3000 {
            assert!(!bloom.contains(&id(i)), "false positive leaked at {i}");
        }
    }

    #[test]
    fn bloom_fp_rate_is_sane() {
        let mut bloom = BloomCrl::new(1000, 0.01);
        for i in 0..1000 {
            bloom.insert(id(i));
        }
        let fps = (1000..11_000)
            .filter(|&i| bloom.maybe_contains(&id(i)))
            .count();
        // Target 1%; accept anything below 5% to keep the test robust.
        assert!(fps < 500, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn crl_codec_roundtrip() {
        let crl = RevocationList::from_ids((0..50).map(id).collect());
        let bytes = p2drm_codec::to_bytes(&crl);
        let back: RevocationList = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, crl);
    }

    #[test]
    fn signed_crl_verify_and_tamper() {
        let mut rng = test_rng(70);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let other = RsaKeyPair::generate(512, &mut rng);
        let crl = SignedCrl::create(&kp, 3, 1000, RevocationList::from_ids(vec![id(1)]));
        assert!(crl.verify(kp.public()).is_ok());
        assert!(crl.verify(other.public()).is_err());

        let mut tampered = crl.clone();
        tampered.list.insert(id(9));
        assert!(tampered.verify(kp.public()).is_err());

        let mut tampered = crl.clone();
        tampered.sequence += 1;
        assert!(tampered.verify(kp.public()).is_err());
    }

    #[test]
    fn crl_batch_accepts_valid_mixed_set() {
        let mut rng = test_rng(75);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let crl = SignedCrl::create(&kp, 1, 100, RevocationList::from_ids(vec![id(1)]));
        let deltas: Vec<SignedCrlDelta> = (0..6)
            .map(|s| SignedCrlDelta::create(&kp, s, s + 1, 200 + s, vec![id(10 + s)]))
            .collect();
        let delta_refs: Vec<&SignedCrlDelta> = deltas.iter().collect();
        let outcome = verify_crl_batch(kp.public(), &[&crl], &delta_refs);
        assert!(outcome.all_valid(), "{outcome:?}");
        assert!(outcome.into_result().is_ok());
    }

    #[test]
    fn crl_batch_pinpoints_tampered_delta() {
        let mut rng = test_rng(76);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let crl = SignedCrl::create(&kp, 1, 100, RevocationList::from_ids(vec![id(1)]));
        let mut deltas: Vec<SignedCrlDelta> = (0..5)
            .map(|s| SignedCrlDelta::create(&kp, s, s + 1, 200 + s, vec![id(10 + s)]))
            .collect();
        deltas[2].added.push(id(999)); // payload no longer matches sig
        let delta_refs: Vec<&SignedCrlDelta> = deltas.iter().collect();
        let outcome = verify_crl_batch(kp.public(), &[&crl], &delta_refs);
        // Index space: crl = 0, deltas start at 1 → tampered delta is 3.
        assert_eq!(outcome.rejected, vec![3], "{outcome:?}");
        assert_eq!(outcome.into_result(), Err(crate::PkiError::BadSignature));
    }

    #[test]
    fn crl_batch_rejects_wrong_issuer_without_exponentiation() {
        let mut rng = test_rng(77);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let other = RsaKeyPair::generate(512, &mut rng);
        let good = SignedCrl::create(&kp, 1, 100, RevocationList::new());
        let foreign = SignedCrl::create(&other, 1, 100, RevocationList::new());
        let outcome = verify_crl_batch(kp.public(), &[&good, &foreign], &[]);
        assert_eq!(outcome.rejected, vec![1], "{outcome:?}");
    }

    #[test]
    fn signed_crl_codec_roundtrip() {
        let mut rng = test_rng(71);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let crl = SignedCrl::create(
            &kp,
            1,
            5,
            RevocationList::from_ids((0..10).map(id).collect()),
        );
        let bytes = p2drm_codec::to_bytes(&crl);
        let back: SignedCrl = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, crl);
        assert!(back.verify(kp.public()).is_ok());
    }

    #[test]
    fn delta_apply_happy_path() {
        let mut rng = test_rng(72);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let mut device_list = RevocationList::from_ids(vec![id(1), id(2)]);
        let delta = SignedCrlDelta::create(&kp, 2, 4, 100, vec![id(3), id(4)]);
        assert!(delta.verify(kp.public()).is_ok());
        let new_seq = delta.apply(&mut device_list, 2).unwrap();
        assert_eq!(new_seq, 4);
        assert!(device_list.contains(&id(3)) && device_list.contains(&id(4)));
        assert_eq!(device_list.len(), 4);
    }

    #[test]
    fn delta_rejects_gaps_and_replays() {
        let mut rng = test_rng(73);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let delta = SignedCrlDelta::create(&kp, 2, 4, 100, vec![id(3)]);
        let mut list = RevocationList::new();
        // Device at seq 1: gap (would miss revocations between 1 and 2).
        assert!(delta.apply(&mut list, 1).is_err());
        // Device at seq 4: replay/stale.
        assert!(delta.apply(&mut list, 4).is_err());
        assert!(list.is_empty(), "failed apply must not mutate");
    }

    #[test]
    fn delta_tamper_detected() {
        let mut rng = test_rng(74);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let other = RsaKeyPair::generate(512, &mut rng);
        let delta = SignedCrlDelta::create(&kp, 0, 1, 5, vec![id(9)]);
        assert!(delta.verify(other.public()).is_err());
        let mut bad = delta.clone();
        bad.added.push(id(10));
        assert!(bad.verify(kp.public()).is_err());
        let mut bad = delta.clone();
        bad.to_sequence += 1;
        assert!(bad.verify(kp.public()).is_err());
    }

    #[test]
    fn delta_codec_roundtrip_and_dedup() {
        let mut rng = test_rng(75);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let delta = SignedCrlDelta::create(&kp, 0, 2, 5, vec![id(2), id(1), id(2)]);
        assert_eq!(delta.added.len(), 2, "creation dedups");
        let bytes = p2drm_codec::to_bytes(&delta);
        let back: SignedCrlDelta = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
        assert!(back.verify(kp.public()).is_ok());
    }

    #[test]
    fn full_sync_and_delta_chain_agree() {
        // Applying deltas 0->1->2 gives the same list as the full CRL at 2.
        let mut rng = test_rng(76);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let full = RevocationList::from_ids(vec![id(1), id(2), id(3)]);
        let d1 = SignedCrlDelta::create(&kp, 0, 1, 10, vec![id(1)]);
        let d2 = SignedCrlDelta::create(&kp, 1, 2, 20, vec![id(2), id(3)]);
        let mut list = RevocationList::new();
        let mut seq = 0;
        for d in [&d1, &d2] {
            d.verify(kp.public()).unwrap();
            seq = d.apply(&mut list, seq).unwrap();
        }
        assert_eq!(seq, 2);
        assert_eq!(list, full);
    }
}
