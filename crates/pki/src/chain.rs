//! Trust stores and certificate-chain verification.

use crate::cert::{Certificate, EntityKind, KeyId};
use crate::crl::RevocationList;
use crate::vcache::{CacheCounters, VerifyCache};
use crate::PkiError;
use p2drm_crypto::rsa::RsaPublicKey;
use std::collections::HashMap;

/// Chain verification failure (wraps [`PkiError`] with position context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A certificate in the chain failed (0 = leaf).
    Invalid { position: usize, source: PkiError },
    /// A certificate's subject is revoked (0 = leaf).
    Revoked { position: usize, id: KeyId },
    /// The chain does not terminate at a trusted root.
    NoTrustedRoot,
    /// Chain longer than the permitted depth.
    TooLong(usize),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Invalid { position, source } => {
                write!(f, "certificate {position} invalid: {source}")
            }
            ChainError::Revoked { position, id } => {
                write!(f, "certificate {position} revoked ({})", id.short_hex())
            }
            ChainError::NoTrustedRoot => write!(f, "chain does not reach a trusted root"),
            ChainError::TooLong(n) => write!(f, "chain of {n} exceeds depth limit"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Maximum accepted chain length (leaf + intermediates).
const MAX_CHAIN: usize = 8;

/// A set of trusted root keys plus revocation state, with a bounded
/// [`VerifyCache`] so repeat chain verifications of the same certificate
/// bytes skip the RSA signature check (revocation and validity are still
/// enforced on every call — see [`TrustStore::verify_chain`]).
#[derive(Default)]
pub struct TrustStore {
    roots: HashMap<KeyId, RsaPublicKey>,
    revoked: RevocationList,
    cache: VerifyCache,
}

impl TrustStore {
    /// Empty store with the default-sized verification cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with an explicit verification-cache bound
    /// (`0` disables caching).
    pub fn with_cache_capacity(capacity: usize) -> Self {
        TrustStore {
            cache: VerifyCache::new(capacity),
            ..Self::default()
        }
    }

    /// Hit/miss counters of the chain-verification cache.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Trusts `root` (keyed by fingerprint).
    pub fn add_root(&mut self, root: RsaPublicKey) {
        self.roots.insert(KeyId::of_rsa(&root), root);
    }

    /// Marks a subject key id revoked.
    pub fn revoke(&mut self, id: KeyId) {
        self.revoked.insert(id);
    }

    /// Replaces the revocation list wholesale (e.g. from a fresh
    /// [`crate::crl::SignedCrl`] the caller has already verified).
    pub fn set_revocations(&mut self, list: RevocationList) {
        self.revoked = list;
    }

    /// Read access to the current revocation list.
    pub fn revocations(&self) -> &RevocationList {
        &self.revoked
    }

    /// True if `id` belongs to a trusted root.
    pub fn is_root(&self, id: &KeyId) -> bool {
        self.roots.contains_key(id)
    }

    /// Verifies `chain` (leaf first, root-issued last) at time `now`.
    ///
    /// Each certificate must verify under its issuer's key, the issuer of
    /// the last certificate must be a trusted root, and no subject in the
    /// chain may be revoked. Returns the leaf's subject kind on success.
    ///
    /// Signature checks consult the store's [`VerifyCache`], keyed by
    /// certificate bytes ‖ issuer-key fingerprint ‖ day bucket of `now`;
    /// revocation, validity-window and issuer-binding checks always
    /// re-run, so a revoked or expired certificate is refused even when a
    /// stale signature success is cached.
    ///
    /// Cache-missing signature checks are grouped by issuer key and each
    /// group is handed to the batch verifier
    /// ([`p2drm_crypto::batch::screen_batch`]) — a chain carrying several
    /// certificates under the same issuer pays roughly one combined
    /// exponentiation for the lot, and the batch verifier's split fallback
    /// still pinpoints the exact failing certificate. All structural
    /// checks run before any signature work, so on a multi-fault chain the
    /// reported error may name a structurally bad certificate further up
    /// rather than an earlier signature failure; a chain is accepted iff
    /// every check passes, exactly as before.
    pub fn verify_chain(&self, chain: &[&Certificate], now: u64) -> Result<EntityKind, ChainError> {
        if chain.is_empty() {
            return Err(ChainError::NoTrustedRoot);
        }
        if chain.len() > MAX_CHAIN {
            return Err(ChainError::TooLong(chain.len()));
        }
        // Pass 1: structural checks and cache lookups; collect the
        // signature checks the cache could not answer.
        struct Miss<'c> {
            position: usize,
            cert: &'c Certificate,
            issuer_key: &'c RsaPublicKey,
            cache_key: [u8; 32],
            payload: Vec<u8>,
        }
        let mut misses: Vec<Miss<'_>> = Vec::new();
        for (pos, cert) in chain.iter().enumerate() {
            let subject = cert.subject_id();
            if self.revoked.contains(&subject) {
                return Err(ChainError::Revoked {
                    position: pos,
                    id: subject,
                });
            }
            // Resolve the issuer key: next in chain, or a trusted root.
            let issuer_key: &RsaPublicKey = if pos + 1 < chain.len() {
                match &chain[pos + 1].body.subject_key {
                    crate::cert::SubjectKey::Rsa(k) => k,
                    _ => {
                        return Err(ChainError::Invalid {
                            position: pos,
                            source: PkiError::WrongKeyType,
                        })
                    }
                }
            } else {
                self.roots
                    .get(&cert.body.issuer)
                    .ok_or(ChainError::NoTrustedRoot)?
            };
            // Cheap structural checks run unconditionally; the RSA
            // signature check is elided on a cache hit.
            cert.check_constraints(issuer_key, now)
                .map_err(|source| ChainError::Invalid {
                    position: pos,
                    source,
                })?;
            let cache_key = VerifyCache::key(&[
                &p2drm_codec::to_bytes(*cert),
                &issuer_key.fingerprint(),
                &(now / 86_400).to_le_bytes(),
            ]);
            if !self.cache.check(&cache_key) {
                misses.push(Miss {
                    position: pos,
                    cert,
                    issuer_key,
                    cache_key,
                    payload: cert.body.signing_bytes(),
                });
            }
        }
        // Pass 2: batch the misses per issuer key. Within one chain most
        // groups are singletons (each link has its own issuer), but
        // sibling certificates under a shared issuer — and every caller
        // routing through this path — verify together.
        let mut failure: Option<usize> = None;
        let mut grouped: Vec<(&RsaPublicKey, Vec<usize>)> = Vec::new();
        for (idx, miss) in misses.iter().enumerate() {
            match grouped.iter_mut().find(|(k, _)| *k == miss.issuer_key) {
                Some((_, members)) => members.push(idx),
                None => grouped.push((miss.issuer_key, vec![idx])),
            }
        }
        for (issuer_key, members) in grouped {
            if members.len() == 1 {
                let miss = &misses[members[0]];
                match miss.cert.verify_signature(issuer_key) {
                    Ok(()) => self.cache.insert(miss.cache_key),
                    Err(_) => {
                        failure = Some(failure.map_or(miss.position, |p| p.min(miss.position)))
                    }
                }
                continue;
            }
            let items: Vec<(&[u8], &p2drm_crypto::rsa::RsaSignature)> = members
                .iter()
                .map(|&idx| (misses[idx].payload.as_slice(), &misses[idx].cert.signature))
                .collect();
            let report = p2drm_crypto::batch::screen_batch(issuer_key, &items);
            for (slot, &idx) in members.iter().enumerate() {
                let miss = &misses[idx];
                if report.rejected.contains(&slot) {
                    failure = Some(failure.map_or(miss.position, |p| p.min(miss.position)));
                } else {
                    self.cache.insert(miss.cache_key);
                }
            }
        }
        if let Some(position) = failure {
            return Err(ChainError::Invalid {
                position,
                source: PkiError::BadSignature,
            });
        }
        Ok(chain[0].body.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::cert::{SubjectKey, Validity};
    use p2drm_crypto::rng::test_rng;
    use p2drm_crypto::rsa::RsaKeyPair;

    struct Fixture {
        store: TrustStore,
        root: CertificateAuthority,
        sub: CertificateAuthority,
        leaf: Certificate,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = test_rng(seed);
        let v = Validity::new(0, 1_000_000);
        let mut root = CertificateAuthority::new_root(512, v, &mut rng);
        let sub = CertificateAuthority::new_subordinate(
            &mut root,
            EntityKind::ContentProvider,
            512,
            v,
            &mut rng,
        );
        let leaf_key = RsaKeyPair::generate(512, &mut rng);
        let leaf = sub.issue(
            EntityKind::Device,
            SubjectKey::Rsa(leaf_key.public().clone()),
            v,
            vec![],
        );
        let mut store = TrustStore::new();
        store.add_root(root.public_key().clone());
        Fixture {
            store,
            root,
            sub,
            leaf,
        }
    }

    #[test]
    fn two_level_chain_verifies() {
        let f = fixture(80);
        let kind = f
            .store
            .verify_chain(&[&f.leaf, f.sub.certificate()], 100)
            .unwrap();
        assert_eq!(kind, EntityKind::Device);
    }

    #[test]
    fn direct_root_issued_cert_verifies() {
        let f = fixture(81);
        let key = RsaKeyPair::generate(512, &mut test_rng(811));
        let cert = f.root.issue(
            EntityKind::SmartCard,
            SubjectKey::Rsa(key.public().clone()),
            Validity::new(0, 10),
            vec![],
        );
        assert_eq!(
            f.store.verify_chain(&[&cert], 5).unwrap(),
            EntityKind::SmartCard
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let f = fixture(82);
        let mut empty = TrustStore::new();
        empty.add_root(
            RsaKeyPair::generate(512, &mut test_rng(821))
                .public()
                .clone(),
        );
        assert_eq!(
            empty.verify_chain(&[&f.leaf, f.sub.certificate()], 100),
            Err(ChainError::NoTrustedRoot)
        );
    }

    #[test]
    fn revoked_leaf_and_intermediate_rejected() {
        let mut f = fixture(83);
        f.store.revoke(f.leaf.subject_id());
        assert!(matches!(
            f.store.verify_chain(&[&f.leaf, f.sub.certificate()], 100),
            Err(ChainError::Revoked { position: 0, .. })
        ));

        let mut f = fixture(84);
        f.store.revoke(f.sub.certificate().subject_id());
        assert!(matches!(
            f.store.verify_chain(&[&f.leaf, f.sub.certificate()], 100),
            Err(ChainError::Revoked { position: 1, .. })
        ));
    }

    #[test]
    fn expired_link_rejected_with_position() {
        let mut rng = test_rng(85);
        let v = Validity::new(0, 1_000);
        let root = CertificateAuthority::new_root(512, v, &mut rng);
        let key = RsaKeyPair::generate(512, &mut rng);
        let cert = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(key.public().clone()),
            Validity::new(0, 50),
            vec![],
        );
        let mut store = TrustStore::new();
        store.add_root(root.public_key().clone());
        assert!(matches!(
            store.verify_chain(&[&cert], 100),
            Err(ChainError::Invalid {
                position: 0,
                source: PkiError::Expired { .. }
            })
        ));
    }

    #[test]
    fn empty_and_overlong_chains_rejected() {
        let f = fixture(86);
        assert_eq!(f.store.verify_chain(&[], 1), Err(ChainError::NoTrustedRoot));
        let long: Vec<&Certificate> = std::iter::repeat_n(&f.leaf, 9).collect();
        assert_eq!(f.store.verify_chain(&long, 1), Err(ChainError::TooLong(9)));
    }

    #[test]
    fn repeat_verification_hits_the_cache() {
        let f = fixture(88);
        let chain = [&f.leaf, f.sub.certificate()];
        assert!(f.store.verify_chain(&chain, 100).is_ok());
        let after_first = f.store.cache_counters();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.insertions, 2, "leaf + intermediate cached");
        assert!(f.store.verify_chain(&chain, 100).is_ok());
        let after_second = f.store.cache_counters();
        assert_eq!(after_second.hits, 2, "both signature checks elided");
        assert_eq!(after_second.insertions, 2);
    }

    #[test]
    fn revocation_wins_over_cached_success() {
        let mut f = fixture(89);
        let chain = [&f.leaf, f.sub.certificate()];
        assert!(f.store.verify_chain(&chain, 100).is_ok());
        f.store.revoke(f.leaf.subject_id());
        assert!(
            matches!(
                f.store.verify_chain(&chain, 100),
                Err(ChainError::Revoked { position: 0, .. })
            ),
            "cached signature success must not mask revocation"
        );
    }

    #[test]
    fn expiry_wins_over_cached_success() {
        let mut rng = test_rng(90);
        let root = CertificateAuthority::new_root(512, Validity::new(0, 1_000_000), &mut rng);
        let key = RsaKeyPair::generate(512, &mut rng);
        let cert = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(key.public().clone()),
            Validity::new(0, 500),
            vec![],
        );
        let mut store = TrustStore::new();
        store.add_root(root.public_key().clone());
        assert!(store.verify_chain(&[&cert], 100).is_ok());
        // Same day bucket as the cached success, but past the window.
        assert!(
            matches!(
                store.verify_chain(&[&cert], 600),
                Err(ChainError::Invalid {
                    position: 0,
                    source: PkiError::Expired { .. }
                })
            ),
            "cached signature success must not mask expiry"
        );
    }

    #[test]
    fn disabled_cache_still_verifies() {
        let f = fixture(91);
        let mut store = TrustStore::with_cache_capacity(0);
        store.add_root(f.root.public_key().clone());
        let chain = [&f.leaf, f.sub.certificate()];
        assert!(store.verify_chain(&chain, 100).is_ok());
        assert!(store.verify_chain(&chain, 100).is_ok());
        let c = store.cache_counters();
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 4);
    }

    #[test]
    fn same_issuer_links_verify_as_one_batch() {
        // Chain [leaf, root-cert]: the leaf's issuer key comes from the
        // root's self-signed certificate, so both signature checks are
        // under the root key and take the grouped batch path.
        let mut rng = test_rng(92);
        let v = Validity::new(0, 1_000_000);
        let root = CertificateAuthority::new_root(512, v, &mut rng);
        let key = RsaKeyPair::generate(512, &mut rng);
        let leaf = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(key.public().clone()),
            v,
            vec![],
        );
        let mut store = TrustStore::new();
        store.add_root(root.public_key().clone());
        let chain = [&leaf, root.certificate()];
        assert_eq!(store.verify_chain(&chain, 100).unwrap(), EntityKind::Device);
        let c = store.cache_counters();
        assert_eq!(c.insertions, 2, "both links cached from the batch pass");

        // Corrupt the leaf: the batch splitter must pinpoint position 0
        // while still caching the valid root link.
        let mut bad = leaf.clone();
        bad.body.serial ^= 1;
        let mut store2 = TrustStore::with_cache_capacity(0);
        store2.add_root(root.public_key().clone());
        assert!(matches!(
            store2.verify_chain(&[&bad, root.certificate()], 100),
            Err(ChainError::Invalid {
                position: 0,
                source: PkiError::BadSignature
            })
        ));
    }

    #[test]
    fn set_revocations_replaces() {
        let mut f = fixture(87);
        f.store.revoke(f.leaf.subject_id());
        f.store.set_revocations(RevocationList::new());
        assert!(f
            .store
            .verify_chain(&[&f.leaf, f.sub.certificate()], 100)
            .is_ok());
    }
}
