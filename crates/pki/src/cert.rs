//! Certificate structures: bodies, signatures, extensions, and the
//! blind-issued pseudonym certificate.

use crate::PkiError;
use p2drm_codec::{Decode, Encode, Reader, Writer};
use p2drm_crypto::blind;
use p2drm_crypto::elgamal::{ElGamalCiphertext, ElGamalPublicKey};
use p2drm_crypto::rsa::{RsaPublicKey, RsaSignature};
use p2drm_crypto::sha256::sha256;

/// 32-byte key identifier: SHA-256 fingerprint of a canonical public key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub [u8; 32]);

impl KeyId {
    /// Fingerprint of an RSA key.
    pub fn of_rsa(pk: &RsaPublicKey) -> Self {
        KeyId(pk.fingerprint())
    }

    /// Fingerprint of an ElGamal key.
    pub fn of_elgamal(pk: &ElGamalPublicKey) -> Self {
        KeyId(pk.fingerprint())
    }

    /// Short hex rendering (first 8 bytes) for logs.
    pub fn short_hex(&self) -> String {
        self.0[..8].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyId({}…)", self.short_hex())
    }
}

impl Encode for KeyId {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }
}

impl Decode for KeyId {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(KeyId(r.get_raw(32)?.try_into().expect("fixed width")))
    }
}

/// What kind of entity a certificate vouches for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// Self-signed trust anchor.
    Root,
    /// Registration authority (issues cards and blind pseudonym certs).
    RegistrationAuthority,
    /// Content provider / license server.
    ContentProvider,
    /// Compliant rendering device.
    Device,
    /// Tamper-resistant user smart card.
    SmartCard,
    /// Anonymity-revocation trusted third party.
    Ttp,
    /// E-cash mint.
    Mint,
    /// Identified user master key (baseline DRM only).
    User,
}

impl EntityKind {
    fn discriminant(self) -> u8 {
        match self {
            EntityKind::Root => 0,
            EntityKind::RegistrationAuthority => 1,
            EntityKind::ContentProvider => 2,
            EntityKind::Device => 3,
            EntityKind::SmartCard => 4,
            EntityKind::Ttp => 5,
            EntityKind::Mint => 6,
            EntityKind::User => 7,
        }
    }

    fn from_discriminant(d: u8) -> Option<Self> {
        Some(match d {
            0 => EntityKind::Root,
            1 => EntityKind::RegistrationAuthority,
            2 => EntityKind::ContentProvider,
            3 => EntityKind::Device,
            4 => EntityKind::SmartCard,
            5 => EntityKind::Ttp,
            6 => EntityKind::Mint,
            7 => EntityKind::User,
            _ => return None,
        })
    }
}

impl Encode for EntityKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.discriminant());
    }
}

impl Decode for EntityKind {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        let d = r.get_u8()?;
        Self::from_discriminant(d).ok_or(p2drm_codec::CodecError::BadDiscriminant(d))
    }
}

/// Public key carried by a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubjectKey {
    /// RSA key (signing / KEM).
    Rsa(RsaPublicKey),
    /// ElGamal key (escrow encryption; used by the TTP certificate).
    ElGamal(ElGamalPublicKey),
}

impl SubjectKey {
    /// Key identifier regardless of type.
    pub fn key_id(&self) -> KeyId {
        match self {
            SubjectKey::Rsa(k) => KeyId::of_rsa(k),
            SubjectKey::ElGamal(k) => KeyId::of_elgamal(k),
        }
    }

    /// The RSA key, if that is what this is.
    pub fn as_rsa(&self) -> Result<&RsaPublicKey, PkiError> {
        match self {
            SubjectKey::Rsa(k) => Ok(k),
            _ => Err(PkiError::WrongKeyType),
        }
    }

    /// The ElGamal key, if that is what this is.
    pub fn as_elgamal(&self) -> Result<&ElGamalPublicKey, PkiError> {
        match self {
            SubjectKey::ElGamal(k) => Ok(k),
            _ => Err(PkiError::WrongKeyType),
        }
    }
}

impl Encode for SubjectKey {
    fn encode(&self, w: &mut Writer) {
        match self {
            SubjectKey::Rsa(k) => {
                w.put_u8(0);
                k.encode(w);
            }
            SubjectKey::ElGamal(k) => {
                w.put_u8(1);
                k.encode(w);
            }
        }
    }
}

impl Decode for SubjectKey {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        match r.get_u8()? {
            0 => Ok(SubjectKey::Rsa(RsaPublicKey::decode(r)?)),
            1 => Ok(SubjectKey::ElGamal(ElGamalPublicKey::decode(r)?)),
            d => Err(p2drm_codec::CodecError::BadDiscriminant(d)),
        }
    }
}

/// Inclusive validity window in unix seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Validity {
    /// First valid second.
    pub from: u64,
    /// Last valid second.
    pub until: u64,
}

impl Validity {
    /// Window covering `[from, until]`.
    pub fn new(from: u64, until: u64) -> Self {
        Validity { from, until }
    }

    /// True when `now` falls inside the window.
    pub fn contains(&self, now: u64) -> bool {
        self.from <= now && now <= self.until
    }
}

impl Encode for Validity {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.from);
        w.put_u64(self.until);
    }
}

impl Decode for Validity {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(Validity {
            from: r.get_u64()?,
            until: r.get_u64()?,
        })
    }
}

/// Free-form keyed extension (compliance flags, device class, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Extension {
    /// Extension name (short, lowercase by convention).
    pub key: String,
    /// Opaque value bytes.
    pub value: Vec<u8>,
}

impl Encode for Extension {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.key);
        w.put_bytes(&self.value);
    }
}

impl Decode for Extension {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(Extension {
            key: r.get_str()?,
            value: r.get_bytes_owned()?,
        })
    }
}

/// The signed portion of a standard certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateBody {
    /// Issuer-unique serial number.
    pub serial: u64,
    /// What the subject is.
    pub kind: EntityKind,
    /// Subject public key.
    pub subject_key: SubjectKey,
    /// Key id of the issuing authority's signing key.
    pub issuer: KeyId,
    /// Validity window.
    pub validity: Validity,
    /// Extensions, sorted by key for canonical encoding.
    pub extensions: Vec<Extension>,
}

impl CertificateBody {
    /// Canonical bytes that get signed.
    pub fn signing_bytes(&self) -> Vec<u8> {
        p2drm_codec::to_bytes(self)
    }

    /// Looks up an extension value.
    pub fn extension(&self, key: &str) -> Option<&[u8]> {
        self.extensions
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.value.as_slice())
    }
}

impl Encode for CertificateBody {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.serial);
        self.kind.encode(w);
        self.subject_key.encode(w);
        self.issuer.encode(w);
        self.validity.encode(w);
        w.put_seq(&self.extensions);
    }
}

impl Decode for CertificateBody {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(CertificateBody {
            serial: r.get_u64()?,
            kind: EntityKind::decode(r)?,
            subject_key: SubjectKey::decode(r)?,
            issuer: KeyId::decode(r)?,
            validity: Validity::decode(r)?,
            extensions: r.get_seq()?,
        })
    }
}

/// A standard (identified) certificate: body + issuer PKCS#1 signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Signed body.
    pub body: CertificateBody,
    /// Issuer signature over [`CertificateBody::signing_bytes`].
    pub signature: RsaSignature,
}

impl Certificate {
    /// Verifies the issuer signature and validity window.
    pub fn verify(&self, issuer_key: &RsaPublicKey, now: u64) -> Result<(), PkiError> {
        self.check_constraints(issuer_key, now)?;
        self.verify_signature(issuer_key)
    }

    /// The cheap structural half of [`Certificate::verify`]: validity
    /// window and issuer binding, **no** signature check. Callers holding
    /// a cached signature success (see [`crate::vcache::VerifyCache`])
    /// must still run this on every presentation.
    pub fn check_constraints(&self, issuer_key: &RsaPublicKey, now: u64) -> Result<(), PkiError> {
        if !self.body.validity.contains(now) {
            return Err(PkiError::Expired {
                now,
                from: self.body.validity.from,
                until: self.body.validity.until,
            });
        }
        if KeyId::of_rsa(issuer_key) != self.body.issuer {
            return Err(PkiError::UnknownIssuer);
        }
        Ok(())
    }

    /// The expensive half of [`Certificate::verify`]: the issuer's RSA
    /// signature over the body bytes — the operation the verification
    /// cache elides on repeat presentations.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> Result<(), PkiError> {
        issuer_key
            .verify(&self.body.signing_bytes(), &self.signature)
            .map_err(|_| PkiError::BadSignature)
    }

    /// Subject key id (the certificate's identity for CRL purposes).
    pub fn subject_id(&self) -> KeyId {
        self.body.subject_key.key_id()
    }
}

impl Encode for Certificate {
    fn encode(&self, w: &mut Writer) {
        self.body.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for Certificate {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(Certificate {
            body: CertificateBody::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Pseudonym certificates (blind-issued)
// ---------------------------------------------------------------------------

/// The signed portion of a pseudonym certificate.
///
/// Contains **no identity**: the pseudonym public key, the TTP identity
/// escrow (decryptable only by the TTP upon abuse evidence) and an epoch
/// used to age out pseudonyms. The RA signs its FDH *blindly*, so it never
/// sees these bytes at issuance time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudonymCertBody {
    /// Fresh pseudonym RSA key (license binding / KEM target).
    pub pseudonym_key: RsaPublicKey,
    /// `ElGamal_TTP(user id ‖ nonce)`, opened only on abuse.
    pub escrow: ElGamalCiphertext,
    /// Issuance epoch (coarse time bucket; not a timestamp, to avoid
    /// narrowing the anonymity set).
    pub epoch: u32,
}

impl PseudonymCertBody {
    /// Canonical bytes whose FDH the RA blind-signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        p2drm_codec::to_bytes(self)
    }
}

impl Encode for PseudonymCertBody {
    fn encode(&self, w: &mut Writer) {
        self.pseudonym_key.encode(w);
        self.escrow.encode(w);
        w.put_u32(self.epoch);
    }
}

impl Decode for PseudonymCertBody {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PseudonymCertBody {
            pseudonym_key: RsaPublicKey::decode(r)?,
            escrow: ElGamalCiphertext::decode(r)?,
            epoch: r.get_u32()?,
        })
    }
}

/// A blind-issued pseudonym certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudonymCertificate {
    /// Anonymous body.
    pub body: PseudonymCertBody,
    /// RA blind signature (FDH-RSA) over the body bytes.
    pub signature: RsaSignature,
}

impl PseudonymCertificate {
    /// Verifies the RA's blind-key signature.
    pub fn verify(&self, ra_blind_key: &RsaPublicKey) -> Result<(), PkiError> {
        blind::verify_fdh(ra_blind_key, &self.body.signing_bytes(), &self.signature)
            .map_err(|_| PkiError::BadSignature)
    }

    /// The pseudonym's key id (its only "name").
    pub fn pseudonym_id(&self) -> KeyId {
        KeyId::of_rsa(&self.body.pseudonym_key)
    }

    /// Structural privacy check used by tests and the audit module: the
    /// canonical encoding must not contain `needle` (e.g. a user id).
    pub fn encoding_contains(&self, needle: &[u8]) -> bool {
        contains_subslice(&p2drm_codec::to_bytes(self), needle)
    }
}

impl Encode for PseudonymCertificate {
    fn encode(&self, w: &mut Writer) {
        self.body.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for PseudonymCertificate {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(PseudonymCertificate {
            body: PseudonymCertBody::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Attribute certificates (blind-issued, attribute implied by the key)
// ---------------------------------------------------------------------------

/// The signed portion of an attribute certificate: binds a **pseudonym
/// key** to an attribute without naming anyone.
///
/// The attribute itself is *not* in the body: the issuer keeps one blind
/// signing key **per attribute**, so a signature under the "adult" key
/// asserts exactly "the holder of this pseudonym key is an adult". This is
/// what lets the issuer sign blindly and still vouch for the attribute —
/// it checks the requester's entitlement before touching that key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeCertBody {
    /// The pseudonym key the attribute is bound to (credential cannot be
    /// lent: using it requires the card holding this key).
    pub pseudonym_key: RsaPublicKey,
    /// Issuance epoch (coarse freshness bucket).
    pub epoch: u32,
}

impl AttributeCertBody {
    /// Canonical bytes whose FDH the issuer blind-signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"p2drm-attr-v1");
        self.encode(&mut w);
        w.into_bytes()
    }
}

impl Encode for AttributeCertBody {
    fn encode(&self, w: &mut Writer) {
        self.pseudonym_key.encode(w);
        w.put_u32(self.epoch);
    }
}

impl Decode for AttributeCertBody {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(AttributeCertBody {
            pseudonym_key: RsaPublicKey::decode(r)?,
            epoch: r.get_u32()?,
        })
    }
}

/// A blind-issued attribute certificate. Carries the attribute name in the
/// clear so verifiers know which issuer key to check — the name is public
/// information ("adult"), the *holder* stays pseudonymous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeCertificate {
    /// Which attribute this asserts (selects the issuer key).
    pub attribute: String,
    /// Anonymous body.
    pub body: AttributeCertBody,
    /// Issuer blind signature (FDH-RSA) under the per-attribute key.
    pub signature: RsaSignature,
}

impl AttributeCertificate {
    /// Verifies against the issuer's per-attribute key.
    pub fn verify(&self, attribute_key: &RsaPublicKey) -> Result<(), PkiError> {
        blind::verify_fdh(attribute_key, &self.body.signing_bytes(), &self.signature)
            .map_err(|_| PkiError::BadSignature)
    }

    /// The pseudonym this credential is bound to.
    pub fn pseudonym_id(&self) -> KeyId {
        KeyId::of_rsa(&self.body.pseudonym_key)
    }
}

impl Encode for AttributeCertificate {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.attribute);
        self.body.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for AttributeCertificate {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(AttributeCertificate {
            attribute: r.get_str()?,
            body: AttributeCertBody::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

/// Naive subslice search (sizes here are tiny).
pub fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Convenience: hash arbitrary bytes into a [`KeyId`]-shaped identifier.
pub fn digest_id(data: &[u8]) -> KeyId {
    KeyId(sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;
    use p2drm_crypto::rsa::RsaKeyPair;

    fn rsa_pk(seed: u64) -> RsaPublicKey {
        RsaKeyPair::generate(512, &mut test_rng(seed))
            .public()
            .clone()
    }

    #[test]
    fn entity_kind_roundtrip_all() {
        for kind in [
            EntityKind::Root,
            EntityKind::RegistrationAuthority,
            EntityKind::ContentProvider,
            EntityKind::Device,
            EntityKind::SmartCard,
            EntityKind::Ttp,
            EntityKind::Mint,
            EntityKind::User,
        ] {
            let bytes = p2drm_codec::to_bytes(&kind);
            assert_eq!(p2drm_codec::from_bytes::<EntityKind>(&bytes).unwrap(), kind);
        }
        assert!(p2drm_codec::from_bytes::<EntityKind>(&[99]).is_err());
    }

    #[test]
    fn validity_window() {
        let v = Validity::new(10, 20);
        assert!(!v.contains(9));
        assert!(v.contains(10));
        assert!(v.contains(20));
        assert!(!v.contains(21));
    }

    #[test]
    fn body_codec_roundtrip() {
        let body = CertificateBody {
            serial: 7,
            kind: EntityKind::Device,
            subject_key: SubjectKey::Rsa(rsa_pk(50)),
            issuer: digest_id(b"issuer"),
            validity: Validity::new(0, 100),
            extensions: vec![Extension {
                key: "compliance".into(),
                value: vec![1],
            }],
        };
        let bytes = p2drm_codec::to_bytes(&body);
        let back: CertificateBody = p2drm_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, body);
        assert_eq!(back.extension("compliance"), Some(&[1u8][..]));
        assert_eq!(back.extension("missing"), None);
    }

    #[test]
    fn signing_bytes_deterministic_and_sensitive() {
        let mk = |serial| CertificateBody {
            serial,
            kind: EntityKind::SmartCard,
            subject_key: SubjectKey::Rsa(rsa_pk(51)),
            issuer: digest_id(b"i"),
            validity: Validity::new(0, 1),
            extensions: vec![],
        };
        assert_eq!(mk(1).signing_bytes(), mk(1).signing_bytes());
        assert_ne!(mk(1).signing_bytes(), mk(2).signing_bytes());
    }

    #[test]
    fn subject_key_type_accessors() {
        let k = SubjectKey::Rsa(rsa_pk(52));
        assert!(k.as_rsa().is_ok());
        assert_eq!(k.as_elgamal(), Err(PkiError::WrongKeyType));
    }

    #[test]
    fn contains_subslice_cases() {
        assert!(contains_subslice(b"hello world", b"lo wo"));
        assert!(contains_subslice(b"abc", b""));
        assert!(!contains_subslice(b"abc", b"abcd"));
        assert!(!contains_subslice(b"", b"a"));
        assert!(contains_subslice(b"aaa", b"aaa"));
    }

    #[test]
    fn key_id_debug_is_short() {
        let id = digest_id(b"x");
        let s = format!("{id:?}");
        assert!(s.len() < 32);
    }
}
