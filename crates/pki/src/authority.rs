//! Certificate authorities: self-signed roots, subordinate issuance, and
//! the registration authority's dedicated blind-signing key.

use crate::cert::{
    Certificate, CertificateBody, EntityKind, Extension, KeyId, SubjectKey, Validity,
};
use p2drm_crypto::rng::CryptoRng;
use p2drm_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use std::sync::atomic::{AtomicU64, Ordering};

/// A certificate authority: an RSA signing key plus its own certificate.
///
/// Issuance takes `&self` (the serial counter is atomic), so shared
/// server-side entities — the RA, a provider bootstrapping under one root
/// — can certify subjects concurrently.
pub struct CertificateAuthority {
    keypair: RsaKeyPair,
    cert: Certificate,
    next_serial: AtomicU64,
}

impl CertificateAuthority {
    /// Creates a self-signed root.
    pub fn new_root<R: CryptoRng + ?Sized>(bits: usize, validity: Validity, rng: &mut R) -> Self {
        let keypair = RsaKeyPair::generate(bits, rng);
        let body = CertificateBody {
            serial: 0,
            kind: EntityKind::Root,
            subject_key: SubjectKey::Rsa(keypair.public().clone()),
            issuer: KeyId::of_rsa(keypair.public()),
            validity,
            extensions: vec![],
        };
        let signature = keypair.sign(&body.signing_bytes());
        CertificateAuthority {
            cert: Certificate { body, signature },
            keypair,
            next_serial: AtomicU64::new(1),
        }
    }

    /// Creates a subordinate authority certified by `parent`.
    pub fn new_subordinate<R: CryptoRng + ?Sized>(
        parent: &mut CertificateAuthority,
        kind: EntityKind,
        bits: usize,
        validity: Validity,
        rng: &mut R,
    ) -> Self {
        let keypair = RsaKeyPair::generate(bits, rng);
        let cert = parent.issue(
            kind,
            SubjectKey::Rsa(keypair.public().clone()),
            validity,
            vec![],
        );
        CertificateAuthority {
            keypair,
            cert,
            next_serial: AtomicU64::new(1),
        }
    }

    /// Issues a certificate for `subject_key`.
    pub fn issue(
        &self,
        kind: EntityKind,
        subject_key: SubjectKey,
        validity: Validity,
        extensions: Vec<Extension>,
    ) -> Certificate {
        let body = CertificateBody {
            serial: self.next_serial.fetch_add(1, Ordering::Relaxed),
            kind,
            subject_key,
            issuer: KeyId::of_rsa(self.keypair.public()),
            validity,
            extensions,
        };
        let signature = self.keypair.sign(&body.signing_bytes());
        Certificate { body, signature }
    }

    /// This authority's verification key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// This authority's own certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// This authority's key id.
    pub fn key_id(&self) -> KeyId {
        KeyId::of_rsa(self.keypair.public())
    }

    /// Signs arbitrary canonical bytes (CRLs, receipts).
    pub fn sign_bytes(&self, data: &[u8]) -> p2drm_crypto::rsa::RsaSignature {
        self.keypair.sign(data)
    }

    /// Access to the underlying keypair for protocol engines that need raw
    /// operations (e.g. license issuance receipts).
    pub fn keypair(&self) -> &RsaKeyPair {
        &self.keypair
    }
}

/// The registration authority's key material.
///
/// Two separated keys: `identity` certifies users/cards with standard
/// signatures; `blind` ONLY produces blind FDH signatures over pseudonym
/// certificate bodies. Anything signed by `blind` means exactly
/// "a registered card asked me to certify one pseudonym" — nothing more,
/// which is why signing unseen bytes is acceptable.
pub struct RegistrationAuthorityKeys {
    /// Standard certification authority for cards and users.
    pub identity: CertificateAuthority,
    /// Dedicated blind-signing key for pseudonym certificates.
    pub blind: RsaKeyPair,
    /// Certificate binding the blind key into the hierarchy.
    pub blind_cert: Certificate,
}

impl RegistrationAuthorityKeys {
    /// Creates RA keys under `root`.
    pub fn create<R: CryptoRng + ?Sized>(
        root: &mut CertificateAuthority,
        bits: usize,
        validity: Validity,
        rng: &mut R,
    ) -> Self {
        let identity = CertificateAuthority::new_subordinate(
            root,
            EntityKind::RegistrationAuthority,
            bits,
            validity,
            rng,
        );
        let blind = RsaKeyPair::generate(bits, rng);
        let blind_cert = root.issue(
            EntityKind::RegistrationAuthority,
            SubjectKey::Rsa(blind.public().clone()),
            validity,
            vec![Extension {
                key: "usage".into(),
                value: b"blind-pseudonym-issuance".to_vec(),
            }],
        );
        RegistrationAuthorityKeys {
            identity,
            blind,
            blind_cert,
        }
    }

    /// The blind verification key pseudonym certificates verify against.
    pub fn blind_public(&self) -> &RsaPublicKey {
        self.blind.public()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;

    fn validity() -> Validity {
        Validity::new(0, 1_000_000)
    }

    #[test]
    fn root_is_self_verifying() {
        let mut rng = test_rng(60);
        let root = CertificateAuthority::new_root(512, validity(), &mut rng);
        assert!(root.certificate().verify(root.public_key(), 500).is_ok());
        assert_eq!(root.certificate().body.kind, EntityKind::Root);
    }

    #[test]
    fn issued_cert_verifies_against_issuer_only() {
        let mut rng = test_rng(61);
        let root = CertificateAuthority::new_root(512, validity(), &mut rng);
        let other = CertificateAuthority::new_root(512, validity(), &mut rng);
        let subject = RsaKeyPair::generate(512, &mut rng);
        let cert = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(subject.public().clone()),
            validity(),
            vec![],
        );
        assert!(cert.verify(root.public_key(), 10).is_ok());
        assert!(cert.verify(other.public_key(), 10).is_err());
    }

    #[test]
    fn serials_increment() {
        let mut rng = test_rng(62);
        let root = CertificateAuthority::new_root(512, validity(), &mut rng);
        let k = RsaKeyPair::generate(512, &mut rng);
        let c1 = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(k.public().clone()),
            validity(),
            vec![],
        );
        let c2 = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(k.public().clone()),
            validity(),
            vec![],
        );
        assert_eq!(c1.body.serial + 1, c2.body.serial);
    }

    #[test]
    fn expired_cert_rejected() {
        let mut rng = test_rng(63);
        let root = CertificateAuthority::new_root(512, validity(), &mut rng);
        let k = RsaKeyPair::generate(512, &mut rng);
        let cert = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(k.public().clone()),
            Validity::new(100, 200),
            vec![],
        );
        assert!(matches!(
            cert.verify(root.public_key(), 99),
            Err(crate::PkiError::Expired { .. })
        ));
        assert!(cert.verify(root.public_key(), 150).is_ok());
        assert!(cert.verify(root.public_key(), 201).is_err());
    }

    #[test]
    fn tampered_body_rejected() {
        let mut rng = test_rng(64);
        let root = CertificateAuthority::new_root(512, validity(), &mut rng);
        let k = RsaKeyPair::generate(512, &mut rng);
        let mut cert = root.issue(
            EntityKind::Device,
            SubjectKey::Rsa(k.public().clone()),
            validity(),
            vec![],
        );
        cert.body.serial += 1;
        assert_eq!(
            cert.verify(root.public_key(), 10),
            Err(crate::PkiError::BadSignature)
        );
    }

    #[test]
    fn ra_keys_are_separated() {
        let mut rng = test_rng(65);
        let mut root = CertificateAuthority::new_root(512, validity(), &mut rng);
        let ra = RegistrationAuthorityKeys::create(&mut root, 512, validity(), &mut rng);
        // The two RA keys differ and both chain to the root.
        assert_ne!(
            ra.identity.public_key().fingerprint(),
            ra.blind_public().fingerprint()
        );
        assert!(ra
            .identity
            .certificate()
            .verify(root.public_key(), 10)
            .is_ok());
        assert!(ra.blind_cert.verify(root.public_key(), 10).is_ok());
        assert_eq!(
            ra.blind_cert.body.extension("usage"),
            Some(&b"blind-pseudonym-issuance"[..])
        );
    }

    #[test]
    fn subordinate_chain() {
        let mut rng = test_rng(66);
        let mut root = CertificateAuthority::new_root(512, validity(), &mut rng);
        let sub = CertificateAuthority::new_subordinate(
            &mut root,
            EntityKind::ContentProvider,
            512,
            validity(),
            &mut rng,
        );
        assert!(sub.certificate().verify(root.public_key(), 10).is_ok());
        // Sub can issue leaf certs verifiable against the sub key.
        let leaf_key = RsaKeyPair::generate(512, &mut rng);
        let leaf = sub.issue(
            EntityKind::Device,
            SubjectKey::Rsa(leaf_key.public().clone()),
            validity(),
            vec![],
        );
        assert!(leaf.verify(sub.public_key(), 10).is_ok());
        assert!(leaf.verify(root.public_key(), 10).is_err());
    }
}
