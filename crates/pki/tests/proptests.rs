//! Property tests for certificate encodings and revocation structures.

use p2drm_pki::cert::{
    digest_id, CertificateBody, EntityKind, Extension, KeyId, SubjectKey, Validity,
};
use p2drm_pki::crl::{BloomCrl, RevocationList};
use proptest::prelude::*;
use std::sync::OnceLock;

fn fixed_rsa() -> &'static p2drm_crypto::rsa::RsaPublicKey {
    static KEY: OnceLock<p2drm_crypto::rsa::RsaPublicKey> = OnceLock::new();
    KEY.get_or_init(|| {
        p2drm_crypto::rsa::RsaKeyPair::generate(512, &mut p2drm_crypto::rng::test_rng(0xBB))
            .public()
            .clone()
    })
}

fn entity_kind() -> impl Strategy<Value = EntityKind> {
    prop_oneof![
        Just(EntityKind::Root),
        Just(EntityKind::RegistrationAuthority),
        Just(EntityKind::ContentProvider),
        Just(EntityKind::Device),
        Just(EntityKind::SmartCard),
        Just(EntityKind::Ttp),
        Just(EntityKind::Mint),
        Just(EntityKind::User),
    ]
}

fn extension() -> impl Strategy<Value = Extension> {
    ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..24))
        .prop_map(|(key, value)| Extension { key, value })
}

fn cert_body() -> impl Strategy<Value = CertificateBody> {
    (
        any::<u64>(),
        entity_kind(),
        any::<[u8; 32]>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(extension(), 0..4),
    )
        .prop_map(
            |(serial, kind, issuer, from, until, extensions)| CertificateBody {
                serial,
                kind,
                subject_key: SubjectKey::Rsa(fixed_rsa().clone()),
                issuer: KeyId(issuer),
                validity: Validity::new(from.min(until), from.max(until)),
                extensions,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn certificate_body_roundtrip(body in cert_body()) {
        let bytes = p2drm_codec::to_bytes(&body);
        let back: CertificateBody = p2drm_codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, body);
    }

    #[test]
    fn signing_bytes_injective_on_serial(body in cert_body(), other_serial in any::<u64>()) {
        let mut other = body.clone();
        other.serial = other_serial;
        if body.serial != other.serial {
            prop_assert_ne!(body.signing_bytes(), other.signing_bytes());
        } else {
            prop_assert_eq!(body.signing_bytes(), other.signing_bytes());
        }
    }

    #[test]
    fn revocation_list_set_semantics(ids in proptest::collection::vec(any::<u64>(), 0..64)) {
        let keyids: Vec<KeyId> = ids.iter().map(|i| digest_id(&i.to_le_bytes())).collect();
        let crl = RevocationList::from_ids(keyids.clone());
        let unique: std::collections::BTreeSet<_> = keyids.iter().cloned().collect();
        prop_assert_eq!(crl.len(), unique.len());
        for id in &keyids {
            prop_assert!(crl.contains(id));
            prop_assert!(crl.contains_linear(id));
        }
        // Absent ids are absent in both probe paths.
        let absent = digest_id(b"definitely-not-revoked");
        if !unique.contains(&absent) {
            prop_assert!(!crl.contains(&absent));
            prop_assert!(!crl.contains_linear(&absent));
        }
    }

    #[test]
    fn bloom_never_false_negative(present in proptest::collection::vec(any::<u64>(), 1..128),
                                  probe in any::<u64>()) {
        let mut bloom = BloomCrl::new(present.len(), 0.01);
        for i in &present {
            bloom.insert(digest_id(&i.to_le_bytes()));
        }
        for i in &present {
            prop_assert!(bloom.contains(&digest_id(&i.to_le_bytes())));
        }
        // Exactness: contains() agrees with ground truth for any probe.
        let truth = present.contains(&probe);
        prop_assert_eq!(bloom.contains(&digest_id(&probe.to_le_bytes())), truth);
    }

    #[test]
    fn crl_insert_idempotent(ids in proptest::collection::vec(any::<u64>(), 0..32)) {
        let mut crl = RevocationList::new();
        for i in &ids {
            crl.insert(digest_id(&i.to_le_bytes()));
        }
        let len_once = crl.len();
        for i in &ids {
            prop_assert!(!crl.insert(digest_id(&i.to_le_bytes())), "reinsert must report false");
        }
        prop_assert_eq!(crl.len(), len_once);
    }
}
