//! Robustness properties for the analyzer front end: lexing and
//! source-model construction must never panic, whatever bytes they are
//! fed — the tool runs over every file in the workspace, including
//! ones mid-edit, and a front-end crash would take CI down with it.

use p2drm_lint::lexer;
use p2drm_lint::source::SourceFile;
use proptest::prelude::*;

/// Arbitrary (lossy-UTF-8) strings: exercises truncated string/char
/// literals, stray quotes, unbalanced delimiters and raw control bytes.
fn raw_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..256)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// Rust-flavored token soup: the same fragments the passes key on
/// (annotations, quotes, delimiters, operators) in random order, which
/// reaches much deeper into the parser than uniform bytes do.
fn token_soup() -> impl Strategy<Value = String> {
    const FRAGMENTS: &[&str] = &[
        "fn",
        "let",
        "mut",
        "if",
        "while",
        "match",
        "unsafe",
        "impl",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        "<",
        ">",
        "<<",
        ">>",
        ";",
        ",",
        "=",
        "==",
        "&&",
        "||",
        "&",
        ".lock()",
        ".unwrap()",
        "'a",
        "'x'",
        "b'\\n'",
        "\"str",
        "\"lit\"",
        "b\"bytes\"",
        "r#\"raw\"#",
        "// lint: secret",
        "// SAFETY:",
        "/* block",
        "*/",
        "#[test]",
        "x",
        "0x1f",
        "1_000",
        "::",
    ];
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64).prop_map(|picks| {
        let mut s = String::new();
        for (n, i) in picks.into_iter().enumerate() {
            s.push_str(FRAGMENTS[i]);
            s.push(if n % 7 == 0 { '\n' } else { ' ' });
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexing_arbitrary_bytes_never_panics(src in raw_text()) {
        let toks = lexer::lex(&src);
        // Reconstruction sanity: every token's text came from the input.
        prop_assert!(toks.iter().all(|t| !t.text.is_empty()));
    }

    #[test]
    fn parsing_arbitrary_bytes_never_panics(src in raw_text()) {
        let sf = SourceFile::parse("fuzz.rs", &src);
        let _ = sf.fns();
        let _ = sf.condition_ranges();
    }

    #[test]
    fn full_pipeline_survives_token_soup(src in token_soup()) {
        let sf = SourceFile::parse("soup.rs", &src);
        let _ = p2drm_lint::taint::run(&sf);
        let _ = p2drm_lint::safety::run(&sf);
        let _ = p2drm_lint::panicpath::run(&sf);
        let edges = p2drm_lint::lockorder::extract(&sf);
        let _ = p2drm_lint::lockorder::analyze(&edges);
    }
}

/// Every checked-in source file in the workspace must lex and parse
/// without panicking — the cheap end-to-end guarantee backing the CI
/// sweep.
#[test]
fn workspace_sources_lex_and_parse() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let mut stack = vec![root];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable dir") {
            let path = entry.expect("readable entry").path();
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if path.is_dir() {
                if !name.starts_with('.') && name != "target" && name != "results" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).expect("readable source");
                let sf = SourceFile::parse(&path.to_string_lossy(), &src);
                let _ = sf.fns();
                seen += 1;
            }
        }
    }
    assert!(seen > 50, "workspace walk found only {seen} .rs files");
}
