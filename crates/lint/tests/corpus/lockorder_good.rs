//! Corpus: the fixed version of `lockorder_bad.rs` — every path
//! acquires `alpha` before `beta`, so the acquisition graph is acyclic.

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a - *b
    }
}
