//! Corpus: every `unsafe` site carries a `// SAFETY:` comment — on the
//! same line, directly above, or at the head of a multi-line comment
//! block. The safety pass must stay quiet.

pub fn deref_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to a live, aligned byte.
    unsafe { *p }
}

// SAFETY: writes a single byte the caller has exclusive access to.
unsafe fn with_contract(p: *mut u8) {
    *p = 0;
}

pub struct Wrapper(*mut u8);

// SAFETY: the pointer is only ever dereferenced behind a lock, so the
// wrapper can move between threads; the multi-line block form places
// the marker several lines above the keyword.
unsafe impl Send for Wrapper {}

pub fn same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller contract as in deref_raw.
}
