//! Corpus: secret-dependent control flow, indexing and short-circuit
//! evaluation the taint pass must flag. Not compiled — parsed by
//! `tests/corpus.rs`.

pub fn branch_on_secret(secret: u64) -> u32 { // lint: secret
    if secret == 0 {
        return 1;
    }
    0
}

pub fn index_by_secret(table: &[u8], secret: usize) -> u8 { // lint: secret(secret)
    table[secret & 0x0f]
}

pub fn short_circuit_on_secret(secret_bit: bool, public_ok: bool) -> bool {
    // lint: secret(secret_bit)
    let ok = public_ok && secret_bit;
    ok
}

pub fn taint_flows_through_let(key: &[u8]) -> bool { // lint: secret
    let first = key[0];
    let derived = first ^ 0x36;
    while derived != 0 {
        return true;
    }
    false
}
