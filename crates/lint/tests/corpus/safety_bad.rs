//! Corpus: `unsafe` without `// SAFETY:` justification. Every site in
//! this file must be flagged by the safety pass.

pub fn deref_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe fn no_contract(p: *mut u8) {
    *p = 0;
}

pub struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}

// This comment talks about something else entirely, so it does not
// satisfy the safety pass.
unsafe impl Sync for Wrapper {}
