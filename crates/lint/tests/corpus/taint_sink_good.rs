//! Telemetry-sink corpus, quiet twin: the same instrumentation points
//! recording only static names, counts and durations — nothing derived
//! from the secret — plus one justified `lint: public` site.

fn record_purchase(
    card_id: u64, // lint: secret
    registry: &Registry,
) {
    // Static metric names and plain counts are always fine.
    registry.counter("service_purchases");
    registry.gauge("queue_depth");
    stage("mint_deposit");

    // The secret still participates in the business logic…
    let entitled = lookup(card_id);
    serve(entitled);

    // …and a justified aggregate may be recorded explicitly.
    let shard = card_id % 16;
    // lint: public(shard index is load-balancing data, 16-way aggregate)
    registry.counter(shard);
}
