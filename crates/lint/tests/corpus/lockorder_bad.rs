//! Corpus: an AB/BA lock-order inversion the lock-order pass must
//! report as a cycle.

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a - *b
    }
}
