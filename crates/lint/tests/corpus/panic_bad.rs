//! Corpus: panic paths a request-serving module must not contain.
//! Every site in this file must be flagged by the panic pass.

pub fn unwrap_option(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_result(v: Result<u32, ()>) -> u32 {
    v.expect("infallible, surely")
}

pub fn explicit_panic(n: u32) -> u32 {
    if n > 10 {
        panic!("out of range");
    }
    n
}

pub fn unchecked_index(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

pub fn unreachable_arm(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!(),
    }
}
