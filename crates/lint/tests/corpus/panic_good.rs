//! Corpus: the panic-free rewrites of `panic_bad.rs` — typed errors,
//! `get`-based access, and `lint: allow(panic, <invariant>)` where a
//! panic is genuinely unreachable. The panic pass must stay quiet.

pub fn unwrap_option(v: Option<u32>) -> Result<u32, &'static str> {
    v.ok_or("missing value")
}

pub fn expect_result(v: Result<u32, ()>) -> Result<u32, &'static str> {
    v.map_err(|()| "upstream failure")
}

pub fn explicit_panic(n: u32) -> Result<u32, &'static str> {
    if n > 10 {
        return Err("out of range");
    }
    Ok(n)
}

pub fn checked_index(buf: &[u8], i: usize) -> Option<u8> {
    buf.get(i).copied()
}

pub fn invariant_index(buf: &[u8; 4]) -> u8 {
    // lint: allow(panic, the index is a constant within the array bound)
    buf[3]
}
