//! Corpus: the constant-time rewrites of `taint_bad.rs` — branch-free
//! selection, non-short-circuit bit operators, and `lint: public`
//! annotations where the branch really is on public data. Must produce
//! zero taint findings.

pub fn branch_free_select(secret: u64) -> u32 {
    // lint: secret(secret)
    let is_zero = (secret.wrapping_sub(1) >> 63) as u32;
    is_zero
}

pub fn masked_scan(table: &[u8], secret: usize) -> u8 {
    // lint: secret(secret)
    let mut acc = 0u8;
    for (i, &v) in table.iter().enumerate() {
        let hit = (i == secret & 0x0f) as u8;
        acc |= v & hit.wrapping_neg();
    }
    acc
}

pub fn bitwise_combine(secret_bit: bool, public_ok: bool) -> bool {
    // lint: secret(secret_bit)
    (public_ok as u8 & secret_bit as u8) != 0
}

pub fn public_length_branch(key: &[u8]) -> usize { // lint: secret
    // lint: public(only the key length is branched on, never its bytes)
    if key.len() > 64 {
        return 64;
    }
    key.len()
}
