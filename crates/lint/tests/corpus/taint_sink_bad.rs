//! Telemetry-sink corpus: secret values flowing into metrics or spans.
//! Every sink call below must be flagged by `taint::run_sinks`.

fn record_purchase(
    card_id: u64, // lint: secret
    registry: &Registry,
) {
    // Direct leak: the card id lands in a metric.
    registry.counter(card_id);

    // Indirect leak: taint flows through a binding first.
    let bucket = card_id % 16;
    registry.gauge(bucket);

    // Span leak: a secret-derived label reaches the tracer.
    let tag = bucket;
    stage(tag);
}
