//! Corpus tests: each `tests/corpus/*_bad.rs` snippet must trip its
//! pass, and the matching `*_good.rs` rewrite must be quiet. The
//! corpus files are data, not compiled code (the workspace sweep skips
//! them via `lint.toml`'s `[skip]` section), so they double as living
//! documentation of what each pass accepts and rejects.

use p2drm_lint::source::SourceFile;
use p2drm_lint::{lockorder, panicpath, safety, taint};

fn parse(name: &str, src: &str) -> SourceFile {
    SourceFile::parse(name, src)
}

#[test]
fn taint_bad_is_fully_flagged() {
    let sf = parse("taint_bad.rs", include_str!("corpus/taint_bad.rs"));
    let f = taint::run(&sf);
    assert!(
        f.iter()
            .any(|x| x.message.contains("branch on secret-tainted")),
        "missing branch finding: {f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.message.contains("index by secret-tainted")),
        "missing index finding: {f:?}"
    );
    assert!(
        f.iter().any(|x| x.message.contains("short-circuit")),
        "missing short-circuit finding: {f:?}"
    );
    // The `while` in taint_flows_through_let proves propagation through
    // two `let` bindings, not just direct use of the seed.
    assert!(
        f.iter().any(|x| x.message.contains("`derived`")),
        "taint did not flow through let bindings: {f:?}"
    );
    assert_eq!(f.len(), 4, "unexpected extra findings: {f:?}");
}

#[test]
fn taint_good_is_quiet() {
    let sf = parse("taint_good.rs", include_str!("corpus/taint_good.rs"));
    let f = taint::run(&sf);
    assert!(f.is_empty(), "constant-time rewrite still flagged: {f:?}");
}

fn sink_names() -> Vec<String> {
    ["counter", "gauge", "histogram", "stage", "flag", "begin"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

#[test]
fn taint_sink_bad_is_fully_flagged() {
    let sf = parse(
        "taint_sink_bad.rs",
        include_str!("corpus/taint_sink_bad.rs"),
    );
    let f = taint::run_sinks(&sf, &sink_names());
    let hit = |needle: &str| f.iter().any(|x| x.message.contains(needle));
    assert!(hit("`card_id` passed to telemetry sink `counter`"), "{f:?}");
    assert!(hit("`bucket` passed to telemetry sink `gauge`"), "{f:?}");
    assert!(hit("`tag` passed to telemetry sink `stage`"), "{f:?}");
    assert_eq!(f.len(), 3, "unexpected extra findings: {f:?}");
}

#[test]
fn taint_sink_good_is_quiet() {
    let sf = parse(
        "taint_sink_good.rs",
        include_str!("corpus/taint_sink_good.rs"),
    );
    let f = taint::run_sinks(&sf, &sink_names());
    assert!(f.is_empty(), "static-label rewrite still flagged: {f:?}");
}

#[test]
fn safety_bad_is_fully_flagged() {
    let sf = parse("safety_bad.rs", include_str!("corpus/safety_bad.rs"));
    let f = safety::run(&sf);
    assert_eq!(f.len(), 4, "one finding per undocumented site: {f:?}");
}

#[test]
fn safety_good_is_quiet() {
    let sf = parse("safety_good.rs", include_str!("corpus/safety_good.rs"));
    let f = safety::run(&sf);
    assert!(f.is_empty(), "documented unsafe still flagged: {f:?}");
}

#[test]
fn panic_bad_is_fully_flagged() {
    let sf = parse("panic_bad.rs", include_str!("corpus/panic_bad.rs"));
    let f = panicpath::run(&sf);
    let hit = |needle: &str| f.iter().any(|x| x.message.contains(needle));
    assert!(hit("unwrap"), "{f:?}");
    assert!(hit("expect"), "{f:?}");
    assert!(hit("panic!"), "{f:?}");
    assert!(hit("unreachable!"), "{f:?}");
    assert!(hit("indexing"), "{f:?}");
    assert_eq!(f.len(), 5, "unexpected extra findings: {f:?}");
}

#[test]
fn panic_good_is_quiet() {
    let sf = parse("panic_good.rs", include_str!("corpus/panic_good.rs"));
    let f = panicpath::run(&sf);
    assert!(f.is_empty(), "panic-free rewrite still flagged: {f:?}");
}

#[test]
fn lockorder_bad_reports_the_ab_ba_cycle() {
    let sf = parse("lockorder_bad.rs", include_str!("corpus/lockorder_bad.rs"));
    let edges = lockorder::extract(&sf);
    let (findings, graph) = lockorder::analyze(&edges);
    assert!(
        !findings.is_empty(),
        "AB/BA inversion not reported; edges: {edges:?}"
    );
    assert!(
        graph.contains("CYCLES"),
        "graph text lacks cycle marker:\n{graph}"
    );
    assert!(
        findings[0].message.contains("alpha") && findings[0].message.contains("beta"),
        "cycle should name both lock classes: {findings:?}"
    );
}

#[test]
fn lockorder_good_is_acyclic() {
    let sf = parse(
        "lockorder_good.rs",
        include_str!("corpus/lockorder_good.rs"),
    );
    let edges = lockorder::extract(&sf);
    assert!(!edges.is_empty(), "consistent nesting still yields edges");
    let (findings, graph) = lockorder::analyze(&edges);
    assert!(findings.is_empty(), "false cycle: {findings:?}");
    assert!(graph.contains("no cycles"), "graph text:\n{graph}");
}
