//! `lint.toml` loader. The offline environment forbids a real TOML
//! dependency, so this is a tiny hand parser covering exactly the
//! subset the config uses: `[section]` headers and `key = [ "…", … ]`
//! string arrays (single- or multi-line), plus `#` comments.

use std::collections::BTreeMap;

/// Parsed `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path prefixes of modules the taint pass treats as timing-sensitive.
    pub taint_paths: Vec<String>,
    /// Function names treated as telemetry sinks: a secret-tainted
    /// identifier passed as an argument to a call of one of these names
    /// is a finding (privacy rule — secrets must never reach metrics or
    /// spans).
    pub taint_sinks: Vec<String>,
    /// Path prefixes the telemetry-sink rule runs over.
    pub taint_sink_paths: Vec<String>,
    /// Path prefixes of request-serving modules the panic-path pass covers.
    pub panic_paths: Vec<String>,
    /// Path prefixes the retry-discipline pass covers: bare `sleep`
    /// calls there must route their duration through `RetryPolicy` or
    /// carry `// lint: allow(retry, <why>)`.
    pub retry_paths: Vec<String>,
    /// Path prefixes excluded from every pass (corpus fixtures, target/).
    pub skip_paths: Vec<String>,
}

impl Config {
    /// Parses the config text. Unknown sections and keys are ignored so
    /// the format can grow without breaking older binaries.
    pub fn parse(text: &str) -> Result<Config, String> {
        let tables = parse_tables(text)?;
        let get = |sec: &str, key: &str| -> Vec<String> {
            tables
                .get(sec)
                .and_then(|t| t.get(key))
                .cloned()
                .unwrap_or_default()
        };
        Ok(Config {
            taint_paths: get("taint", "paths"),
            taint_sinks: get("taint", "sinks"),
            taint_sink_paths: get("taint", "sink_paths"),
            panic_paths: get("panic", "paths"),
            retry_paths: get("retry", "paths"),
            skip_paths: get("skip", "paths"),
        })
    }

    /// Does `path` (workspace-relative, `/`-separated) fall under any of
    /// the given prefixes?
    pub fn matches(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            let p = p.trim_end_matches('/');
            path == p || path.starts_with(p) && path[p.len()..].starts_with('/')
        })
    }

    /// Should every pass skip this file?
    pub fn skipped(&self, path: &str) -> bool {
        Self::matches(path, &self.skip_paths)
    }
}

type Tables = BTreeMap<String, BTreeMap<String, Vec<String>>>;

fn parse_tables(text: &str) -> Result<Tables, String> {
    let mut tables: Tables = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            tables.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, mut val)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = [...]`", ln + 1));
        };
        let key = key.trim().to_string();
        let mut buf = val.trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while !buf.contains(']') {
            let Some((_, next)) = lines.next() else {
                return Err(format!("lint.toml:{}: unterminated array", ln + 1));
            };
            buf.push(' ');
            buf.push_str(strip_comment(next).trim());
        }
        val = "";
        let _ = val;
        let items = parse_string_array(&buf).map_err(|e| format!("lint.toml:{}: {}", ln + 1, e))?;
        tables
            .entry(section.clone())
            .or_default()
            .insert(key, items);
    }
    Ok(tables)
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment outside quotes; the config never puts
    // `#` inside a path, so a simple quote scan suffices.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(s: &str) -> Result<Vec<String>, String> {
    let s = s.trim();
    let body = s
        .strip_prefix('[')
        .and_then(|s| s.rfind(']').map(|i| &s[..i]))
        .ok_or("expected a [\"…\"] array")?;
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let Some(open) = rest.find('"') else { break };
        let after = &rest[open + 1..];
        let close = after.find('"').ok_or("unterminated string")?;
        out.push(after[..close].to_string());
        rest = after[close + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            "# comment\n[taint]\npaths = [\"a/b.rs\", \"c\"]\nsinks = [\"counter\", \"stage\"]\nsink_paths = [\"g\"]\n\n[panic]\npaths = [\n  \"d/e.rs\", # trailing\n  \"f\",\n]\n[skip]\npaths = []\n",
        )
        .unwrap();
        assert_eq!(cfg.taint_paths, ["a/b.rs", "c"]);
        assert_eq!(cfg.taint_sinks, ["counter", "stage"]);
        assert_eq!(cfg.taint_sink_paths, ["g"]);
        assert_eq!(cfg.panic_paths, ["d/e.rs", "f"]);
        assert!(cfg.skip_paths.is_empty());
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let p = vec!["crates/net".to_string()];
        assert!(Config::matches("crates/net/src/server.rs", &p));
        assert!(Config::matches("crates/net", &p));
        assert!(!Config::matches("crates/netx/src/lib.rs", &p));
    }
}
