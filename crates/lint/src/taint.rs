//! Secret-taint / constant-time pass.
//!
//! Within each function of a timing-sensitive module, identifiers
//! seeded by `// lint: secret` annotations (optionally the explicit
//! form `// lint: secret(a, b)`) are tracked through assignments with
//! an intraprocedural fixpoint. A tainted identifier appearing in an
//! `if`/`while`/`match` head, as an operand of a short-circuit
//! operator, or inside an index expression is a finding unless the
//! site carries `// lint: public(<why>)`.
//!
//! The same taint machinery also powers the telemetry-sink rule
//! ([`run_sinks`]): in modules listed under `[taint] sink_paths`, a
//! tainted identifier passed as an argument to a call of a configured
//! sink name (`counter`, `stage`, …) is a finding — the observability
//! privacy rule that pseudonyms, card ids, license ids and coin values
//! never reach metrics or spans, checked statically.

use crate::source::{FnItem, SourceFile};
use crate::Finding;
use std::collections::HashSet;

const PASS: &str = "taint";

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Runs the pass over one file (caller has already checked the file is
/// in a configured taint path).
pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in sf.fns() {
        if sf.in_test(f.kw) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let tainted = compute_taint(sf, &f);
        if tainted.is_empty() {
            continue;
        }
        flag_conditions(sf, body, &tainted, &mut out);
        flag_short_circuit(sf, body, &tainted, &mut out);
        flag_indexing(sf, body, &tainted, &mut out);
    }
    out
}

/// Telemetry-sink rule over one file: a secret-tainted identifier
/// passed in the argument list of a call whose callee name is in
/// `sinks` is a finding unless the line carries `// lint: public(…)`.
/// Taint is seeded and propagated exactly as in [`run`], so a file
/// with no `// lint: secret` annotations is trivially quiet.
pub fn run_sinks(sf: &SourceFile, sinks: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in sf.fns() {
        if sf.in_test(f.kw) {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let tainted = compute_taint(sf, &f);
        if tainted.is_empty() {
            continue;
        }
        for &i in &sf.code {
            if i <= b0 || i >= b1 {
                continue;
            }
            let t = &sf.toks[i];
            if !t.is_ident_kind() || !sinks.iter().any(|s| s == &t.text) {
                continue;
            }
            // Callee position: the very next code token opens the
            // argument list.
            let Some(open) = sf.next_code(i).filter(|&j| sf.toks[j].is_punct("(")) else {
                continue;
            };
            let Some(close) = sf.matching[open] else {
                continue;
            };
            let hit = (open + 1..close).find(|&j| {
                let a = &sf.toks[j];
                a.is_ident_kind() && tainted.contains(&a.text)
            });
            if let Some(j) = hit {
                push(
                    sf,
                    &mut out,
                    t.line,
                    format!(
                        "secret-tainted `{}` passed to telemetry sink `{}` (secrets must never reach metrics or spans)",
                        sf.toks[j].text, t.text
                    ),
                );
            }
        }
    }
    out
}

/// Seed set: identifiers bound on lines annotated `// lint: secret`,
/// then propagated through `let`/assignment until fixpoint.
fn compute_taint(sf: &SourceFile, f: &FnItem) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();
    let (start, end) = match (f.params, f.body) {
        (Some((p0, _)), Some((_, b1))) => (p0, b1),
        (None, Some((b0, b1))) => (b0, b1),
        _ => return tainted,
    };
    let first_line = sf.toks[f.kw].line;
    let last_line = sf.toks[end].line;

    // Explicit seeds: `lint: secret(a, b)` anywhere in the fn's span.
    for t in &sf.toks {
        if t.line < first_line || t.line > last_line {
            continue;
        }
        if t.kind != crate::lexer::TokKind::Comment {
            continue;
        }
        if let Some(rest) = t.text.split("lint: secret").nth(1) {
            if let Some(args) = rest.strip_prefix('(').and_then(|s| s.split(')').next()) {
                for name in args.split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        tainted.insert(name.to_string());
                    }
                }
            }
        }
    }

    // Line-heuristic seeds: a *bare* `// lint: secret` on a param or
    // `let` line. The explicit `secret(…)` form names its identifiers
    // itself (handled above) and must not also seed the line below.
    for line in first_line..=last_line {
        let bare = sf.comments_for(line).any(|c| {
            c.split("lint: secret")
                .nth(1)
                .is_some_and(|rest| !rest.starts_with('('))
        });
        if bare {
            tainted.extend(binders_on_line(sf, line, start, end));
        }
    }

    // Fixpoint propagation: `let x = <tainted>` and `x = <tainted>`.
    loop {
        let before = tainted.len();
        propagate(sf, f, &mut tainted);
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

/// Identifiers bound on `line`: parameters (`name:`) and let-bindings
/// (`let [mut] name …`). Falls back to every non-keyword identifier on
/// the line so an annotation never silently seeds nothing.
fn binders_on_line(sf: &SourceFile, line: u32, start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let on_line: Vec<usize> = (start..=end.min(sf.toks.len() - 1))
        .filter(|&i| sf.toks[i].line == line && sf.toks[i].is_ident_kind())
        .collect();
    for &i in &on_line {
        let name = &sf.toks[i].text;
        if is_keyword(name) {
            continue;
        }
        let next_is_colon = sf.next_code(i).is_some_and(|j| sf.toks[j].is_punct(":"));
        let after_let = sf.prev_code(i).is_some_and(|j| {
            sf.toks[j].is_ident("let")
                || (sf.toks[j].is_ident("mut")
                    && sf.prev_code(j).is_some_and(|k| sf.toks[k].is_ident("let")))
        });
        if next_is_colon || after_let {
            out.push(name.clone());
        }
    }
    if out.is_empty() {
        for &i in &on_line {
            if !is_keyword(&sf.toks[i].text) {
                out.push(sf.toks[i].text.clone());
            }
        }
    }
    out
}

/// One propagation sweep over the function body.
fn propagate(sf: &SourceFile, f: &FnItem, tainted: &mut HashSet<String>) {
    let Some((b0, b1)) = f.body else { return };
    let code: Vec<usize> = sf
        .code
        .iter()
        .copied()
        .filter(|&i| i > b0 && i < b1)
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let t = &sf.toks[i];
        // `let [mut] x (…pattern…) = RHS ;`
        if t.is_ident("let") {
            let mut binders = Vec::new();
            let mut j = k + 1;
            let mut eq = None;
            while j < code.len() {
                let tok = &sf.toks[code[j]];
                if tok.is_punct("=") {
                    eq = Some(j);
                    break;
                }
                if tok.is_punct(";") {
                    break;
                }
                if tok.is_ident_kind() && !is_keyword(&tok.text) {
                    binders.push(tok.text.clone());
                }
                j += 1;
            }
            if let Some(eq) = eq {
                if rhs_tainted(sf, &code, eq + 1, tainted) {
                    tainted.extend(binders);
                }
            }
            k = j + 1;
            continue;
        }
        // `x = RHS` / `x += RHS`: statement-level reassignment.
        if t.is_ident_kind()
            && !is_keyword(&t.text)
            && sf.next_code(i).is_some_and(|j| {
                let p = &sf.toks[j];
                p.is_punct("=")
                    || ["+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="]
                        .iter()
                        .any(|op| p.is_punct(op))
            })
        {
            // Only when the ident starts the statement (prev is ; { } or a
            // block opener) — avoids `==`-free false matches in struct
            // literals and defaults.
            let starts_stmt = sf.prev_code(i).is_none_or(|j| {
                let p = &sf.toks[j];
                p.is_punct(";") || p.is_punct("{") || p.is_punct("}")
            });
            if starts_stmt {
                // Find `=` then scan RHS.
                let eq = code[k..]
                    .iter()
                    .position(|&x| {
                        let p = &sf.toks[x];
                        p.kind == crate::lexer::TokKind::Punct
                            && p.text.ends_with('=')
                            && p.text != "=="
                            && p.text != "<="
                            && p.text != ">="
                            && p.text != "!="
                            && p.text != "=>"
                    })
                    .map(|off| k + off);
                if let Some(eq) = eq {
                    if rhs_tainted(sf, &code, eq + 1, tainted) {
                        tainted.insert(t.text.clone());
                    }
                }
            }
        }
        k += 1;
    }
}

/// Does the expression from `code[from]` to the next `;` (or end of
/// body) mention a tainted identifier?
fn rhs_tainted(sf: &SourceFile, code: &[usize], from: usize, tainted: &HashSet<String>) -> bool {
    for &i in code.iter().skip(from) {
        let t = &sf.toks[i];
        if t.is_punct(";") {
            break;
        }
        if t.is_ident_kind() && tainted.contains(&t.text) {
            return true;
        }
    }
    false
}

fn push(sf: &SourceFile, out: &mut Vec<Finding>, line: u32, message: String) {
    if sf.has_annotation(line, "lint: public(") {
        return;
    }
    out.push(Finding::new(PASS, sf, line, message));
}

fn flag_conditions(
    sf: &SourceFile,
    (b0, b1): (usize, usize),
    tainted: &HashSet<String>,
    out: &mut Vec<Finding>,
) {
    for (kw, body) in sf.condition_ranges() {
        if kw <= b0 || kw >= b1 {
            continue;
        }
        let hit = (kw..body).find(|&i| {
            let t = &sf.toks[i];
            t.is_ident_kind() && tainted.contains(&t.text)
        });
        if let Some(i) = hit {
            push(
                sf,
                out,
                sf.toks[kw].line,
                format!(
                    "branch on secret-tainted `{}` in `{}` head (non-constant-time)",
                    sf.toks[i].text, sf.toks[kw].text
                ),
            );
        }
    }
}

/// Short-circuit operators outside condition heads (those are already
/// flagged): `let ok = secret_bit && other;` leaks via evaluation order.
fn flag_short_circuit(
    sf: &SourceFile,
    (b0, b1): (usize, usize),
    tainted: &HashSet<String>,
    out: &mut Vec<Finding>,
) {
    let conds = sf.condition_ranges();
    for (ci, &i) in sf.code.iter().enumerate() {
        if i <= b0 || i >= b1 {
            continue;
        }
        let t = &sf.toks[i];
        if !(t.is_punct("&&") || t.is_punct("||")) {
            continue;
        }
        if conds.iter().any(|&(a, b)| a <= i && i < b) {
            continue;
        }
        // `&&` as a double reference (`&&x`) has no left operand ident:
        // treat as short-circuit only when the previous token can end an
        // expression.
        let lhs_ok = ci > 0 && {
            let p = &sf.toks[sf.code[ci - 1]];
            p.is_ident_kind()
                || p.is_punct(")")
                || p.is_punct("]")
                || matches!(p.kind, crate::lexer::TokKind::Num)
        };
        if !lhs_ok {
            continue;
        }
        let hit = operand_window(sf, ci)
            .into_iter()
            .find(|&j| tainted.contains(&sf.toks[j].text) && sf.toks[j].is_ident_kind());
        if let Some(j) = hit {
            push(
                sf,
                out,
                t.line,
                format!(
                    "short-circuit `{}` on secret-tainted `{}` (non-constant-time; use `&`/`|`)",
                    t.text, sf.toks[j].text
                ),
            );
        }
    }
}

/// Token indices of the operands around a short-circuit operator at
/// code-position `ci`: scan outward to the nearest statement/grouping
/// boundary in both directions.
fn operand_window(sf: &SourceFile, ci: usize) -> Vec<usize> {
    let stop = |t: &crate::lexer::Tok| {
        t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct(",") || t.is_punct("=")
    };
    let mut out = Vec::new();
    let mut k = ci;
    while k > 0 {
        k -= 1;
        let t = &sf.toks[sf.code[k]];
        if stop(t) {
            break;
        }
        out.push(sf.code[k]);
    }
    let mut k = ci + 1;
    while k < sf.code.len() {
        let t = &sf.toks[sf.code[k]];
        if stop(t) {
            break;
        }
        out.push(sf.code[k]);
        k += 1;
    }
    out
}

/// Index expressions whose *index* mentions a tainted identifier:
/// `table[secret]` is a secret-dependent memory access.
fn flag_indexing(
    sf: &SourceFile,
    (b0, b1): (usize, usize),
    tainted: &HashSet<String>,
    out: &mut Vec<Finding>,
) {
    for &i in &sf.code {
        if i <= b0 || i >= b1 {
            continue;
        }
        if !sf.toks[i].is_punct("[") {
            continue;
        }
        // Index expression, not array literal/type: previous code token
        // must be able to end an expression.
        let is_index = sf.prev_code(i).is_some_and(|j| {
            let p = &sf.toks[j];
            p.is_ident_kind() && !is_keyword(&p.text) || p.is_punct("]") || p.is_punct(")")
        });
        if !is_index {
            continue;
        }
        let Some(close) = sf.matching[i] else {
            continue;
        };
        let hit = (i + 1..close).find(|&j| {
            let t = &sf.toks[j];
            t.is_ident_kind() && tainted.contains(&t.text)
        });
        if let Some(j) = hit {
            push(
                sf,
                out,
                sf.toks[i].line,
                format!(
                    "index by secret-tainted `{}` (secret-dependent memory access)",
                    sf.toks[j].text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        run(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn seeds_from_param_annotation_and_propagates() {
        let f = findings(
            "fn f(\n  key: &[u8], // lint: secret\n  n: usize,\n) {\n  let k0 = key[0];\n  if k0 == 0 { g(); }\n}",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("branch on secret-tainted `k0`"));
    }

    #[test]
    fn public_annotation_suppresses() {
        let f = findings(
            "fn f(key: u8) { // lint: secret\n  // lint: public(length is not secret)\n  if key == 0 { g(); }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn index_and_short_circuit_flagged() {
        let f = findings(
            "fn f(s: u8) { // lint: secret\n  let x = table[s];\n  let ok = s == 1 && other;\n}",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.message.contains("index by secret-tainted")));
        assert!(f.iter().any(|x| x.message.contains("short-circuit")));
    }

    #[test]
    fn explicit_seed_list() {
        let f = findings("fn f(a: u8, b: u8) {\n  // lint: secret(b)\n  if a > 0 { g(); }\n  while b > 0 { h(); }\n}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`b`"));
    }

    #[test]
    fn untainted_code_is_quiet() {
        let f = findings("fn f(n: usize) { if n > 0 { g(); } let x = v[n]; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sink_rule_flags_tainted_call_args() {
        let sinks = vec!["counter".to_string(), "stage".to_string()];
        let sf = SourceFile::parse(
            "t.rs",
            "fn f(card_id: u64) { // lint: secret\n  let label = card_id;\n  m.counter(label);\n  stage(\"ok\");\n}",
        );
        let f = run_sinks(&sf, &sinks);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`label`"));
        assert!(f[0].message.contains("`counter`"));
    }

    #[test]
    fn sink_rule_allows_static_labels_and_public_sites() {
        let sinks = vec!["counter".to_string()];
        let sf = SourceFile::parse(
            "t.rs",
            "fn f(n: u64) { // lint: secret\n  m.counter(\"requests\");\n  // lint: public(count only, not the value)\n  m.counter(n);\n}",
        );
        assert!(run_sinks(&sf, &sinks).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let f = findings("#[test]\nfn t() {\n  let key = 1u8; // lint: secret\n  if key == 1 { assert!(true); }\n}");
        assert!(f.is_empty(), "{f:?}");
    }
}
