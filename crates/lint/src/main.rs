//! `p2drm-lint` CLI.
//!
//! ```text
//! p2drm-lint [--root DIR] [--deny] [--update-baseline]
//! ```
//!
//! Runs all four passes over the workspace, writes the lock graph to
//! `results/lockgraph.txt`, and diffs findings against
//! `lint-baseline.toml`. With `--deny`, any finding not in the baseline
//! exits 1 (this is what CI runs). `--update-baseline` rewrites the
//! baseline to the current findings, preserving `note` fields.

use p2drm_lint::baseline::{fingerprints, Baseline};
use p2drm_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--deny" => deny = true,
            "--update-baseline" => update = true,
            "--help" | "-h" => {
                println!("usage: p2drm-lint [--root DIR] [--deny] [--update-baseline]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => return fail(&format!("bad lint.toml: {e}")),
        },
        Err(e) => return fail(&format!("cannot read lint.toml under {:?}: {e}", root)),
    };

    let report = match p2drm_lint::run_all(&root, &cfg) {
        Ok(r) => r,
        Err(e) => return fail(&format!("analysis failed: {e}")),
    };

    // Lock graph artifact.
    let results = root.join("results");
    if let Err(e) = std::fs::create_dir_all(&results)
        .and_then(|_| std::fs::write(results.join("lockgraph.txt"), &report.lockgraph))
    {
        eprintln!("p2drm-lint: warning: could not write results/lockgraph.txt: {e}");
    }

    let keys = fingerprints(&report.findings);
    let baseline_path = root.join("lint-baseline.toml");
    let prev = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return fail(&format!("bad lint-baseline.toml: {e}")),
        },
        Err(_) => Baseline::default(),
    };

    if update {
        let text = Baseline::render(&report.findings, &keys, &prev);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            return fail(&format!("cannot write lint-baseline.toml: {e}"));
        }
        println!(
            "p2drm-lint: baseline updated with {} finding(s)",
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let mut new = 0usize;
    for (f, key) in report.findings.iter().zip(&keys) {
        let known = prev.entries.contains_key(key);
        if known {
            continue;
        }
        new += 1;
        eprintln!(
            "{}:{}: [{}] {}\n    {}\n    fingerprint: {}",
            f.file,
            f.line,
            f.pass,
            f.message,
            f.text.trim(),
            key
        );
    }
    // Stale baseline entries: warn, never fail — a fixed finding should
    // not break CI, just prompt a baseline refresh.
    let stale: Vec<&str> = prev
        .entries
        .keys()
        .filter(|k| !keys.iter().any(|x| x == *k))
        .map(|s| s.as_str())
        .collect();
    for k in &stale {
        eprintln!("p2drm-lint: warning: stale baseline entry {k} (run --update-baseline)");
    }

    println!(
        "p2drm-lint: {} finding(s), {} baselined, {} new, {} stale baseline entr{}",
        report.findings.len(),
        report.findings.len() - new,
        new,
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );

    if new > 0 && deny {
        eprintln!(
            "p2drm-lint: {} new finding(s); fix them, justify with a `// lint:` annotation, \
             or accept with --update-baseline",
            new
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("p2drm-lint: {msg}\nusage: p2drm-lint [--root DIR] [--deny] [--update-baseline]");
    ExitCode::FAILURE
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("p2drm-lint: {msg}");
    ExitCode::FAILURE
}
