//! Hand-rolled Rust lexer: the token stream every pass works from.
//!
//! Scope: enough of the Rust lexical grammar to walk real workspace
//! source *reliably* — comments (line, and block comments with proper
//! nesting), all string shapes (plain, raw with any `#` count, byte,
//! raw-byte), char literals vs. lifetimes, raw identifiers, numbers, and
//! the multi-character operators the passes care about (`&&`, `||`,
//! `::`, `->`, `..` …). It is deliberately *not* a full parser: the
//! passes layer a lightweight block/scope model on top (see
//! [`crate::source`]).
//!
//! Invariant: [`lex`] never panics, for any input — enforced by a
//! property test that throws random byte soup and every workspace file
//! at it.

/// What a token is, at the granularity the passes need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `foo`). Raw identifiers
    /// keep their `r#` prefix in the text.
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Punctuation / operator. Multi-char operators are one token.
    Punct,
    /// Comment — line (`//…`) or block (`/*…*/`, nesting respected).
    /// Doc comments are comments too. Text includes the delimiters.
    Comment,
}

/// One lexed token with its 1-based start line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Literal text (for `Str`/`Comment`, includes delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Is this any identifier?
    pub fn is_ident_kind(&self) -> bool {
        self.kind == TokKind::Ident
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. Total: every char lands in exactly one token
/// or is whitespace; malformed input (unterminated strings/comments,
/// stray quotes) degrades to best-effort tokens rather than panicking.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        if c == '\n' || c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            out.push(line_comment(&mut cur, line));
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            out.push(block_comment(&mut cur, line));
            continue;
        }
        if c == '"' {
            out.push(quoted(&mut cur, line, TokKind::Str, '"'));
            continue;
        }
        if c == '\'' {
            out.push(char_or_lifetime(&mut cur, line));
            continue;
        }
        if let Some(tok) = raw_or_byte_prefix(&mut cur, line) {
            out.push(tok);
            continue;
        }
        if is_ident_start(c) {
            out.push(ident(&mut cur, line));
            continue;
        }
        if c.is_ascii_digit() {
            out.push(number(&mut cur, line));
            continue;
        }
        out.push(punct(&mut cur, line));
    }
    out
}

fn line_comment(cur: &mut Cursor, line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Comment,
        text,
        line,
    }
}

fn block_comment(cur: &mut Cursor, line: u32) -> Tok {
    let mut text = String::new();
    let mut depth = 0usize;
    loop {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth = depth.saturating_sub(1);
                text.push('*');
                text.push('/');
                cur.bump();
                cur.bump();
                if depth == 0 {
                    break;
                }
            }
            (Some(_), _) => {
                // `bump` already tracked the newline if there was one.
                let c = cur.bump().unwrap_or('\0');
                text.push(c);
            }
            (None, _) => break, // unterminated: comment to EOF
        }
    }
    Tok {
        kind: TokKind::Comment,
        text,
        line,
    }
}

/// Plain (escaped) quoted literal: `"…"` or the tail of `b"…"`.
fn quoted(cur: &mut Cursor, line: u32, kind: TokKind, quote: char) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or(quote)); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == quote {
            break;
        }
    }
    Tok { kind, text, line }
}

/// Raw string tail starting at the current `"` with `hashes` known
/// `#`s already consumed into `text`.
fn raw_quoted(cur: &mut Cursor, line: u32, mut text: String, hashes: usize) -> Tok {
    text.push(cur.bump().unwrap_or('"')); // opening quote
    'outer: while let Some(c) = cur.peek(0) {
        text.push(c);
        cur.bump();
        if c == '"' {
            // Need exactly `hashes` following '#'s to terminate.
            for k in 0..hashes {
                if cur.peek(0) == Some('#') {
                    text.push('#');
                    cur.bump();
                } else {
                    // Not the terminator; the consumed '#'s (k of them)
                    // are part of the raw content, keep scanning.
                    let _ = k;
                    continue 'outer;
                }
            }
            break;
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

/// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br"…"`,
/// `br#"…"#`. Returns `None` if the cursor is not at one of those (the
/// caller falls through to plain ident lexing).
fn raw_or_byte_prefix(cur: &mut Cursor, line: u32) -> Option<Tok> {
    let c = cur.peek(0)?;
    if c != 'r' && c != 'b' {
        return None;
    }
    // How many prefix chars before a possible raw-string `#…"`?
    let prefix_len = match (c, cur.peek(1)) {
        ('b', Some('\'')) => {
            cur.bump(); // 'b'
            let mut tok = quoted(cur, line, TokKind::Char, '\'');
            tok.text.insert(0, 'b');
            return Some(tok);
        }
        ('b', Some('"')) => {
            // b"…" is an *escaped* string, not a raw one.
            cur.bump(); // 'b'
            let mut tok = quoted(cur, line, TokKind::Str, '"');
            tok.text.insert(0, 'b');
            return Some(tok);
        }
        ('b', Some('r')) => 2,                    // br…
        ('r', Some('"')) | ('r', Some('#')) => 1, // r… (string or r#ident)
        _ => return None,
    };
    // Count '#'s after the prefix.
    let mut hashes = 0usize;
    while cur.peek(prefix_len + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(prefix_len + hashes) {
        Some('"') => {
            let mut text = String::new();
            for _ in 0..prefix_len + hashes {
                if let Some(p) = cur.bump() {
                    text.push(p);
                }
            }
            Some(raw_quoted(cur, line, text, hashes))
        }
        // `r#ident` (raw identifier) — only for `r`, exactly one `#`.
        Some(d) if c == 'r' && hashes == 1 && is_ident_start(d) => {
            let mut text = String::new();
            cur.bump(); // r
            cur.bump(); // #
            text.push_str("r#");
            while let Some(k) = cur.peek(0) {
                if !is_ident_continue(k) {
                    break;
                }
                text.push(k);
                cur.bump();
            }
            Some(Tok {
                kind: TokKind::Ident,
                text,
                line,
            })
        }
        // Anything else (`b1`, `row`, a stray `r#` at EOF) lexes as a
        // plain identifier via the caller's fallthrough.
        Some(_) | None => None,
    }
}

/// `'a` / `'static` (lifetime) vs `'x'` / `'\n'` (char literal).
fn char_or_lifetime(cur: &mut Cursor, line: u32) -> Tok {
    // Lifetime: ' followed by ident-start, and NOT a closing quote right
    // after one ident char (which would be a char literal like 'a').
    if let Some(c1) = cur.peek(1) {
        if is_ident_start(c1) && cur.peek(2) != Some('\'') {
            let mut text = String::from("'");
            cur.bump();
            while let Some(k) = cur.peek(0) {
                if !is_ident_continue(k) {
                    break;
                }
                text.push(k);
                cur.bump();
            }
            return Tok {
                kind: TokKind::Lifetime,
                text,
                line,
            };
        }
    }
    quoted(cur, line, TokKind::Char, '\'')
}

fn ident(cur: &mut Cursor, line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    if text.is_empty() {
        // Defensive: should be unreachable, but never loop forever.
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    Tok {
        kind: TokKind::Ident,
        text,
        line,
    }
}

fn number(cur: &mut Cursor, line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
            continue;
        }
        // Float dot: `1.5`, `1.` — but not `1..2` (range) and not
        // `1.max(2)` (method call on a literal).
        if c == '.' && !text.contains('.') {
            match cur.peek(1) {
                Some('.') => break,
                Some(d) if is_ident_start(d) => break,
                _ => {
                    text.push('.');
                    cur.bump();
                }
            }
            continue;
        }
        break;
    }
    Tok {
        kind: TokKind::Num,
        text,
        line,
    }
}

/// Multi-char operators the passes rely on; everything else single-char.
const OPS3: [&str; 4] = ["..=", "...", "<<=", ">>="];
const OPS2: [&str; 19] = [
    "&&", "||", "==", "!=", "<=", ">=", "->", "=>", "::", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<",
];

fn punct(cur: &mut Cursor, line: u32) -> Tok {
    let take = |cur: &mut Cursor, n: usize| {
        let mut s = String::new();
        for _ in 0..n {
            if let Some(c) = cur.bump() {
                s.push(c);
            }
        }
        s
    };
    let at = |cur: &Cursor, s: &str| s.chars().enumerate().all(|(k, c)| cur.peek(k) == Some(c));
    for op in OPS3 {
        if at(cur, op) {
            return Tok {
                kind: TokKind::Punct,
                text: take(cur, 3),
                line,
            };
        }
    }
    // `>>` stays two tokens-worth of closes for generics, but lexing it
    // as one Punct is fine: the passes that track angle depth count it
    // as two. Lex it with the other two-char ops.
    for op in OPS2 {
        if at(cur, op) {
            return Tok {
                kind: TokKind::Punct,
                text: take(cur, 2),
                line,
            };
        }
    }
    if at(cur, ">>") {
        return Tok {
            kind: TokKind::Punct,
            text: take(cur, 2),
            line,
        };
    }
    Tok {
        kind: TokKind::Punct,
        text: take(cur, 1),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_any_hash_count() {
        let toks = kinds(r####"let s = r#"quote " inside"#; let t = r##"# and "# inside"##;"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            strs,
            [
                r###"r#"quote " inside"#"###,
                r####"r##"# and "# inside"##"####
            ]
        );
    }

    #[test]
    fn raw_string_hash_run_shorter_than_terminator() {
        // A '"' followed by FEWER hashes than the opener must not close.
        let toks = kinds(r####"r##"a"# b"##"####);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, r####"r##"a"# b"##"####);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokKind::Comment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn unterminated_block_comment_reaches_eof() {
        let toks = kinds("x /* never closed");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].0, TokKind::Comment);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks =
            kinds("fn f<'a>(x: &'a u8) { let c = 'a'; let esc = '\\''; let u = '\\u{7f}'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'a'", "'\\''", "'\\u{7f}'"]);
    }

    #[test]
    fn static_lifetime_and_loop_labels() {
        let toks = kinds("&'static str; 'outer: loop { break 'outer; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'static", "'outer", "'outer"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let c = b'\n'; let r = br#"raw"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Char && t == "b'\\n'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.starts_with("br#")));
    }

    #[test]
    fn raw_ident_is_ident() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\n/* c\nc */ b";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 2); // string starts line 2
        assert_eq!(toks[2].line, 4); // comment starts line 4
        assert_eq!(toks[3].line, 5); // b after multi-line comment
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a && b || c == d != e -> f => g :: h .. i ..= j");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, ["&&", "||", "==", "!=", "->", "=>", "::", "..", "..="]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("0..10; 1.5; 1.max(2); 0x_ffu32");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5", "1", "2", "0x_ffu32"]);
    }

    #[test]
    fn comment_annotations_survive() {
        let toks = lex("let x = 1; // lint: secret\n");
        let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert!(c.text.contains("lint: secret"));
    }
}
