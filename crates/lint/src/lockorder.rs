//! Static lock-order pass.
//!
//! Walks each function body simulating the set of held guards: a call
//! `recv.lock()` / `recv.read()` / `recv.write()` with **no arguments**
//! (the zero-arg filter excludes `io::Read`/`io::Write` methods) is an
//! acquisition whose *lock class* is the last field segment of the
//! receiver chain (`self.shards[i].committed.lock()` → `committed`).
//! Guards bound with `let` stay held until their block closes, an
//! explicit `drop(var)`, or a reassignment of the same variable;
//! unbound acquisitions and acquisitions inside `if`/`while` heads are
//! temporaries that Rust drops at the end of the enclosing expression,
//! so they receive edges from held locks but never become sources.
//!
//! Every acquisition records `held-class -> new-class` edges into a
//! workspace-global graph; cycles in that graph are findings and the
//! full graph is rendered for `results/lockgraph.txt`. The runtime twin
//! of this analysis is `parking_lot::lockdep`, which checks the same
//! invariant on real executions with backtraces.

use crate::source::SourceFile;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

const PASS: &str = "lockorder";

/// One observed nesting: `from` was held while `to` was acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
}

struct Held {
    var: Option<String>,
    class: String,
    depth: i32,
}

/// Extracts acquisition edges from one file.
pub fn extract(sf: &SourceFile) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    let conds = sf.condition_ranges();
    for f in sf.fns() {
        if sf.in_test(f.kw) {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let code: Vec<usize> = sf
            .code
            .iter()
            .copied()
            .filter(|&i| i > b0 && i < b1)
            .collect();
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i32;
        let mut k = 0usize;
        while k < code.len() {
            let i = code[k];
            let t = &sf.toks[i];
            if t.is_punct("{") {
                depth += 1;
                k += 1;
                continue;
            }
            if t.is_punct("}") {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
                k += 1;
                continue;
            }
            // `drop(var)` releases a held guard early.
            if t.is_ident("drop") {
                if let (Some(open), Some(arg)) = (sf.next_code(i), sf.next_code(i + 1)) {
                    if sf.toks[open].is_punct("(") && sf.toks[arg].is_ident_kind() {
                        let var = sf.toks[arg].text.clone();
                        held.retain(|h| h.var.as_deref() != Some(var.as_str()));
                    }
                }
                k += 1;
                continue;
            }
            // Acquisition: `.lock()` / `.read()` / `.write()` with no args.
            let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                && sf.prev_code(i).is_some_and(|j| sf.toks[j].is_punct("."))
                && sf.next_code(i).is_some_and(|j| {
                    sf.toks[j].is_punct("(")
                        && sf.matching[j].is_some_and(|c| sf.next_code(j) == Some(c))
                });
            if !is_acq {
                k += 1;
                continue;
            }
            let Some(class) = receiver_class(sf, i) else {
                k += 1;
                continue;
            };
            for h in &held {
                if h.class != class {
                    edges.push(LockEdge {
                        from: h.class.clone(),
                        to: class.clone(),
                        file: sf.path.clone(),
                        line: t.line,
                    });
                }
            }
            // Guards acquired inside an `if`/`while`/`match` head are
            // dropped with the head's temporaries — never held.
            let in_cond = conds.iter().any(|&(a, b)| a <= i && i < b);
            match binding_of(sf, i) {
                Some((var, is_let)) if !in_cond => {
                    if !is_let {
                        // Reassignment replaces the variable's old guard.
                        held.retain(|h| h.var.as_deref() != Some(var.as_str()));
                    }
                    held.push(Held {
                        var: Some(var),
                        class,
                        depth,
                    });
                }
                _ => {} // unbound temporary: edges only
            }
            k += 1;
        }
    }
    edges
}

/// The lock class of the acquisition at token `i` (the `lock`/`read`/
/// `write` ident): the last field segment of the receiver chain.
fn receiver_class(sf: &SourceFile, i: usize) -> Option<String> {
    let dot = sf.prev_code(i)?;
    let mut j = sf.prev_code(dot)?;
    // Skip a trailing index/call group: `shards[i]` / `shard()`.
    if sf.toks[j].is_punct("]") || sf.toks[j].is_punct(")") {
        j = sf.matching[j]?;
        j = sf.prev_code(j)?;
    }
    if sf.toks[j].is_ident_kind() && sf.toks[j].text != "self" {
        return Some(sf.toks[j].text.clone());
    }
    None
}

/// If the acquisition at token `i` is bound to a variable, returns
/// `(name, is_let)`. Walks backwards over the receiver chain to the
/// `=` / `let` introducing it.
fn binding_of(sf: &SourceFile, i: usize) -> Option<(String, bool)> {
    let mut j = sf.prev_code(i)?; // the `.`
    loop {
        let t = &sf.toks[j];
        if t.is_punct(".") || t.is_ident_kind() || t.is_punct("&") {
            let Some(p) = sf.prev_code(j) else { break };
            j = p;
            continue;
        }
        if t.is_punct("]") || t.is_punct(")") {
            j = sf.matching[j]?;
            let Some(p) = sf.prev_code(j) else { break };
            j = p;
            continue;
        }
        break;
    }
    if !sf.toks[j].is_punct("=") {
        return None;
    }
    let var_i = sf.prev_code(j)?;
    if !sf.toks[var_i].is_ident_kind() {
        return None;
    }
    let var = sf.toks[var_i].text.clone();
    let mut p = sf.prev_code(var_i);
    if let Some(pi) = p {
        if sf.toks[pi].is_ident("mut") {
            p = sf.prev_code(pi);
        }
    }
    let is_let = p.is_some_and(|pi| sf.toks[pi].is_ident("let"));
    Some((var, is_let))
}

/// Builds the workspace graph, reports cycles, renders `lockgraph.txt`.
pub fn analyze(edges: &[LockEdge]) -> (Vec<Finding>, String) {
    // class -> class -> first observed site
    let mut graph: BTreeMap<&str, BTreeMap<&str, (&str, u32)>> = BTreeMap::new();
    for e in edges {
        graph
            .entry(&e.from)
            .or_default()
            .entry(&e.to)
            .or_insert((&e.file, e.line));
    }

    let mut findings = Vec::new();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for (&a, succs) in &graph {
        for (&b, &(file, line)) in succs {
            if let Some(mut path) = find_path(&graph, b, a) {
                path.insert(0, a.to_string());
                let mut key = path.clone();
                key.sort();
                key.dedup();
                if seen_cycles.insert(key) {
                    findings.push(Finding {
                        pass: PASS.to_string(),
                        file: file.to_string(),
                        line,
                        text: format!("cycle {}", path.join(" -> ")),
                        message: format!(
                            "lock-order cycle: {} -> {} (established at {}:{}), but a path {} exists",
                            a,
                            b,
                            file,
                            line,
                            path.join(" -> "),
                        ),
                    });
                    cycles.push(path);
                }
            }
        }
    }

    let mut out = String::from(
        "# Static lock-acquisition graph (p2drm-lint lockorder pass)\n\
         # edge: HELD -> ACQUIRED  (first site observed)\n",
    );
    for (a, succs) in &graph {
        for (b, &(file, line)) in succs {
            out.push_str(&format!("{} -> {}  ({}:{})\n", a, b, file, line));
        }
    }
    if cycles.is_empty() {
        out.push_str("# no cycles detected\n");
    } else {
        out.push_str("# CYCLES:\n");
        for c in &cycles {
            out.push_str(&format!("#   {}\n", c.join(" -> ")));
        }
    }
    (findings, out)
}

/// DFS path `from` → `to` (inclusive of endpoints in the result).
fn find_path(
    graph: &BTreeMap<&str, BTreeMap<&str, (&str, u32)>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    fn dfs<'a>(
        graph: &BTreeMap<&'a str, BTreeMap<&'a str, (&'a str, u32)>>,
        cur: &'a str,
        to: &str,
        seen: &mut BTreeSet<&'a str>,
        path: &mut Vec<String>,
    ) -> bool {
        path.push(cur.to_string());
        if cur == to {
            return true;
        }
        if let Some(succs) = graph.get(cur) {
            for &next in succs.keys() {
                if seen.insert(next) && dfs(graph, next, to, seen, path) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }
    // Resolve `from` to a graph key so lifetimes line up.
    let from_key = graph.keys().copied().find(|&k| k == from)?;
    let mut seen = BTreeSet::new();
    seen.insert(from_key);
    let mut path = Vec::new();
    if dfs(graph, from_key, to, &mut seen, &mut path) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(src: &str) -> Vec<LockEdge> {
        extract(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn nested_lets_record_an_edge() {
        let e = edges("fn f(&self) { let a = self.kv.write(); let b = self.commit.lock(); }");
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("kv", "commit"));
    }

    #[test]
    fn scope_close_and_drop_release() {
        let e = edges(
            "fn f(&self) { { let a = self.kv.write(); } let b = self.commit.lock(); \
             let c = self.sync_fd.lock(); drop(c); let d = self.kv.read(); }",
        );
        // Only commit -> sync_fd and commit -> kv; kv's guard closed with
        // its block and sync_fd was dropped before kv was re-acquired.
        let pairs: Vec<(&str, &str)> = e.iter().map(|x| (x.from.as_str(), x.to.as_str())).collect();
        assert_eq!(pairs, [("commit", "sync_fd"), ("commit", "kv")]);
    }

    #[test]
    fn condition_head_guard_is_instantaneous() {
        let e = edges(
            "fn f(&self) { if self.kv.read().is_empty() { g(); } let b = self.commit.lock(); }",
        );
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn reassignment_replaces_guard() {
        let e = edges(
            "fn f(&self) { let mut st = self.commit.lock(); st = self.commit.lock(); \
             let k = self.kv.write(); }",
        );
        let pairs: Vec<(&str, &str)> = e.iter().map(|x| (x.from.as_str(), x.to.as_str())).collect();
        assert_eq!(pairs, [("commit", "kv")]);
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let e = edges("fn f(&self) { let a = self.kv.write(); file.write(buf); }");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn indexed_receiver_uses_field_class() {
        let e = edges(
            "fn f(&self) { let a = self.shards[i].kv.write(); let b = self.shards[i].commit.lock(); }",
        );
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("kv", "commit"));
    }

    #[test]
    fn ab_ba_is_a_cycle() {
        let all = [
            LockEdge {
                from: "a".into(),
                to: "b".into(),
                file: "x.rs".into(),
                line: 1,
            },
            LockEdge {
                from: "b".into(),
                to: "a".into(),
                file: "y.rs".into(),
                line: 2,
            },
        ];
        let (findings, graph) = analyze(&all);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lock-order cycle"));
        assert!(graph.contains("a -> b"));
        assert!(graph.contains("# CYCLES:"));
    }

    #[test]
    fn consistent_order_is_quiet() {
        let all = [
            LockEdge {
                from: "kv".into(),
                to: "commit".into(),
                file: "x.rs".into(),
                line: 1,
            },
            LockEdge {
                from: "kv".into(),
                to: "sync_fd".into(),
                file: "x.rs".into(),
                line: 2,
            },
        ];
        let (findings, graph) = analyze(&all);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(graph.contains("# no cycles detected"));
    }
}
