//! # p2drm-lint — workspace invariant analyzer
//!
//! A std-only static analyzer for this workspace (the build environment
//! is offline, so it hand-rolls its own Rust lexer and a lightweight
//! block/scope parser instead of depending on `syn`). It walks every
//! workspace `.rs` file and enforces four passes:
//!
//! 1. **taint** — secret-taint / constant-time discipline over modules
//!    declared timing-sensitive in `lint.toml`. Values seeded by
//!    `// lint: secret` propagate through assignments; branching
//!    (`if`/`match`/`while`/`&&`/`||`) or slice-indexing on a tainted
//!    value is flagged unless justified with `// lint: public(<why>)`.
//!    The same machinery enforces the observability privacy rule over
//!    `[taint] sink_paths`: a tainted identifier passed to a telemetry
//!    sink call (`counter`, `gauge`, `histogram`, `stage`, `flag`,
//!    `begin`, …, per `[taint] sinks`) is a finding — metric names and
//!    span fields must stay static strings, durations and counts.
//! 2. **safety** — every `unsafe` block or `unsafe fn` needs a
//!    preceding `// SAFETY:` comment.
//! 3. **panic** — `unwrap()`, `expect()`, `panic!`/`unreachable!`/
//!    `todo!`/`unimplemented!` and `[i]`-indexing are denied in the
//!    request-serving modules listed in `lint.toml`, unless annotated
//!    `// lint: allow(panic, <invariant>)`.
//! 4. **retry** — bare `sleep` calls (the primitive every hand-rolled
//!    retry loop is built on) are denied in the modules listed under
//!    `[retry] paths`, unless annotated `// lint: allow(retry, <why>)`
//!    — backoff must flow through `p2drm_core::retry::RetryPolicy`.
//! 5. **lockorder** — a static lock-acquisition graph is extracted from
//!    nested `.lock()`/`.read()`/`.write()` scopes; cycles are findings
//!    and the full graph is written to `results/lockgraph.txt`. The
//!    runtime twin of this pass lives in `parking_lot::lockdep`.
//!
//! Findings are diffed against the committed `lint-baseline.toml`; with
//! `--deny`, any finding not in the baseline fails the run.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod lockorder;
pub mod panicpath;
pub mod retrypass;
pub mod safety;
pub mod source;
pub mod taint;

use config::Config;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass name: `taint`, `safety`, `panic`, `retry` or `lockorder`.
    pub pass: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The raw text of the offending line (fingerprint input).
    pub text: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(pass: &str, sf: &SourceFile, line: u32, message: String) -> Finding {
        Finding {
            pass: pass.to_string(),
            file: sf.path.clone(),
            line,
            text: sf.line_text(line).to_string(),
            message,
        }
    }
}

/// Everything one run produces.
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    /// Rendered `results/lockgraph.txt` contents.
    pub lockgraph: String,
}

/// Recursively collects workspace `.rs` files under `root`, skipping
/// `target/`, `results/`, hidden directories and configured skips.
pub fn workspace_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if name.starts_with('.') || name == "target" || name == "results" {
                    continue;
                }
                if cfg.skipped(&rel) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !cfg.skipped(&rel) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative, `/`-separated path.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs all five passes over the workspace rooted at `root`.
pub fn run_all(root: &Path, cfg: &Config) -> std::io::Result<WorkspaceReport> {
    let files = workspace_files(root, cfg)?;
    let mut findings = Vec::new();
    let mut lock_edges = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let sf = SourceFile::parse(&rel, &src);
        if Config::matches(&rel, &cfg.taint_paths) {
            findings.extend(taint::run(&sf));
        }
        if Config::matches(&rel, &cfg.taint_sink_paths) {
            findings.extend(taint::run_sinks(&sf, &cfg.taint_sinks));
        }
        findings.extend(safety::run(&sf));
        if Config::matches(&rel, &cfg.panic_paths) {
            findings.extend(panicpath::run(&sf));
        }
        if Config::matches(&rel, &cfg.retry_paths) {
            findings.extend(retrypass::run(&sf));
        }
        lock_edges.extend(lockorder::extract(&sf));
    }
    let (lock_findings, lockgraph) = lockorder::analyze(&lock_edges);
    findings.extend(lock_findings);
    findings.sort_by(|a, b| (&a.file, a.line, &a.pass).cmp(&(&b.file, b.line, &b.pass)));
    Ok(WorkspaceReport {
        findings,
        lockgraph,
    })
}
