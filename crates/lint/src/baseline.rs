//! The committed findings baseline (`lint-baseline.toml`).
//!
//! Each accepted finding is fingerprinted by pass, file and the
//! *normalized text* of its line (whitespace collapsed) rather than its
//! line number, so unrelated edits above a finding do not invalidate the
//! baseline. Identical lines in one file are disambiguated with an
//! occurrence index. `--deny` fails only on findings whose fingerprint
//! is absent from the baseline; stale baseline entries warn.

use crate::Finding;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One baseline entry as stored on disk.
#[derive(Debug, Clone, Default)]
pub struct Entry {
    pub pass: String,
    pub file: String,
    pub line: u32,
    pub key: String,
    pub text: String,
    pub note: String,
}

/// The parsed baseline: fingerprint key → entry.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: BTreeMap<String, Entry>,
}

/// FNV-1a 64-bit; tiny, stable, good enough for fingerprinting lines.
fn fnv1a64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn normalize(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Computes fingerprint keys for a batch of findings. Findings that
/// hash identically (same pass/file/line-text) get `-0`, `-1`, …
/// occurrence suffixes in file order.
pub fn fingerprints(findings: &[Finding]) -> Vec<String> {
    let mut seen: HashMap<u64, u32> = HashMap::new();
    findings
        .iter()
        .map(|f| {
            let h = fnv1a64(&format!("{}|{}|{}", f.pass, f.file, normalize(&f.text)));
            let n = seen.entry(h).or_insert(0);
            let key = format!("{:016x}-{}", h, n);
            *n += 1;
            key
        })
        .collect()
}

impl Baseline {
    /// Parses `lint-baseline.toml`. Accepts only the `[[finding]]`
    /// shape this tool writes; anything else is an error so drift is
    /// caught immediately.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<Entry> = None;
        let flush = |cur: &mut Option<Entry>, entries: &mut BTreeMap<String, Entry>| {
            if let Some(e) = cur.take() {
                entries.insert(e.key.clone(), e);
            }
        };
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[finding]]" {
                flush(&mut cur, &mut entries);
                cur = Some(Entry::default());
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("baseline:{}: expected `key = \"…\"`", ln + 1));
            };
            let e = cur
                .as_mut()
                .ok_or_else(|| format!("baseline:{}: key before [[finding]]", ln + 1))?;
            let v = unquote(v.trim()).ok_or_else(|| {
                format!("baseline:{}: expected a quoted string or number", ln + 1)
            })?;
            match k.trim() {
                "pass" => e.pass = v,
                "file" => e.file = v,
                "line" => e.line = v.parse().unwrap_or(0),
                "key" => e.key = v,
                "text" => e.text = v,
                "note" => e.note = v,
                other => return Err(format!("baseline:{}: unknown key `{}`", ln + 1, other)),
            }
        }
        flush(&mut cur, &mut entries);
        Ok(Baseline { entries })
    }

    /// Serializes findings (with their fingerprints) back to baseline
    /// text, carrying over notes from `prev` where fingerprints match.
    pub fn render(findings: &[Finding], keys: &[String], prev: &Baseline) -> String {
        let mut out = String::from(
            "# p2drm-lint baseline: accepted findings, keyed by a fingerprint of\n\
             # (pass, file, normalized line text). Regenerate with --update-baseline;\n\
             # `note` fields are preserved across regeneration.\n",
        );
        for (f, key) in findings.iter().zip(keys) {
            let note = prev
                .entries
                .get(key)
                .map(|e| e.note.clone())
                .unwrap_or_default();
            let _ = write!(
                out,
                "\n[[finding]]\npass = \"{}\"\nfile = \"{}\"\nline = \"{}\"\nkey = \"{}\"\ntext = \"{}\"\n",
                escape(&f.pass),
                escape(&f.file),
                f.line,
                key,
                escape(&normalize(&f.text)),
            );
            if !note.is_empty() {
                let _ = writeln!(out, "note = \"{}\"", escape(&note));
            }
        }
        out
    }
}

fn unquote(v: &str) -> Option<String> {
    if let Some(inner) = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        let mut out = String::new();
        let mut esc = false;
        for c in inner.chars() {
            if esc {
                out.push(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else {
                out.push(c);
            }
        }
        Some(out)
    } else if v.chars().all(|c| c.is_ascii_digit()) && !v.is_empty() {
        Some(v.to_string())
    } else {
        None
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            other => vec![other],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn f(pass: &str, file: &str, line: u32, text: &str) -> Finding {
        Finding {
            pass: pass.into(),
            file: file.into(),
            line,
            text: text.into(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_preserves_notes() {
        let findings = vec![
            f("taint", "a.rs", 3, "if  secret  {"),
            f("taint", "a.rs", 9, "if secret {"),
            f("panic", "b.rs", 1, "x.unwrap()"),
        ];
        let keys = fingerprints(&findings);
        // Identical normalized lines share a hash but differ by suffix.
        assert_eq!(keys[0].split('-').next(), keys[1].split('-').next());
        assert_ne!(keys[0], keys[1]);

        let mut prev = Baseline::default();
        prev.entries.insert(
            keys[2].clone(),
            Entry {
                note: "bounded by framing".into(),
                key: keys[2].clone(),
                ..Entry::default()
            },
        );
        let text = Baseline::render(&findings, &keys, &prev);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 3);
        assert_eq!(parsed.entries[&keys[2]].note, "bounded by framing");
        assert_eq!(parsed.entries[&keys[0]].pass, "taint");
        // Line-number drift does not change the fingerprint.
        let moved = vec![f("panic", "b.rs", 40, "x.unwrap()")];
        assert_eq!(fingerprints(&moved)[0], keys[2]);
    }
}
