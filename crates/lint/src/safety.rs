//! SAFETY-comment pass: every `unsafe` keyword (block, fn, impl or
//! trait) must have a `// SAFETY:` comment on the same line or in the
//! contiguous comment block above it (at most two non-comment lines —
//! an attribute or a wrapped signature — may sit between the comment
//! block and the keyword). Test code is NOT exempt — unsound test
//! helpers corrupt the very runs that are supposed to catch bugs.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

const PASS: &str = "safety";

pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for &i in &sf.code {
        let t = &sf.toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = t.line;
        let documented = is_documented(sf, line);
        if !documented {
            out.push(Finding::new(
                PASS,
                sf,
                line,
                "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

/// Walks upward from `line` through the contiguous comment block above
/// it (tolerating up to two non-comment lines of attribute/signature
/// slack before the block starts) looking for a `SAFETY:` marker.
fn is_documented(sf: &SourceFile, line: u32) -> bool {
    let has_comment = |l: u32| {
        sf.toks
            .iter()
            .filter(|c| c.kind == TokKind::Comment && c.line == l)
            .map(|c| {
                // Inner doc comments (`//!`, `/*!`) describe the enclosing
                // module, not the item below — a `SAFETY:` mention there
                // is prose, not a justification.
                let doc = c.text.starts_with("//!") || c.text.starts_with("/*!");
                !doc && c.text.contains("SAFETY:")
            })
            .fold(None, |acc, hit| Some(acc.unwrap_or(false) | hit))
    };
    let mut slack = 2u32;
    let mut in_block = false;
    let mut l = line;
    loop {
        match has_comment(l) {
            Some(true) => return true,
            Some(false) => in_block = true, // keep walking up the block
            None if l == line => {}         // the `unsafe` line itself
            None if in_block => return false, // block ended without a marker
            None if slack > 0 => slack -= 1,
            None => return false,
        }
        if l == 0 {
            return false;
        }
        l -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }",
        ));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn documented_unsafe_passes() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller guarantees p is valid.\n  unsafe { *p }\n}",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn comment_two_lines_above_counts() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "// SAFETY: the allocator contract holds here.\n#[global_allocator]\nunsafe fn g() {}",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn marker_at_top_of_multiline_comment_block_counts() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "// SAFETY: every method delegates to the system allocator,\n// which upholds the contract; the counter bump is a relaxed\n// atomic and cannot unwind.\nunsafe impl GlobalAlloc for A {}",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unrelated_comment_block_above_does_not_count() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "// SAFETY: this documents the helper, not the impl below.\nfn helper() {\n    body();\n}\n\nunsafe impl Send for A {}",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn module_doc_mentioning_safety_is_not_a_justification() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "//! Helpers with SAFETY: discussed in prose.\n//! More prose.\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn test_code_is_not_exempt() {
        let f = run(&SourceFile::parse(
            "t.rs",
            "#[test]\nfn t() { unsafe { core::hint::unreachable_unchecked() } }",
        ));
        assert_eq!(f.len(), 1);
    }
}
