//! Retry-discipline pass: backoff belongs to `p2drm_core::retry`'s
//! `RetryPolicy`, which centralizes exponential growth, deterministic
//! jitter, caps, deadlines and the budget/breaker gates. A bare `sleep`
//! call — the primitive every hand-rolled retry loop is built on — in a
//! module listed under `[retry] paths` is therefore a finding unless
//! the site carries `// lint: allow(retry, <why>)` explaining why the
//! pause is not an ad-hoc backoff (or why its duration already comes
//! from the policy). `#[cfg(test)]`/`#[test]` code is exempt.

use crate::source::SourceFile;
use crate::Finding;

const PASS: &str = "retry";

pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for &i in &sf.code {
        if sf.in_test(i) {
            continue;
        }
        let t = &sf.toks[i];
        // Any `sleep(…)` call: `std::thread::sleep(d)`, `thread::sleep(d)`,
        // or a method `.sleep(d)`. Declarations (`fn sleep`) don't match
        // because their previous code token is `fn`.
        if t.is_ident("sleep")
            && sf.next_code(i).is_some_and(|j| sf.toks[j].is_punct("("))
            && sf.prev_code(i).is_some_and(|j| {
                let p = &sf.toks[j];
                p.is_punct("::") || p.is_punct(".")
            })
        {
            if sf.has_annotation(t.line, "lint: allow(retry,") {
                continue;
            }
            out.push(Finding::new(
                PASS,
                sf,
                t.line,
                "ad-hoc `sleep` on a retry path — backoff must flow through `RetryPolicy` \
                 (core::retry), which owns jitter, caps and deadlines"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        run(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn bare_sleeps_flagged() {
        let f = findings(
            "fn f() { std::thread::sleep(d); thread::sleep(Duration::from_millis(5)); timer.sleep(d); }",
        );
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn annotated_sleeps_pass() {
        let f = findings(
            "fn f() {\n  // lint: allow(retry, duration computed by RetryPolicy::backoff_before)\n  std::thread::sleep(d);\n  thread::sleep(d); // lint: allow(retry, poll-timeout emulation, not a backoff)\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn declarations_and_tests_exempt() {
        let f = findings(
            "fn sleep(d: Duration) {}\n#[cfg(test)]\nmod tests {\n fn t() { std::thread::sleep(d); }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
