//! Panic-path pass for request-serving modules: a panic in the serving
//! path is a remote denial-of-service, so `unwrap()`, `expect()`, the
//! panicking macros and `[i]`-indexing are denied unless the site
//! carries `// lint: allow(panic, <invariant>)` naming the invariant
//! that makes the panic unreachable. `#[cfg(test)]`/`#[test]` code is
//! exempt.

use crate::source::SourceFile;
use crate::Finding;

const PASS: &str = "panic";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |line: u32, msg: String| {
        if sf.has_annotation(line, "lint: allow(panic,") {
            return;
        }
        out.push(Finding::new(PASS, sf, line, msg));
    };
    for &i in &sf.code {
        if sf.in_test(i) {
            continue;
        }
        let t = &sf.toks[i];
        // `.unwrap()` / `.expect(`
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && sf.prev_code(i).is_some_and(|j| sf.toks[j].is_punct("."))
            && sf.next_code(i).is_some_and(|j| sf.toks[j].is_punct("("))
        {
            push(
                t.line,
                format!("`.{}()` on a request-serving path can panic", t.text),
            );
            continue;
        }
        // `panic!(…)` and friends.
        if t.is_ident_kind()
            && PANIC_MACROS.contains(&t.text.as_str())
            && sf.next_code(i).is_some_and(|j| sf.toks[j].is_punct("!"))
        {
            push(t.line, format!("`{}!` on a request-serving path", t.text));
            continue;
        }
        // `expr[…]` indexing (panics on out-of-bounds). Array literals
        // and attribute groups have non-expression predecessors.
        if t.is_punct("[") {
            let is_index = sf.prev_code(i).is_some_and(|j| {
                let p = &sf.toks[j];
                (p.is_ident_kind() && !is_keyword(&p.text)) || p.is_punct("]") || p.is_punct(")")
            });
            if !is_index {
                continue;
            }
            // Empty `[]` cannot panic; `[..]` full-range never panics.
            let Some(close) = sf.matching[i] else {
                continue;
            };
            let inner: Vec<&str> = (i + 1..close)
                .filter(|&j| sf.toks[j].kind != crate::lexer::TokKind::Comment)
                .map(|j| sf.toks[j].text.as_str())
                .collect();
            if inner.is_empty() || inner == [".."] {
                continue;
            }
            push(
                t.line,
                "`[…]` indexing on a request-serving path can panic (use `get`/`get_mut`)"
                    .to_string(),
            );
        }
    }
    out
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        run(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn unwrap_expect_and_macros_flagged() {
        let f = findings("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }");
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn annotated_sites_pass() {
        let f = findings(
            "fn f() {\n  // lint: allow(panic, header length checked by framing)\n  let n = buf[0];\n  x.expect(\"fixed width\"); // lint: allow(panic, width is 4 by construction)\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexing_flagged_but_not_array_literals() {
        let f = findings("fn f() { let a = [0u8; 4]; let b: [u8; 2] = [1, 2]; let c = buf[1]; let d = &buf[..]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("indexing"));
    }

    #[test]
    fn tests_are_exempt() {
        let f = findings("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); v[9]; panic!(); }\n}");
        assert!(f.is_empty(), "{f:?}");
    }
}
