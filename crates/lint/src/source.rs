//! Lightweight block/scope model over the token stream: matched
//! delimiters, function items, `#[cfg(test)]`/`#[test]` spans, per-line
//! annotation lookup, and condition-range extraction. This is the shared
//! substrate the four passes walk; it is resolutely an *approximation*
//! (no type information, no name resolution) tuned to be conservative on
//! real workspace code.

use crate::lexer::{lex, Tok, TokKind};

/// A lexed file plus the structural indexes the passes need.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Every token, comments included.
    pub toks: Vec<Tok>,
    /// Raw source lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// Indices into `toks` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// For each token index: the matching close/open delimiter token
    /// index, for `{}`, `()` and `[]`.
    pub matching: Vec<Option<usize>>,
    /// Token-index ranges (inclusive start, exclusive end) of items
    /// under `#[cfg(test)]` / `#[test]` attributes.
    pub test_spans: Vec<(usize, usize)>,
}

/// One `fn` item: signature and body token ranges.
pub struct FnItem {
    /// Name of the function.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Parameter-list range: indices of `(` and `)` tokens, if found.
    pub params: Option<(usize, usize)>,
    /// Body range: indices of `{` and `}` tokens. `None` for bodyless
    /// declarations (trait methods, externs).
    pub body: Option<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and indexes `src`.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let matching = match_delims(&toks);
        let mut sf = SourceFile {
            path: path.to_string(),
            toks,
            lines,
            code,
            matching,
            test_spans: Vec::new(),
        };
        sf.test_spans = find_test_spans(&sf);
        sf
    }

    /// The raw text of a 1-based line ("" when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get((line as usize).saturating_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Is token index `i` inside a `#[cfg(test)]`/`#[test]` item?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// All comments that can annotate `line`: trailing comments on the
    /// line itself and *full-line* comments directly above it (a
    /// trailing comment annotates its own line only).
    pub fn comments_for(&self, line: u32) -> impl Iterator<Item = &str> {
        self.toks
            .iter()
            .filter(move |t| {
                t.kind == TokKind::Comment
                    && (t.line == line
                        || (t.line + 1 == line && {
                            let lt = self.line_text(t.line).trim_start();
                            lt.starts_with("//") || lt.starts_with("/*")
                        }))
            })
            .map(|t| t.text.as_str())
    }

    /// Does `line` carry a `// lint: <marker>…` annotation (on the line
    /// or the line directly above)?
    pub fn has_annotation(&self, line: u32, marker: &str) -> bool {
        self.comments_for(line).any(|c| c.contains(marker))
    }

    /// Previous non-comment token before token index `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        self.toks[..i]
            .iter()
            .rposition(|t| t.kind != TokKind::Comment)
    }

    /// Next non-comment token after token index `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        self.toks[i + 1..]
            .iter()
            .position(|t| t.kind != TokKind::Comment)
            .map(|off| i + 1 + off)
    }

    /// Every `fn` item in the file (including nested ones and methods).
    pub fn fns(&self) -> Vec<FnItem> {
        let mut out = Vec::new();
        for (ci, &i) in self.code.iter().enumerate() {
            if !self.toks[i].is_ident("fn") {
                continue;
            }
            let Some(&name_i) = self.code.get(ci + 1) else {
                continue;
            };
            if self.toks[name_i].kind != TokKind::Ident {
                continue; // `fn` in a type position (`fn(&u8)`)
            }
            let name = self.toks[name_i].text.clone();
            // Walk the signature: find the param `(` at angle-depth 0,
            // then the body `{` (or `;` for a bodyless declaration).
            let mut angle = 0i32;
            let mut params = None;
            let mut body = None;
            let mut k = ci + 2;
            while let Some(&ti) = self.code.get(k) {
                let t = &self.toks[ti];
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    "(" if angle <= 0 && params.is_none() => {
                        if let Some(close) = self.matching[ti] {
                            params = Some((ti, close));
                            // Jump past the parameter list.
                            while let Some(&nj) = self.code.get(k) {
                                if nj >= close {
                                    break;
                                }
                                k += 1;
                            }
                        }
                    }
                    "{" => {
                        if let Some(close) = self.matching[ti] {
                            body = Some((ti, close));
                        }
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
                k += 1;
            }
            out.push(FnItem {
                name,
                kw: i,
                params,
                body,
            });
        }
        out
    }

    /// Token ranges of `if`/`while`/`match` heads: from the keyword to
    /// the body `{` (exclusive). Paren/bracket groups inside the head
    /// are skipped wholesale, so a closure block inside parens does not
    /// cut the range short.
    pub fn condition_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ci, &i) in self.code.iter().enumerate() {
            let t = &self.toks[i];
            if !(t.is_ident("if") || t.is_ident("while") || t.is_ident("match")) {
                continue;
            }
            let mut k = ci + 1;
            while let Some(&ti) = self.code.get(k) {
                match self.toks[ti].text.as_str() {
                    "(" | "[" => {
                        // Skip the whole group.
                        if let Some(close) = self.matching[ti] {
                            while let Some(&nj) = self.code.get(k) {
                                if nj >= close {
                                    break;
                                }
                                k += 1;
                            }
                        }
                    }
                    "{" => {
                        out.push((i, ti));
                        break;
                    }
                    ";" => break, // malformed; bail
                    _ => {}
                }
                k += 1;
            }
        }
        out
    }
}

/// Matches `{}`, `()` and `[]` over non-comment tokens; tolerant of
/// imbalance (unmatched delimiters stay `None`).
fn match_delims(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut matching = vec![None; toks.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" | "(" | "[" => stack.push((t.text.chars().next().unwrap_or('{'), i)),
            "}" | ")" | "]" => {
                let want = match t.text.as_str() {
                    "}" => '{',
                    ")" => '(',
                    _ => '[',
                };
                // Pop to the nearest matching opener; discard mismatches.
                while let Some(&(c, j)) = stack.last() {
                    stack.pop();
                    if c == want {
                        matching[j] = Some(i);
                        matching[i] = Some(j);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    matching
}

/// Spans of items attributed `#[cfg(test)]` or `#[test]` (plus
/// `#[bench]`-style test attributes): panics and lock games are fine in
/// test code, so most passes skip these ranges.
fn find_test_spans(sf: &SourceFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut ci = 0usize;
    while ci < sf.code.len() {
        let i = sf.code[ci];
        if !sf.toks[i].is_punct("#") {
            ci += 1;
            continue;
        }
        let Some(&open) = sf.code.get(ci + 1) else {
            break;
        };
        if !sf.toks[open].is_punct("[") {
            ci += 1;
            continue;
        }
        let Some(close) = sf.matching[open] else {
            ci += 1;
            continue;
        };
        // Reconstruct the attribute text.
        let attr: String = sf.toks[open + 1..close]
            .iter()
            .filter(|t| t.kind != TokKind::Comment)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join("");
        let is_test = attr == "test"
            || attr.starts_with("cfg(test")
            || attr.starts_with("cfg(all(test")
            || attr.starts_with("cfg_attr(test")
            || attr == "bench";
        // Advance ci past the attribute.
        while ci < sf.code.len() && sf.code[ci] <= close {
            ci += 1;
        }
        if !is_test {
            continue;
        }
        // The attributed item: scan forward (skipping further
        // attributes) to its body `{…}` or a terminating `;`.
        let mut k = ci;
        let mut end = None;
        while let Some(&ti) = sf.code.get(k) {
            let t = &sf.toks[ti];
            if t.is_punct("#") {
                // Another attribute: skip its group.
                if let Some(&open2) = sf.code.get(k + 1) {
                    if sf.toks[open2].is_punct("[") {
                        if let Some(close2) = sf.matching[open2] {
                            while k < sf.code.len() && sf.code[k] <= close2 {
                                k += 1;
                            }
                            continue;
                        }
                    }
                }
                k += 1;
                continue;
            }
            if t.is_punct("{") {
                end = sf.matching[ti];
                break;
            }
            if t.is_punct(";") {
                end = Some(ti);
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                // Skip argument groups in the signature.
                if let Some(close2) = sf.matching[ti] {
                    while k < sf.code.len() && sf.code[k] <= close2 {
                        k += 1;
                    }
                    continue;
                }
            }
            k += 1;
        }
        if let Some(e) = end {
            spans.push((i, e + 1));
            // Continue scanning after the item.
            while ci < sf.code.len() && sf.code[ci] <= e {
                ci += 1;
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_bodies() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn a(x: u8) -> u8 { x }\ntrait T { fn b(&self); }\nfn generic<F: Fn(&u8)>(f: F) { f(&1) }",
        );
        let fns = sf.fns();
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "generic"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_none());
        // The param list of `generic` must be `(f: F)`, not the one
        // inside the generic bound.
        let (p0, _) = fns[2].params.unwrap();
        assert_eq!(sf.toks[sf.next_code(p0).unwrap()].text, "f");
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn prod() { val.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}",
        );
        let unwraps: Vec<usize> = sf
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!sf.in_test(unwraps[0]));
        assert!(sf.in_test(unwraps[1]));
    }

    #[test]
    fn condition_ranges_stop_at_body() {
        let sf = SourceFile::parse("x.rs", "fn f(a: bool) { if a && g(|| { 1 }) { h(); } }");
        let ranges = sf.condition_ranges();
        assert_eq!(ranges.len(), 1);
        let (kw, body) = ranges[0];
        assert!(sf.toks[kw].is_ident("if"));
        // The body `{` is the one before `h`, not the closure's.
        assert_eq!(sf.toks[sf.next_code(body).unwrap()].text, "h");
    }

    #[test]
    fn annotations_on_line_and_above() {
        let sf = SourceFile::parse(
            "x.rs",
            "// lint: allow(panic, checked above)\nlet x = v.unwrap();\nlet y = w.unwrap(); // lint: allow(panic, bounded)\nlet z = q.unwrap();",
        );
        assert!(sf.has_annotation(2, "lint: allow(panic,"));
        assert!(sf.has_annotation(3, "lint: allow(panic,"));
        assert!(!sf.has_annotation(4, "lint: allow(panic,"));
    }
}
