//! Roundtrip and robustness properties of the canonical codec.

use p2drm_codec::{from_bytes, to_bytes, Decode, Encode, Reader, Writer};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Mixed {
    a: u64,
    b: u32,
    flag: bool,
    blob: Vec<u8>,
    text: String,
    opt: Option<u64>,
    seq: Vec<u64>,
}

impl Encode for Mixed {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.a);
        w.put_u32(self.b);
        w.put_bool(self.flag);
        w.put_bytes(&self.blob);
        w.put_str(&self.text);
        w.put_option(&self.opt);
        w.put_seq(&self.seq);
    }
}

impl Decode for Mixed {
    fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
        Ok(Mixed {
            a: r.get_u64()?,
            b: r.get_u32()?,
            flag: r.get_bool()?,
            blob: r.get_bytes_owned()?,
            text: r.get_str()?,
            opt: r.get_option()?,
            seq: r.get_seq()?,
        })
    }
}

fn mixed() -> impl Strategy<Value = Mixed> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        "[a-zA-Z0-9 _-]{0,32}",
        proptest::option::of(any::<u64>()),
        proptest::collection::vec(any::<u64>(), 0..16),
    )
        .prop_map(|(a, b, flag, blob, text, opt, seq)| Mixed {
            a,
            b,
            flag,
            blob,
            text,
            opt,
            seq,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(v in mixed()) {
        let bytes = to_bytes(&v);
        let back: Mixed = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn encoding_deterministic(v in mixed()) {
        prop_assert_eq!(to_bytes(&v), to_bytes(&v.clone()));
    }

    #[test]
    fn truncation_never_panics(v in mixed(), cut in 0usize..200) {
        let bytes = to_bytes(&v);
        let cut = cut.min(bytes.len());
        // Any truncation either errors or (cut == len) succeeds.
        let res: p2drm_codec::Result<Mixed> = from_bytes(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert!(res.is_ok());
        } else {
            prop_assert!(res.is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Decoding garbage must fail cleanly, not panic.
        let _ : p2drm_codec::Result<Mixed> = from_bytes(&junk);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.get_varint().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn crc_changes_with_content(a in proptest::collection::vec(any::<u8>(), 1..64),
                                 b in proptest::collection::vec(any::<u8>(), 1..64)) {
        use p2drm_codec::crc32::crc32;
        if a != b {
            // Not a guarantee in general, but collisions in 64-byte random
            // inputs would be astronomically unlikely; treat as regression.
            prop_assert_ne!(crc32(&a), crc32(&b));
        } else {
            prop_assert_eq!(crc32(&a), crc32(&b));
        }
    }
}
