//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used to frame
//! records in the append-only store log so torn writes are detected on
//! recovery.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"some medium length payload for streaming";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
