//! Deterministic canonical binary encoding for P2DRM.
//!
//! Every byte string that is **signed** (certificates, licenses, protocol
//! messages, coins) or **persisted** (store records) in this workspace is
//! produced by this crate, never by `Debug`/JSON formatting. The format is
//! deliberately tiny and bijective:
//!
//! * fixed-width little-endian integers (`u8`/`u32`/`u64`),
//! * LEB128 varints with a *minimal-encoding* rule enforced on decode,
//! * length-prefixed byte strings and UTF-8 strings,
//! * length-prefixed homogeneous sequences.
//!
//! Because encoders write fields in a fixed order and decoders read them in
//! the same order, two structurally equal values always produce identical
//! bytes — which is what makes signatures over encodings meaningful.
//!
//! ```
//! use p2drm_codec::{Decode, Encode, Reader, Writer};
//!
//! #[derive(Debug, PartialEq)]
//! struct Pair { id: u64, name: String }
//!
//! impl Encode for Pair {
//!     fn encode(&self, w: &mut Writer) {
//!         w.put_u64(self.id);
//!         w.put_str(&self.name);
//!     }
//! }
//! impl Decode for Pair {
//!     fn decode(r: &mut Reader) -> p2drm_codec::Result<Self> {
//!         Ok(Pair { id: r.get_u64()?, name: r.get_str()? })
//!     }
//! }
//!
//! let bytes = p2drm_codec::to_bytes(&Pair { id: 7, name: "abc".into() });
//! let back: Pair = p2drm_codec::from_bytes(&bytes).unwrap();
//! assert_eq!(back, Pair { id: 7, name: "abc".into() });
//! ```

#![forbid(unsafe_code)]

pub mod crc32;

use std::fmt;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A varint used more bytes than necessary or exceeded 64 bits.
    NonCanonicalVarint,
    /// A declared length exceeds the remaining input (or a sanity cap).
    BadLength(u64),
    /// A byte string declared as UTF-8 was not.
    InvalidUtf8,
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
    /// An enum/discriminant byte had no defined meaning.
    BadDiscriminant(u8),
    /// A variable-width big integer carried redundant leading zero bytes
    /// (encoders must emit the minimal big-endian form so that equal
    /// values always produce identical — hence signable — bytes).
    NonMinimalInt,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::NonCanonicalVarint => write!(f, "non-canonical varint"),
            CodecError::BadLength(n) => write!(f, "declared length {n} out of bounds"),
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::BadDiscriminant(d) => write!(f, "unknown discriminant {d}"),
            CodecError::NonMinimalInt => write!(f, "big integer has redundant leading zeros"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Canonical byte writer.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Fixed-width little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Fixed-width little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LEB128 varint (canonical: no redundant trailing zero groups).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Boolean as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Option: presence byte then the value.
    pub fn put_option<T: Encode>(&mut self, v: &Option<T>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                x.encode(self);
            }
        }
    }

    /// Length-prefixed homogeneous sequence.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        self.put_varint(items.len() as u64);
        for item in items {
            item.encode(self);
        }
    }

    /// Raw bytes with **no** length prefix (for fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Canonical byte reader with strict bounds and canonicality checks.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Fixed-width little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Fixed-width little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Canonical LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::NonCanonicalVarint); // would exceed u64
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                // Reject non-minimal encodings like [0x80, 0x00].
                if byte == 0 && shift != 0 {
                    return Err(CodecError::NonCanonicalVarint);
                }
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::NonCanonicalVarint);
            }
        }
    }

    /// Length-prefixed byte string (borrowed).
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::BadLength(len));
        }
        self.take(len as usize)
    }

    /// Length-prefixed byte string (owned).
    pub fn get_bytes_owned(&mut self) -> Result<Vec<u8>> {
        Ok(self.get_bytes()?.to_vec())
    }

    /// Length-prefixed **canonical big-endian integer** field: like
    /// [`Reader::get_bytes`], but rejects a redundant leading zero byte
    /// ([`CodecError::NonMinimalInt`]). Writers emit minimal big-endian
    /// bytes (zero = empty), so round-tripping any integer field is
    /// byte-exact — two distinct byte strings can never decode to the
    /// same value.
    pub fn get_int_bytes(&mut self) -> Result<&'a [u8]> {
        let bytes = self.get_bytes()?;
        if bytes.first() == Some(&0) {
            return Err(CodecError::NonMinimalInt);
        }
        Ok(bytes)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Boolean (strict 0/1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    /// Option mirror of [`Writer::put_option`].
    pub fn get_option<T: Decode>(&mut self) -> Result<Option<T>> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    /// Length-prefixed homogeneous sequence.
    pub fn get_seq<T: Decode>(&mut self) -> Result<Vec<T>> {
        let len = self.get_varint()?;
        // Each element costs at least one byte; cheap DoS guard.
        if len > self.remaining() as u64 {
            return Err(CodecError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Raw fixed-size read (no prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

/// Types that can write themselves canonically.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);
}

/// Types that can read themselves back.
pub trait Decode: Sized {
    /// Reads a value, consuming exactly its encoding.
    fn decode(r: &mut Reader) -> Result<Self>;
}

/// Encodes a value to a fresh byte vector.
pub fn to_bytes<T: Encode>(v: &T) -> Vec<u8> {
    let mut w = Writer::new();
    v.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value, requiring the input to be fully consumed.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

// ---- impls for primitives -------------------------------------------------

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.get_u64()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.get_u32()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.get_bool()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.get_bytes_owned()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.get_str()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_option(self);
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.get_option()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_sizes_are_minimal() {
        let size = |v: u64| {
            let mut w = Writer::new();
            w.put_varint(v);
            w.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(16383), 2);
        assert_eq!(size(16384), 3);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn non_minimal_varint_rejected() {
        // 0x80 0x00 encodes 0 in two bytes — must be rejected.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert_eq!(r.get_varint(), Err(CodecError::NonCanonicalVarint));
        // 11-byte varint rejected.
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        // 2^64 would need the 10th byte to be 2.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint(), Err(CodecError::NonCanonicalVarint));
        // ...while 1 in that byte is exactly u64::MAX.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut w = Writer::new();
        w.put_bytes(b"hello");
        w.put_str("wörld");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn truncated_inputs_fail_cleanly() {
        let mut w = Writer::new();
        w.put_bytes(&[1, 2, 3, 4, 5]);
        let mut bytes = w.into_bytes();
        bytes.truncate(3);
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes(),
            Err(CodecError::BadLength(_)) | Err(CodecError::UnexpectedEof)
        ));
        let mut r = Reader::new(&[]);
        assert_eq!(r.get_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn length_longer_than_input_rejected() {
        let mut w = Writer::new();
        w.put_varint(1_000_000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(CodecError::BadLength(1_000_000)));
    }

    #[test]
    fn option_and_bool_strictness() {
        let mut w = Writer::new();
        w.put_option(&Some(5u64));
        w.put_option::<u64>(&None);
        w.put_bool(true);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_option::<u64>().unwrap(), Some(5));
        assert_eq!(r.get_option::<u64>().unwrap(), None);
        assert!(r.get_bool().unwrap());

        let mut r = Reader::new(&[2]);
        assert_eq!(r.get_bool(), Err(CodecError::BadDiscriminant(2)));
    }

    #[test]
    fn seq_roundtrip() {
        let items: Vec<u64> = (0..100).collect();
        let mut w = Writer::new();
        w.put_seq(&items);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_seq::<u64>().unwrap(), items);
    }

    #[test]
    fn int_bytes_reject_leading_zero() {
        let mut w = Writer::new();
        w.put_bytes(&[0x12, 0x34]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_int_bytes().unwrap(), &[0x12, 0x34]);

        let mut w = Writer::new();
        w.put_bytes(&[0x00, 0x12, 0x34]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_int_bytes(), Err(CodecError::NonMinimalInt));

        // Zero is the empty byte string, which is minimal.
        let mut w = Writer::new();
        w.put_bytes(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_int_bytes().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn from_bytes_rejects_trailing() {
        let mut bytes = to_bytes(&42u64);
        bytes.push(0);
        assert_eq!(from_bytes::<u64>(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = to_bytes(&String::from("same"));
        let b = to_bytes(&String::from("same"));
        assert_eq!(a, b);
    }
}
