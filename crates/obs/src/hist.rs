//! Latency histograms: a log-bucketed [`Histogram`] (2 buckets per
//! octave, nanosecond domain) with percentile summaries, plus a
//! lock-free [`AtomicHistogram`] for concurrent recording on serving
//! paths.
//!
//! The plain `Histogram` is the single-owner/merge type (simulation
//! loops, snapshot assembly); `AtomicHistogram` is the shared type the
//! registry hands out, recorded into from many threads with relaxed
//! atomics and snapshotted into a `Histogram` for summarisation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS_PER_OCTAVE: usize = 2;
/// Covers 1ns .. ~2^60ns with 2 buckets/octave.
const NUM_BUCKETS: usize = 60 * BUCKETS_PER_OCTAVE + 1;

/// Log-bucketed histogram over `u64` values (nanoseconds by convention).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let octave = 63 - v.leading_zeros() as usize;
        // Sub-bucket: is v in the upper half of the octave?
        let half = if octave > 0 && v >= (1u64 << octave) + (1u64 << (octave - 1)) {
            1
        } else {
            0
        };
        (octave * BUCKETS_PER_OCTAVE + half).min(NUM_BUCKETS - 1)
    }

    fn bucket_value(i: usize) -> u64 {
        let octave = i / BUCKETS_PER_OCTAVE;
        let half = i % BUCKETS_PER_OCTAVE;
        let base = 1u64 << octave;
        // Representative value: midpoint of the half-octave.
        base + (base >> 1) * half as u64 + (base >> 2)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        // lint: allow(panic, bucket_index clamps to NUM_BUCKETS - 1)
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in 0..=100), exact at bucket
    /// resolution (±~30%).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp the representative value into observed range.
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.percentile(50.0),
            p90_ns: self.percentile(90.0),
            p99_ns: self.percentile(99.0),
            min_ns: if self.count == 0 { 0 } else { self.min },
            max_ns: self.max,
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Mean (ns).
    pub mean_ns: f64,
    /// Median (ns, bucket resolution).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Minimum (ns).
    pub min_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl Summary {
    /// Milliseconds rendering of the mean.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }
}

/// Lock-free histogram shared between recording threads: the same
/// buckets as [`Histogram`], each an [`AtomicU64`] bumped with relaxed
/// ordering. `min`/`max` use `fetch_min`/`fetch_max`, so a
/// [`snapshot`](AtomicHistogram::snapshot) taken while writers are
/// active is a consistent-enough point-in-time view (each field
/// individually exact, fields mutually racy by at most in-flight
/// records).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        AtomicHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (lock-free, callable from any thread).
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(Histogram::bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating like `Histogram::record`, so an atomic snapshot
        // and a plain histogram fed the same values agree exactly.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`Histogram`] for merging
    /// and summarisation.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.mean_ns, 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.p50_ns, 1000, "clamped to observed range");
    }

    #[test]
    fn percentiles_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
        assert!(s.p50_ns >= s.min_ns && s.p99_ns <= s.max_ns);
        // p50 within a factor ~2 of the true median (bucket resolution).
        assert!(s.p50_ns >= 2_500 && s.p50_ns <= 10_000, "p50={}", s.p50_ns);
        assert!((s.mean_ns - 5000.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [10u64, 100, 1000, 5, 7] {
            a.record(v);
            all.record(v);
        }
        for v in [20u64, 200, 2000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), all.summary());
    }

    #[test]
    fn zero_and_huge_values_dont_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.summary().min_ns, 0);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for shift in 0..60 {
            let idx = Histogram::bucket_index(1u64 << shift);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn atomic_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [0u64, 3, 99, 1_000_000, u64::MAX] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot().summary(), p.summary());
    }

    #[test]
    fn atomic_empty_snapshot_is_empty() {
        let a = AtomicHistogram::new();
        let s = a.snapshot().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
    }
}
