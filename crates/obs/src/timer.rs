//! Near-zero-overhead timing: a manual [`Timer`] and a drop-guard
//! [`ScopeTimer`], both recording into an [`AtomicHistogram`] and both
//! compiled down to nothing when started disabled — the disabled path
//! is one branch, no clock read.

use crate::hist::AtomicHistogram;
use std::time::Instant;

/// Manual start/stop timer. Start it before the operation (gated on an
/// enabled flag so disabled runs never read the clock), stop it into
/// whichever histogram the operation turned out to belong to — useful
/// when the label (e.g. the decoded wire op) is only known mid-flight.
#[derive(Debug)]
pub struct Timer {
    start: Option<Instant>,
}

impl Timer {
    /// Running timer when `enabled`, inert timer otherwise.
    pub fn start(enabled: bool) -> Timer {
        Timer {
            start: enabled.then(Instant::now),
        }
    }

    /// Nanoseconds since start (`None` for an inert timer).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start
            .map(|t0| t0.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Stops the timer, recording the elapsed nanoseconds into `hist`.
    /// Returns the recorded value (`None` for an inert timer).
    pub fn stop(self, hist: &AtomicHistogram) -> Option<u64> {
        let ns = self.elapsed_ns()?;
        hist.record(ns);
        Some(ns)
    }
}

/// Drop-guard timer: records the elapsed nanoseconds into the borrowed
/// histogram when the guard leaves scope. Created via
/// [`AtomicHistogram::time`].
#[derive(Debug)]
pub struct ScopeTimer<'a> {
    hist: &'a AtomicHistogram,
    start: Option<Instant>,
}

impl Drop for ScopeTimer<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.hist.record_duration(t0.elapsed());
        }
    }
}

impl AtomicHistogram {
    /// Scope timer recording into this histogram on drop; inert (no
    /// clock read, nothing recorded) when `enabled` is false.
    pub fn time(&self, enabled: bool) -> ScopeTimer<'_> {
        ScopeTimer {
            hist: self,
            start: enabled.then(Instant::now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_timer_records_on_drop() {
        let h = AtomicHistogram::new();
        {
            let _t = h.time(true);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_timers_record_nothing() {
        let h = AtomicHistogram::new();
        {
            let _t = h.time(false);
        }
        let t = Timer::start(false);
        assert_eq!(t.elapsed_ns(), None);
        assert_eq!(t.stop(&h), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn manual_timer_records() {
        let h = AtomicHistogram::new();
        let t = Timer::start(true);
        assert!(t.stop(&h).is_some());
        assert_eq!(h.count(), 1);
    }
}
