//! Per-request tracing keyed by the wire correlation id.
//!
//! A [`Tracer::begin`] guard opens a span for the request being served
//! and parks it in a thread local; deeper layers (valve, verify cache,
//! mint, store) attach stage timings with the free functions
//! [`stage`] and [`flag`] — no signatures change, because a request is
//! served start to finish on one worker thread. When the guard drops,
//! the span lands in a bounded ring buffer: every span keeps its
//! correlation id, op label and total latency; spans over the
//! configured slow threshold additionally keep their full stage
//! breakdown (slow-request exemplars).
//!
//! **Privacy rule:** span fields are the client-chosen wire correlation
//! id, `&'static str` labels and durations — nothing derived from a
//! pseudonym, card, license or coin ever enters a span.

use crate::registry::{MetricSource, SnapshotBuilder};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Tracer tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring-buffer capacity (completed spans kept; oldest evicted).
    pub capacity: usize,
    /// Spans at least this slow keep their full stage breakdown.
    pub slow_threshold: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 128,
            slow_threshold: Duration::from_millis(1),
        }
    }
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Wire correlation id of the request (client-chosen routing data).
    pub corr_id: u64,
    /// Op label (static string).
    pub op: &'static str,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Whether the span crossed the slow threshold (stage breakdown kept).
    pub slow: bool,
    /// `(label, nanoseconds)` stage timings — empty unless `slow`, and
    /// at most the first 8 stages are kept (the open span stores them
    /// inline so the traced hot path never allocates). Flags recorded
    /// via [`flag`] carry 0 ns.
    pub stages: Vec<(&'static str, u64)>,
}

/// Most stages an open span keeps (further stages are dropped).
/// Inline storage keeps the traced hot path allocation-free: a span's
/// stages only touch the heap if the span turns out slow and its
/// breakdown is archived into the ring.
const STAGE_CAP: usize = 8;

struct ActiveSpan {
    corr_id: u64,
    op: &'static str,
    start: Instant,
    stages: [(&'static str, u64); STAGE_CAP],
    stage_len: u8,
}

impl ActiveSpan {
    fn push_stage(&mut self, label: &'static str, ns: u64) {
        if (self.stage_len as usize) < STAGE_CAP {
            // lint: allow(panic, stage_len < STAGE_CAP checked on the line above)
            self.stages[self.stage_len as usize] = (label, ns);
            self.stage_len += 1;
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveSpan>> = const { RefCell::new(None) };
}

/// Collects spans for one service instance. Cheap when disabled: a
/// disabled [`begin`](Tracer::begin) is one relaxed load and returns an
/// inert guard; [`stage`]/[`flag`] outside a span are one thread-local
/// check.
pub struct Tracer {
    enabled: AtomicBool,
    slow_ns: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    started: AtomicU64,
    slow_count: AtomicU64,
    dropped: AtomicU64,
    lost: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Tracer {
    /// Tracer with the given ring capacity and slow threshold,
    /// initially disabled.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            slow_ns: AtomicU64::new(config.slow_threshold.as_nanos().min(u64::MAX as u128) as u64),
            capacity: config.capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            started: AtomicU64::new(0),
            slow_count: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        }
    }

    /// Whether spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns span collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Changes the slow-exemplar threshold at runtime.
    pub fn set_slow_threshold(&self, t: Duration) {
        self.slow_ns
            .store(t.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Opens a span for the request with wire correlation id `corr_id`,
    /// parked in this thread's slot until the guard drops. Nested
    /// begins stack: the previous span is restored when the inner guard
    /// drops.
    pub fn begin(self: &Arc<Self>, corr_id: u64, op: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                tracer: None,
                prev: None,
            };
        }
        self.started.fetch_add(1, Ordering::Relaxed);
        let span = ActiveSpan {
            corr_id,
            op,
            start: Instant::now(),
            stages: [("", 0); STAGE_CAP],
            stage_len: 0,
        };
        let prev = CURRENT.with(|c| c.borrow_mut().replace(span));
        SpanGuard {
            tracer: Some(Arc::clone(self)),
            prev,
        }
    }

    fn finish(&self, span: ActiveSpan) {
        let total_ns = span.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let slow = total_ns >= self.slow_ns.load(Ordering::Relaxed);
        if slow {
            self.slow_count.fetch_add(1, Ordering::Relaxed);
        }
        let record = SpanRecord {
            corr_id: span.corr_id,
            op: span.op,
            total_ns,
            slow,
            stages: if slow {
                // lint: allow(panic, stage_len never exceeds STAGE_CAP by construction)
                span.stages[..span.stage_len as usize].to_vec()
            } else {
                Vec::new()
            },
        };
        // Never stall a serving thread on telemetry: if another thread
        // holds the ring (a concurrent finish, or a reader draining
        // it), the span is counted lost instead of waiting.
        let Ok(mut ring) = self.ring.try_lock() else {
            self.lost.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Completed spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// Completed spans that crossed the slow threshold (full stage
    /// breakdowns), oldest first.
    pub fn slow_exemplars(&self) -> Vec<SpanRecord> {
        lock(&self.ring)
            .iter()
            .filter(|r| r.slow)
            .cloned()
            .collect()
    }
}

impl MetricSource for Tracer {
    fn collect(&self, out: &mut SnapshotBuilder) {
        out.counter("trace_spans", self.started.load(Ordering::Relaxed));
        out.counter("trace_slow", self.slow_count.load(Ordering::Relaxed));
        out.counter("trace_evicted", self.dropped.load(Ordering::Relaxed));
        out.counter("trace_lost", self.lost.load(Ordering::Relaxed));
    }
}

/// Guard for an open span; finishing (drop) records the span and
/// restores the previously open span, if any.
pub struct SpanGuard {
    tracer: Option<Arc<Tracer>>,
    prev: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer.take() else {
            return;
        };
        let finished = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), self.prev.take()));
        if let Some(span) = finished {
            tracer.finish(span);
        }
    }
}

/// Whether a span is open on this thread (i.e. [`stage`]/[`flag`] would
/// record).
pub fn in_span() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Times a stage of the currently open span: the elapsed nanoseconds
/// are attached as `(label, ns)` when the returned guard drops. Inert
/// (no clock read) when no span is open on this thread.
pub fn stage(label: &'static str) -> StageTimer {
    StageTimer {
        label,
        start: in_span().then(Instant::now),
    }
}

/// Attaches a zero-duration `(label, 0)` marker to the currently open
/// span (e.g. `vcache_hit`). No-op when no span is open.
pub fn flag(label: &'static str) {
    CURRENT.with(|c| {
        if let Some(span) = c.borrow_mut().as_mut() {
            span.push_stage(label, 0);
        }
    });
}

/// Drop-guard for one stage of the open span; see [`stage`].
#[derive(Debug)]
pub struct StageTimer {
    label: &'static str,
    start: Option<Instant>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let Some(t0) = self.start else { return };
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        CURRENT.with(|c| {
            if let Some(span) = c.borrow_mut().as_mut() {
                span.push_stage(self.label, ns);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(slow: Duration) -> Arc<Tracer> {
        let t = Arc::new(Tracer::new(TraceConfig {
            capacity: 4,
            slow_threshold: slow,
        }));
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Arc::new(Tracer::new(TraceConfig::default()));
        {
            let _g = t.begin(7, "purchase");
            assert!(!in_span());
        }
        assert!(t.recent().is_empty());
    }

    #[test]
    fn fast_spans_keep_summary_only() {
        let t = tracer(Duration::from_secs(60));
        {
            let _g = t.begin(42, "purchase");
            let _s = stage("valve_wait");
            flag("vcache_hit");
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].corr_id, 42);
        assert_eq!(spans[0].op, "purchase");
        assert!(!spans[0].slow);
        assert!(spans[0].stages.is_empty(), "fast spans drop the breakdown");
        assert!(t.slow_exemplars().is_empty());
    }

    #[test]
    fn slow_spans_keep_stage_breakdown() {
        let t = tracer(Duration::ZERO);
        {
            let _g = t.begin(9, "play");
            {
                let _s = stage("store_commit");
            }
            flag("vcache_miss");
        }
        let slow = t.slow_exemplars();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].slow);
        let labels: Vec<&str> = slow[0].stages.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["store_commit", "vcache_miss"]);
        assert_eq!(slow[0].stages[1].1, 0, "flags carry zero duration");
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let t = tracer(Duration::from_secs(60));
        for i in 0..6u64 {
            let _g = t.begin(i, "catalog");
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 4, "capacity bound");
        let ids: Vec<u64> = spans.iter().map(|s| s.corr_id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "oldest evicted first");
    }

    #[test]
    fn stage_outside_span_is_inert() {
        {
            let _s = stage("orphan");
            flag("orphan_flag");
        }
        assert!(!in_span());
    }

    #[test]
    fn nested_spans_restore_outer() {
        let t = tracer(Duration::ZERO);
        {
            let _outer = t.begin(1, "outer");
            {
                let _inner = t.begin(2, "inner");
                let _s = stage("inner_stage");
            }
            assert!(in_span(), "outer span restored");
            let _s = stage("outer_stage");
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].op, "inner");
        assert_eq!(spans[1].op, "outer");
        let outer_labels: Vec<&str> = spans[1].stages.iter().map(|(l, _)| *l).collect();
        assert_eq!(outer_labels, vec!["outer_stage"]);
    }

    #[test]
    fn tracer_is_a_metric_source() {
        let t = tracer(Duration::ZERO);
        {
            let _g = t.begin(1, "x");
        }
        let mut b = SnapshotBuilder::new();
        t.collect(&mut b);
        let s = b.finish();
        assert_eq!(s.counter("trace_spans"), Some(1));
        assert_eq!(s.counter("trace_slow"), Some(1));
        assert_eq!(s.counter("trace_evicted"), Some(0));
    }
}
