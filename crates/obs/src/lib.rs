//! # p2drm-obs — unified observability
//!
//! One std-only layer for everything the workspace measures:
//!
//! - **Metrics registry** ([`registry`]): named lock-free counters,
//!   gauges and log-bucketed histograms, plus weakly-registered
//!   [`MetricSource`]s folding the per-subsystem counter structs
//!   (server, valve, verify cache, batch verifier, store) into one
//!   [`Snapshot`] with stable sorted text and JSON expositions.
//! - **Timing** ([`timer`]): [`Timer`] and the drop-guard
//!   [`ScopeTimer`], gated on one relaxed flag so a disabled registry
//!   costs a branch, not a clock read.
//! - **Tracing** ([`trace`]): per-request spans keyed by the wire
//!   correlation id, carried through valve staging, cache lookups,
//!   mint deposit and store commit via a thread-local slot, collected
//!   into a bounded ring with slow-request exemplar capture.
//!
//! ## Privacy
//!
//! The paper's point is *unlinkable* purchases, so telemetry must not
//! become the side channel that links them. Metric names, span ops and
//! stage labels are `&'static str` — fixed at compile time — and every
//! recorded value is a duration or a count. No pseudonym, card id,
//! license id or coin serial may enter the registry or a span; the
//! workspace lint's taint pass checks instrumented call sites for
//! exactly that flow. The only request-derived field a span carries is
//! the wire correlation id, which the *client* chooses for pipelining
//! and which is already visible on the wire.

pub mod hist;
pub mod registry;
pub mod timer;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram, Summary};
pub use registry::{
    global, Counter, Gauge, MetricSource, MetricValue, Registry, Snapshot, SnapshotBuilder,
};
pub use timer::{ScopeTimer, Timer};
pub use trace::{flag, in_span, stage, SpanGuard, SpanRecord, StageTimer, TraceConfig, Tracer};
