//! Process-wide metrics registry: named atomic counters, gauges and
//! histograms, registered lazily and snapshotted into a stable sorted
//! exposition (text and JSON).
//!
//! Hot paths never touch the registry lock: [`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`] hand out `Arc`s once
//! (typically at construction) and all recording is relaxed atomics on
//! the shared instance. Existing per-subsystem counter structs plug in
//! as [`MetricSource`]s registered by [`Weak`] reference — a snapshot
//! upgrades the live sources, prunes the dead ones, and merges
//! same-name entries (counters and gauges sum, histograms merge), so
//! one [`Registry::snapshot`] shows the whole system.
//!
//! **Privacy rule:** metric names are `&'static str` and values are
//! durations and counts only. No pseudonym, card id, license id or
//! coin serial may enter the registry — the lint taint pass flags
//! tainted identifiers reaching a metric or span call in instrumented
//! modules.

use crate::hist::{AtomicHistogram, Histogram, Summary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};

/// Recovers a poisoned mutex: registry state is monotonic counters, so
/// observing a value written before a panic elsewhere is harmless.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Monotonic counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed gauge (set / add / subtract / high-water-mark).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A subsystem that contributes metrics to a snapshot. Implementations
/// must only read their own state — calling back into the [`Registry`]
/// from `collect` is not supported.
pub trait MetricSource {
    /// Emit this source's metrics into the snapshot under construction.
    fn collect(&self, out: &mut SnapshotBuilder);
}

enum Accum {
    Counter(u64),
    Gauge(i64),
    Hist(Histogram),
}

/// Accumulates metrics for one snapshot, merging same-name entries:
/// counters and gauges sum, histograms merge. Name/kind collisions
/// across kinds keep the first kind seen and ignore the rest (a wiring
/// bug, but never worth panicking a serving path over).
#[derive(Default)]
pub struct SnapshotBuilder {
    entries: BTreeMap<String, Accum>,
}

impl SnapshotBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name`.
    pub fn counter(&mut self, name: &str, v: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Accum::Counter(0))
        {
            Accum::Counter(c) => *c += v,
            Accum::Gauge(_) | Accum::Hist(_) => {}
        }
    }

    /// Adds `v` to the gauge `name`.
    pub fn gauge(&mut self, name: &str, v: i64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Accum::Gauge(0))
        {
            Accum::Gauge(g) => *g += v,
            Accum::Counter(_) | Accum::Hist(_) => {}
        }
    }

    /// Merges `h` into the histogram `name`.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Accum::Hist(Histogram::new()))
        {
            Accum::Hist(acc) => acc.merge(h),
            Accum::Counter(_) | Accum::Gauge(_) => {}
        }
    }

    /// Finalises into a sorted [`Snapshot`].
    pub fn finish(self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .into_iter()
                .map(|(name, acc)| {
                    let value = match acc {
                        Accum::Counter(c) => MetricValue::Counter(c),
                        Accum::Gauge(g) => MetricValue::Gauge(g),
                        Accum::Hist(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name, value)
                })
                .collect(),
        }
    }
}

/// One metric's value in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time signed level.
    Gauge(i64),
    /// Latency distribution summary.
    Histogram(Summary),
}

/// Point-in-time view of every metric, sorted by name. The exposition
/// formats ([`to_text`](Snapshot::to_text), [`to_json`](Snapshot::to_json))
/// are stable: same metrics in, byte-identical text out.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (`None` if absent or a different kind).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value by name (`None` if absent or a different kind).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram summary by name (`None` if absent or a different kind).
    pub fn histogram(&self, name: &str) -> Option<&Summary> {
        match self.get(name) {
            Some(MetricValue::Histogram(s)) => Some(s),
            _ => None,
        }
    }

    /// Stable line-per-metric text exposition:
    ///
    /// ```text
    /// net_accepted counter 4
    /// net_dispatch_ns histogram count=4 mean_ns=812 p50_ns=768 p90_ns=1536 p99_ns=1536 min_ns=700 max_ns=1600
    /// valve_inflight gauge 0
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name} counter {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name} gauge {g}\n"));
                }
                MetricValue::Histogram(s) => {
                    out.push_str(&format!(
                        "{name} histogram count={} mean_ns={} p50_ns={} p90_ns={} p99_ns={} min_ns={} max_ns={}\n",
                        s.count,
                        s.mean_ns.round() as u64,
                        s.p50_ns,
                        s.p90_ns,
                        s.p99_ns,
                        s.min_ns,
                        s.max_ns,
                    ));
                }
            }
        }
        out
    }

    /// Stable JSON exposition: one object, keys sorted; counters and
    /// gauges are numbers, histograms are objects:
    ///
    /// ```text
    /// {"net_accepted":4,"net_dispatch_ns":{"count":4,"mean_ns":812,...},"valve_inflight":0}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            match value {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&g.to_string()),
                MetricValue::Histogram(s) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                        s.count,
                        s.mean_ns.round() as u64,
                        s.p50_ns,
                        s.p90_ns,
                        s.p99_ns,
                        s.min_ns,
                        s.max_ns,
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<AtomicHistogram>>,
    sources: Vec<Weak<dyn MetricSource + Send + Sync>>,
}

/// The registry: named metric handles plus weakly-registered
/// [`MetricSource`]s. The `enabled` flag gates *timing* (callers skip
/// `Instant::now` when disabled); counter bumps are always live (they
/// are one relaxed add).
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Debug elides the metric tables (they can be large and sit behind the
/// registry lock); configs holding an `Arc<Registry>` can still derive
/// `Debug`.
impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// Enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Registry with timing disabled (see [`Registry::is_enabled`]).
    pub fn disabled() -> Self {
        let r = Self::new();
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Whether timing instrumentation should run. One relaxed load —
    /// callers check this before taking an `Instant::now` pair.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns timing instrumentation on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Named counter handle, created on first use. Same name, same
    /// counter: all callers share one atomic.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            lock(&self.inner)
                .counters
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Named gauge handle, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.inner)
                .gauges
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Named histogram handle, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<AtomicHistogram> {
        Arc::clone(
            lock(&self.inner)
                .histograms
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        )
    }

    /// Registers a metric source by weak reference: snapshots upgrade
    /// it while it lives and prune it after it drops, so sources never
    /// outlive their subsystem and the registry never keeps one alive.
    /// Re-registering the same object is a no-op — two services sharing
    /// one provider must not double-count its metrics.
    pub fn register_source(&self, src: Weak<dyn MetricSource + Send + Sync>) {
        let mut inner = lock(&self.inner);
        if inner.sources.iter().any(|w| w.ptr_eq(&src)) {
            return;
        }
        inner.sources.push(src);
    }

    /// Point-in-time snapshot of every named metric and every live
    /// source, merged by name and sorted. Sources are collected
    /// outside the registry lock.
    pub fn snapshot(&self) -> Snapshot {
        let mut b = SnapshotBuilder::new();
        let sources: Vec<Arc<dyn MetricSource + Send + Sync>> = {
            let mut inner = lock(&self.inner);
            for (name, c) in &inner.counters {
                b.counter(name, c.get());
            }
            for (name, g) in &inner.gauges {
                b.gauge(name, g.get());
            }
            for (name, h) in &inner.histograms {
                b.histogram(name, &h.snapshot());
            }
            inner.sources.retain(|w| w.strong_count() > 0);
            inner.sources.iter().filter_map(Weak::upgrade).collect()
        };
        for src in sources {
            src.collect(&mut b);
        }
        b.finish()
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide default registry (enabled). Production binaries
/// use this; tests that assert exact totals construct a private
/// [`Registry`] instead, so parallel tests never share counters.
pub fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("zeta").add(1);
        r.counter("alpha").add(2);
        r.gauge("mid").set(-3);
        let s = r.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(
            s.to_text(),
            "alpha counter 2\nmid gauge -3\nzeta counter 1\n"
        );
        assert_eq!(s.to_json(), "{\"alpha\":2,\"mid\":-3,\"zeta\":1}");
        assert_eq!(r.snapshot(), s, "snapshot is deterministic");
    }

    #[test]
    fn sources_merge_and_prune() {
        struct Src;
        impl MetricSource for Src {
            fn collect(&self, out: &mut SnapshotBuilder) {
                out.counter("shared", 5);
            }
        }
        let r = Registry::new();
        r.counter("shared").add(2);
        let src: Arc<Src> = Arc::new(Src);
        let dyn_src: Arc<dyn MetricSource + Send + Sync> = src.clone();
        r.register_source(Arc::downgrade(&dyn_src));
        r.register_source(Arc::downgrade(&dyn_src));
        assert_eq!(
            r.snapshot().counter("shared"),
            Some(7),
            "entries merge; re-registering the same source is a no-op"
        );
        drop(src);
        drop(dyn_src);
        assert_eq!(
            r.snapshot().counter("shared"),
            Some(2),
            "dead source pruned"
        );
    }

    #[test]
    fn histogram_exposition() {
        let r = Registry::new();
        let h = r.histogram("lat_ns");
        h.record(1000);
        let s = r.snapshot();
        let summary = s.histogram("lat_ns").copied().unwrap();
        assert_eq!(summary.count, 1);
        assert!(s.to_text().starts_with("lat_ns histogram count=1 "));
        assert!(s.to_json().starts_with("{\"lat_ns\":{\"count\":1,"));
    }

    #[test]
    fn json_names_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn disabled_registry_still_counts() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        r.counter("c").inc();
        assert_eq!(r.snapshot().counter("c"), Some(1));
        r.set_enabled(true);
        assert!(r.is_enabled());
    }
}
