//! Property tests for the shared histogram: merge is associative and
//! commutative, percentiles are monotone and bounded, and the empty
//! histogram behaves as documented.

use p2drm_obs::Histogram;
use proptest::prelude::*;

fn hist(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_commutes(a in proptest::collection::vec(any::<u64>(), 0..64),
                      b in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut ab = hist(&a);
        ab.merge(&hist(&b));
        let mut ba = hist(&b);
        ba.merge(&hist(&a));
        prop_assert_eq!(ab.summary(), ba.summary());
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(any::<u64>(), 0..32),
                            b in proptest::collection::vec(any::<u64>(), 0..32),
                            c in proptest::collection::vec(any::<u64>(), 0..32)) {
        // (a ∪ b) ∪ c
        let mut left = hist(&a);
        left.merge(&hist(&b));
        left.merge(&hist(&c));
        // a ∪ (b ∪ c)
        let mut bc = hist(&b);
        bc.merge(&hist(&c));
        let mut right = hist(&a);
        right.merge(&bc);
        prop_assert_eq!(left.summary(), right.summary());
    }

    #[test]
    fn merge_equals_recording_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = hist(&a);
        merged.merge(&hist(&b));
        let mut combined: Vec<u64> = a.clone();
        combined.extend_from_slice(&b);
        prop_assert_eq!(merged.summary(), hist(&combined).summary());
    }

    #[test]
    fn percentiles_monotone_in_p(values in proptest::collection::vec(any::<u64>(), 1..128),
                                 lo_tenths in 0u32..1001, hi_tenths in 0u32..1001) {
        // The shim proptest has no f64 strategies: sample tenths of a
        // percent as integers and scale.
        let (lo_tenths, hi_tenths) = if lo_tenths <= hi_tenths {
            (lo_tenths, hi_tenths)
        } else {
            (hi_tenths, lo_tenths)
        };
        let (lo, hi) = (lo_tenths as f64 / 10.0, hi_tenths as f64 / 10.0);
        let h = hist(&values);
        prop_assert!(h.percentile(lo) <= h.percentile(hi),
            "p{}={} > p{}={}", lo, h.percentile(lo), hi, h.percentile(hi));
    }

    #[test]
    fn percentiles_bounded_by_min_max(values in proptest::collection::vec(any::<u64>(), 1..128),
                                      p_tenths in 0u32..1001) {
        let p = p_tenths as f64 / 10.0;
        let h = hist(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let q = h.percentile(p);
        prop_assert!(q >= min && q <= max, "p{} = {} outside [{}, {}]", p, q, min, max);
    }

    #[test]
    fn merging_empty_is_identity(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut h = hist(&values);
        let before = h.summary();
        h.merge(&Histogram::new());
        prop_assert_eq!(h.summary(), before);
        let mut empty = Histogram::new();
        empty.merge(&hist(&values));
        prop_assert_eq!(empty.summary(), before);
    }
}

#[test]
fn empty_histogram_behavior_pinned() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean(), 0.0);
    for p in [0.0, 50.0, 99.9, 100.0] {
        assert_eq!(h.percentile(p), 0, "empty percentile is 0");
    }
    let s = h.summary();
    assert_eq!((s.count, s.min_ns, s.max_ns, s.p50_ns), (0, 0, 0, 0));
    assert_eq!(s.mean_ns, 0.0);
}
