//! Concurrent registry hammer: many threads bumping the same named
//! counters, gauges and histograms through their shared handles, with
//! snapshots taken mid-flight; the final snapshot totals must be exact.

use p2drm_obs::{MetricValue, Registry};
use std::sync::Arc;

#[test]
fn hammered_registry_totals_are_exact() {
    const THREADS: u64 = 8;
    const ITERS: u64 = 10_000;

    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            // Handles resolve to the same atomics on every thread.
            let hits = registry.counter("hammer_hits");
            let level = registry.gauge("hammer_level");
            let lat = registry.histogram("hammer_lat_ns");
            for i in 0..ITERS {
                hits.inc();
                level.add(1);
                level.sub(1);
                lat.record(t * ITERS + i + 1);
                if i % 1024 == 0 {
                    // Snapshots during the storm must not disturb totals.
                    let _ = registry.snapshot();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer_hits"), Some(THREADS * ITERS));
    assert_eq!(snap.gauge("hammer_level"), Some(0));
    let lat = snap.histogram("hammer_lat_ns").unwrap();
    assert_eq!(lat.count, THREADS * ITERS);
    assert_eq!(lat.min_ns, 1);
    assert_eq!(lat.max_ns, THREADS * ITERS);
    // Values were 1..=N exactly once each: the mean is (N + 1) / 2.
    let expected_mean = (THREADS * ITERS + 1) as f64 / 2.0;
    assert!(
        (lat.mean_ns - expected_mean).abs() < 0.5,
        "mean {} != {}",
        lat.mean_ns,
        expected_mean
    );

    // Exposition is stable across repeated snapshots of quiescent state.
    let again = registry.snapshot();
    assert_eq!(again.to_text(), snap.to_text());
    assert_eq!(again.to_json(), snap.to_json());
    assert!(matches!(
        snap.get("hammer_hits"),
        Some(MetricValue::Counter(_))
    ));
}
