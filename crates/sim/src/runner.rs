//! Concurrent purchase throughput (experiments E3/E4/E5).
//!
//! Client threads submit pre-built purchase requests against **one shared
//! provider** through `&self` — the refactored `ContentProvider` is `Sync`,
//! so no external mutex and no per-thread provider clones are involved.
//! Parallelism comes from the provider's internal lock sharding: the
//! spent-ID/license store is a `ShardedKv`, the catalog and rights
//! templates are read-locked, and license signing needs no lock at all.
//! `store_shards = 1` degenerates to a fully serialized store, which is
//! the paper's single-license-server baseline.
//!
//! Two orthogonal knobs pick the deployment shape under test:
//! [`StoreBackend`] (volatile vs WAL-backed) and [`DispatchMode`]
//! (direct `&self` calls, the byte-level wire path through
//! [`ProviderService`] — encode request, dispatch, decode response —
//! which is what experiment E5 uses to price serialization, or real
//! TCP sockets through `p2drm-net`'s `DrmServer`/`TcpTransport`, which
//! is what experiment E6 uses to price the network stack itself).

use crate::json::{Json, ToJson};
use crate::metrics::{Histogram, Summary};
use p2drm_core::entities::provider::{ContentProvider, ProviderConfig};
use p2drm_core::protocol::messages::PurchaseRequest;
use p2drm_core::service::{
    ProviderService, RequestEnvelope, ResponseEnvelope, WireRequest, WireResponse,
};
use p2drm_core::system::{System, SystemConfig};
use p2drm_net::{ClientConfig, DrmServer, NetConfig, ServerHandle, TcpTransport};
use p2drm_store::{ConcurrentKv, SyncPolicy, WalShardedConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Which store backend the provider under test runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreBackend {
    /// Volatile lock-sharded store (`ShardedKv<MemKv>`) — the upper
    /// bound: no durability cost.
    Mem,
    /// WAL-backed sharded store (`WalShardedKv`) at the given durability
    /// level, in a unique temp directory (removed after the run).
    WalSharded(SyncPolicy),
}

impl StoreBackend {
    /// Short label for tables/JSON (`mem`, `wal-buffered`, …).
    pub fn label(&self) -> String {
        match self {
            StoreBackend::Mem => "mem".into(),
            StoreBackend::WalSharded(SyncPolicy::Buffered) => "wal-buffered".into(),
            StoreBackend::WalSharded(SyncPolicy::FlushEach) => "wal-flush-each".into(),
            StoreBackend::WalSharded(SyncPolicy::SyncEach) => "wal-sync-each".into(),
        }
    }
}

/// How client threads reach the provider.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// Direct in-process `&self` calls (no serialization).
    InProc,
    /// Full wire path per purchase: encode a [`RequestEnvelope`],
    /// [`ProviderService::handle`] the bytes, decode the
    /// [`ResponseEnvelope`].
    Wire,
    /// Real sockets: a `DrmServer` bound to a loopback port with one
    /// worker per client thread, each client holding a keep-alive
    /// `TcpTransport` connection. Adds framing plus the kernel TCP
    /// stack on top of [`DispatchMode::Wire`].
    Tcp,
}

impl DispatchMode {
    /// Short label for tables/JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DispatchMode::InProc => "in-proc",
            DispatchMode::Wire => "wire",
            DispatchMode::Tcp => "tcp",
        }
    }
}

/// Throughput run parameters.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Purchases per client.
    pub purchases_per_client: usize,
    /// Lock shards inside the provider's store (1 = fully serialized
    /// store, the single-license-server shape).
    pub store_shards: usize,
    /// Store backend under test.
    pub backend: StoreBackend,
    /// In-process calls or the byte-level wire path.
    pub mode: DispatchMode,
    /// Provider verification-valve batch size (0 = valve off, the
    /// pre-valve behaviour; >0 stages cache-missing pseudonym
    /// verifications and flushes them as one screened batch).
    pub valve_batch: usize,
    /// Private metrics registry for the run. `Some` routes the service
    /// (and, in TCP mode, the server) through
    /// [`ProviderService::with_registry`] so the run's counters and
    /// latency histograms land in a caller-owned registry instead of the
    /// process-wide one, and [`ThroughputResult::snapshot`] carries the
    /// end-of-run exposition. `None` keeps the default (global registry,
    /// no snapshot) — zero behaviour change for existing callers.
    pub registry: Option<Arc<p2drm_obs::Registry>>,
    /// Enable per-request tracing on the run's service(s). Only
    /// meaningful with a private `registry`; prices the tracer's
    /// overhead in experiment E14.
    pub tracing: bool,
}

impl Default for ThroughputConfig {
    /// Smallest meaningful run: one client, one purchase, serialized
    /// store, volatile backend, in-process dispatch, valve off, global
    /// registry, no tracing.
    fn default() -> Self {
        ThroughputConfig {
            clients: 1,
            purchases_per_client: 1,
            store_shards: 1,
            backend: StoreBackend::Mem,
            mode: DispatchMode::InProc,
            valve_batch: 0,
            registry: None,
            tracing: false,
        }
    }
}

/// Throughput results.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Threads used.
    pub clients: usize,
    /// Store lock shards used.
    pub store_shards: usize,
    /// Backend label (`mem`, `wal-flush-each`, …).
    pub backend: String,
    /// Dispatch label (`in-proc`, `wire`).
    pub mode: String,
    /// Completed purchases.
    pub completed: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Purchases per second (aggregate).
    pub throughput: f64,
    /// Per-purchase latency summary.
    pub latency: Summary,
    /// Exact median per-purchase latency in nanoseconds, computed from
    /// the raw samples rather than histogram buckets. Robust to
    /// scheduler stalls (which contaminate wall-clock throughput and
    /// the mean but shift the median of thousands of samples by almost
    /// nothing), so it is the statistic of choice for small-overhead
    /// comparisons like E14's ≤2% observability budget.
    pub median_op_ns: u64,
    /// Verification-valve counters for the run (all zero when the valve
    /// is off).
    pub valve: p2drm_core::valve::ValveCounters,
    /// End-of-run unified metrics snapshot, taken from the private
    /// registry while the provider is still alive (its weak
    /// [`p2drm_obs::MetricSource`] registration would go dead once the
    /// run's `Arc`s drop). `None` unless [`ThroughputConfig::registry`]
    /// was supplied.
    pub snapshot: Option<p2drm_obs::Snapshot>,
}

impl ToJson for ThroughputResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("clients", self.clients.to_json()),
            ("store_shards", self.store_shards.to_json()),
            ("backend", self.backend.to_json()),
            ("mode", self.mode.to_json()),
            ("completed", self.completed.to_json()),
            ("wall_secs", self.wall_secs.to_json()),
            ("throughput", self.throughput.to_json()),
            ("latency", self.latency.to_json()),
            ("median_op_ns", self.median_op_ns.to_json()),
            (
                "valve",
                Json::obj([
                    ("batched", self.valve.batched.to_json()),
                    ("timer_flushes", self.valve.timer_flushes.to_json()),
                    ("size_flushes", self.valve.size_flushes.to_json()),
                    ("fallback_splits", self.valve.fallback_splits.to_json()),
                ]),
            ),
        ])
    }
}

/// Self-cleaning unique temp directory for WAL-backed runs.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("p2drm-sim-throughput-{}-{n}", std::process::id()));
        // Pre-clean: a stale directory from a crashed prior run (possibly
        // with a different shard count) would fail the MANIFEST check.
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the throughput experiment on the configured backend. Setup
/// (users, pseudonyms, coins) is excluded from the measured section; only
/// provider-side handling is timed — the license-server capacity
/// question, now including the cost of durability when the backend is
/// WAL-backed.
pub fn purchase_throughput<R: Rng>(config: ThroughputConfig, rng: &mut R) -> ThroughputResult {
    purchase_throughput_with(SystemConfig::fast_test(), config, rng)
}

/// [`purchase_throughput`] over a caller-chosen [`SystemConfig`] — e.g.
/// realistic key sizes, where per-signature verification is expensive
/// enough for the valve's batching to matter (experiment E12).
pub fn purchase_throughput_with<R: Rng>(
    system: SystemConfig,
    config: ThroughputConfig,
    rng: &mut R,
) -> ThroughputResult {
    let mut sys = System::bootstrap(system, rng);
    let provider_config = ProviderConfig {
        store_shards: config.store_shards,
        valve_batch: config.valve_batch,
        ..ProviderConfig::fast_test()
    };

    // The shared provider under test, with the requested store sharding
    // and backend. It shares the system's mint, so deposits (and
    // double-spend protection) stay globally consistent.
    match config.backend.clone() {
        StoreBackend::Mem => {
            let provider = ContentProvider::new(
                &mut sys.root,
                sys.mint.clone(),
                sys.ra.blind_public().clone(),
                provider_config,
                rng,
            );
            drive_provider(config, sys, provider, rng)
        }
        StoreBackend::WalSharded(policy) => {
            let tmp = TempDir::new();
            let (provider, _report) = ContentProvider::open_durable(
                &mut sys.root,
                sys.mint.clone(),
                sys.ra.blind_public().clone(),
                &tmp.0,
                WalShardedConfig {
                    shards: config.store_shards.max(1),
                    policy,
                },
                provider_config,
                rng,
            )
            .expect("open durable provider");
            drive_provider(config, sys, provider, rng)
        }
    }
}

/// Backend-generic measured section.
fn drive_provider<B: ConcurrentKv + Send + Sync + 'static, R: Rng>(
    config: ThroughputConfig,
    sys: System,
    provider: ContentProvider<B>,
    rng: &mut R,
) -> ThroughputResult {
    let provider = Arc::new(provider);
    let template = sys.config().rights_template.clone();
    let cid = provider.publish("hot-item", 100, &vec![0u8; 1024], template, rng);
    let epoch = sys.epoch();

    // Pre-build all requests: one user per client, coins + pseudonyms
    // prepared up front.
    let total = config.clients * config.purchases_per_client;
    let mut requests: Vec<Vec<PurchaseRequest>> = Vec::with_capacity(config.clients);
    for c in 0..config.clients {
        // Every purchase mints a fresh pseudonym, so size the card's
        // budget to the workload instead of the 64-slot default.
        let budget = p2drm_core::entities::CardBudget {
            max_pseudonyms: config.purchases_per_client + 8,
        };
        let mut user = sys
            .register_user_with_budget(&format!("client-{c}"), budget, rng)
            .unwrap();
        sys.fund(&user, 100 * config.purchases_per_client as u64);
        let mut reqs = Vec::with_capacity(config.purchases_per_client);
        for _ in 0..config.purchases_per_client {
            sys.ensure_pseudonym(&mut user, rng).unwrap();
            let cert = user.current_pseudonym().unwrap().clone();
            let account = user.account.clone();
            let coin = user.wallet.withdraw(&sys.mint, &account, 100, rng).unwrap();
            user.wallet.take(100);
            user.note_pseudonym_use();
            reqs.push(PurchaseRequest {
                content_id: cid,
                pseudonym_cert: cert,
                coin,
                attribute_cert: None,
            });
        }
        requests.push(reqs);
    }

    let completed = std::sync::atomic::AtomicUsize::new(0);
    let histograms: Vec<Mutex<Histogram>> = (0..config.clients)
        .map(|_| Mutex::new(Histogram::new()))
        .collect();
    // Raw per-op samples, kept alongside the bucketed histogram so the
    // exact median survives (see `ThroughputResult::median_op_ns`).
    let samples: Vec<Mutex<Vec<u64>>> = (0..config.clients)
        .map(|_| Mutex::new(Vec::with_capacity(config.purchases_per_client)))
        .collect();

    // Wire mode fronts the same provider with the byte-level service;
    // each purchase then pays encode → handle (decode, dispatch, encode)
    // → decode inside the timed section. A caller-supplied registry
    // keeps the run's metrics out of the process-wide tables.
    let service = match &config.registry {
        Some(registry) => {
            // Fold the batch crypto layer's process-wide counters into
            // the private snapshot too.
            registry.register_source(Arc::downgrade(p2drm_crypto::batch::batch_metric_source()));
            ProviderService::with_registry(provider.clone(), 0x317E_0000, registry.clone())
        }
        None => ProviderService::new(provider.clone(), 0x317E_0000),
    };
    service.set_tracing(config.tracing);
    service.set_time(epoch, sys.now());
    let mode = config.mode;

    // Tcp mode additionally boots a real server on a loopback port (its
    // own service instance over the same shared provider) with one
    // worker per client thread, so keep-alive connections are never
    // starved. Connections are established outside the timed section —
    // the steady-state cost under test is request/reply, not dialing.
    let server: Option<ServerHandle> = match mode {
        DispatchMode::Tcp => {
            let tcp_service = match &config.registry {
                Some(registry) => {
                    ProviderService::with_registry(provider.clone(), 0x317E_0001, registry.clone())
                }
                None => ProviderService::new(provider.clone(), 0x317E_0001),
            };
            tcp_service.set_tracing(config.tracing);
            tcp_service.set_time(epoch, sys.now());
            Some(
                DrmServer::bind(
                    "127.0.0.1:0",
                    tcp_service,
                    NetConfig {
                        workers: config.clients,
                        max_connections: config.clients + 4,
                        registry: config.registry.clone(),
                        ..NetConfig::default()
                    },
                )
                .expect("bind loopback server"),
            )
        }
        _ => None,
    };

    // Dial every keep-alive client connection *before* the clock
    // starts: the steady-state cost under test is request/reply, not
    // connection establishment.
    let mut transports: Vec<Option<TcpTransport>> = (0..config.clients)
        .map(|_| {
            server.as_ref().map(|s| {
                TcpTransport::connect_with(s.local_addr(), ClientConfig::default())
                    .expect("connect to loopback server")
            })
        })
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for ((c, reqs), mut transport) in requests.iter().enumerate().zip(transports.drain(..)) {
            let provider = &provider;
            let service = &service;
            let completed = &completed;
            let histograms = &histograms;
            let samples = &samples;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC11E57 + c as u64);
                for (i, req) in reqs.iter().enumerate() {
                    // The request clone stands in for the client-side
                    // message the caller would already hold; it stays
                    // outside the timed section so wire/tcp modes
                    // measure encode → dispatch → decode, nothing else.
                    let body = match mode {
                        DispatchMode::InProc => None,
                        DispatchMode::Wire | DispatchMode::Tcp => {
                            Some(WireRequest::Purchase(req.clone()))
                        }
                    };
                    let t0 = Instant::now();
                    let ok = match body {
                        None => provider.handle_purchase(req, epoch, &mut rng).is_ok(),
                        Some(body) => {
                            // Correlation id 0 is reserved for server
                            // pre-decode errors, so the per-request index
                            // is offset by one.
                            let corr = ((c as u64) << 32) | (i as u64 + 1);
                            let envelope = RequestEnvelope {
                                correlation_id: corr,
                                body,
                            };
                            let request = envelope.to_bytes();
                            let reply = match &mut transport {
                                None => service.handle(&request),
                                Some(t) => {
                                    use p2drm_core::service::Transport;
                                    t.roundtrip(corr, &request).expect("loopback tcp roundtrip")
                                }
                            };
                            let envelope = ResponseEnvelope::from_bytes(&reply)
                                .expect("service replies are well-formed");
                            matches!(envelope.body, WireResponse::Purchase(_))
                        }
                    };
                    let dt = t0.elapsed();
                    if ok {
                        completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        histograms[c].lock().record_duration(dt);
                        samples[c]
                            .lock()
                            .push(dt.as_nanos().min(u64::MAX as u128) as u64);
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    // Snapshot before shutdown: the TCP server owns its service, whose
    // tracer and `ServerMetrics` are weak sources in the registry —
    // they die with it.
    let snapshot = config.registry.as_ref().map(|r| r.snapshot());
    if let Some(server) = server {
        server.shutdown();
    }

    let mut merged = Histogram::new();
    for h in &histograms {
        merged.merge(&h.lock());
    }
    let mut all_samples: Vec<u64> = samples.iter().flat_map(|s| s.lock().clone()).collect();
    all_samples.sort_unstable();
    let median_op_ns = all_samples.get(all_samples.len() / 2).copied().unwrap_or(0);
    let completed = completed.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(completed, total, "all purchases must succeed");
    assert_eq!(
        provider.license_count(),
        total,
        "license store accounts for every issuance"
    );

    ThroughputResult {
        clients: config.clients,
        store_shards: config.store_shards,
        backend: config.backend.label(),
        mode: config.mode.label().to_string(),
        completed,
        wall_secs: wall.as_secs_f64(),
        throughput: completed as f64 / wall.as_secs_f64(),
        latency: merged.summary(),
        median_op_ns,
        valve: provider.valve_counters(),
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn throughput_completes_all_purchases() {
        let mut rng = test_rng(270);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 2,
                purchases_per_client: 3,
                store_shards: 1,
                backend: StoreBackend::Mem,
                mode: DispatchMode::InProc,
                valve_batch: 0,
                ..ThroughputConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.completed, 6);
        assert!(r.throughput > 0.0);
        assert_eq!(r.latency.count, 6);
        assert_eq!(r.backend, "mem");
        assert_eq!(r.mode, "in-proc");
    }

    #[test]
    fn sharded_store_run_completes() {
        let mut rng = test_rng(271);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 4,
                purchases_per_client: 2,
                store_shards: 8,
                backend: StoreBackend::Mem,
                mode: DispatchMode::InProc,
                valve_batch: 0,
                ..ThroughputConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.completed, 8);
        assert_eq!(r.store_shards, 8);
    }

    #[test]
    fn valve_enabled_run_completes_and_batches() {
        let mut rng = test_rng(275);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 4,
                purchases_per_client: 2,
                store_shards: 8,
                backend: StoreBackend::Mem,
                mode: DispatchMode::InProc,
                valve_batch: 2,
                ..ThroughputConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.completed, 8);
        // Every purchase presents a fresh pseudonym (a cache miss), so
        // the valve must have flushed at least once — by size when the
        // threads overlap, by timer otherwise.
        assert!(
            r.valve.timer_flushes + r.valve.size_flushes > 0,
            "valve saw no traffic: {:?}",
            r.valve
        );
    }

    #[test]
    fn wire_mode_completes_all_purchases() {
        let mut rng = test_rng(272);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 2,
                purchases_per_client: 3,
                store_shards: 8,
                backend: StoreBackend::Mem,
                mode: DispatchMode::Wire,
                valve_batch: 0,
                ..ThroughputConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.completed, 6);
        assert_eq!(r.mode, "wire");
    }

    #[test]
    fn tcp_mode_completes_all_purchases() {
        let mut rng = test_rng(274);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 2,
                purchases_per_client: 3,
                store_shards: 8,
                backend: StoreBackend::Mem,
                mode: DispatchMode::Tcp,
                valve_batch: 0,
                ..ThroughputConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.completed, 6);
        assert_eq!(r.mode, "tcp");
    }

    #[test]
    fn wire_mode_works_over_wal_backend() {
        let mut rng = test_rng(273);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 2,
                purchases_per_client: 2,
                store_shards: 4,
                backend: StoreBackend::WalSharded(SyncPolicy::Buffered),
                mode: DispatchMode::Wire,
                valve_batch: 0,
                ..ThroughputConfig::default()
            },
            &mut rng,
        );
        assert_eq!(r.completed, 4);
        assert_eq!(r.mode, "wire");
        assert!(r.backend.starts_with("wal-"));
    }

    #[test]
    fn wal_backed_run_completes_under_each_policy() {
        for (i, policy) in [
            SyncPolicy::Buffered,
            SyncPolicy::FlushEach,
            SyncPolicy::SyncEach,
        ]
        .into_iter()
        .enumerate()
        {
            let mut rng = test_rng(280 + i as u64);
            let r = purchase_throughput(
                ThroughputConfig {
                    clients: 2,
                    purchases_per_client: 2,
                    store_shards: 4,
                    backend: StoreBackend::WalSharded(policy),
                    mode: DispatchMode::InProc,
                    valve_batch: 0,
                    ..ThroughputConfig::default()
                },
                &mut rng,
            );
            assert_eq!(r.completed, 4, "{policy:?}");
            assert!(r.backend.starts_with("wal-"));
        }
    }
}
