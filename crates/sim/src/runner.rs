//! Concurrent purchase throughput (experiment E3).
//!
//! Client threads submit pre-built purchase requests against provider
//! shards. With one shard the provider serializes (the spent-ID store and
//! license signing sit behind one lock); with one shard per client the
//! workload scales until the shared mint's deposit lock becomes the
//! bottleneck — both shapes are reported in EXPERIMENTS.md.

use crate::metrics::{Histogram, Summary};
use p2drm_core::entities::provider::ContentProvider;
use p2drm_core::protocol::messages::PurchaseRequest;
use p2drm_core::system::{System, SystemConfig};
use parking_lot::Mutex;
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

/// Throughput run parameters.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Purchases per client.
    pub purchases_per_client: usize,
    /// Provider shards (1 = single license server).
    pub shards: usize,
}

/// Throughput results.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputResult {
    /// Threads used.
    pub clients: usize,
    /// Provider shards used.
    pub shards: usize,
    /// Completed purchases.
    pub completed: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Purchases per second (aggregate).
    pub throughput: f64,
    /// Per-purchase latency summary.
    pub latency: Summary,
}

/// Runs the throughput experiment. Setup (users, pseudonyms, coins) is
/// excluded from the measured section; only provider-side handling is
/// timed — the license-server capacity question.
pub fn purchase_throughput<R: Rng>(config: ThroughputConfig, rng: &mut R) -> ThroughputResult {
    let mut sys = System::bootstrap(SystemConfig::fast_test(), rng);
    let cid = sys.publish_content("hot-item", 100, &vec![0u8; 1024], rng);
    let epoch = sys.epoch();

    // Shards: independent provider instances sharing the mint (deposits,
    // and thus double-spend protection, stay globally consistent).
    let mut shards = Vec::with_capacity(config.shards);
    let template = sys.config().rights_template.clone();
    for s in 0..config.shards {
        let mut p = ContentProvider::new(
            &mut sys.root,
            sys.mint.clone(),
            sys.ra.blind_public().clone(),
            p2drm_core::entities::provider::ProviderConfig::fast_test(),
            rng,
        );
        // Same catalog entry id is not required — each shard sells its own
        // copy at the same price.
        let _ = p.publish(format!("hot-{s}"), 100, &vec![0u8; 1024], template.clone(), rng);
        shards.push(p);
    }
    // Shard catalogs each have their own content id; collect them.
    let shard_cids: Vec<_> = shards
        .iter()
        .map(|p| p.catalog().list()[0].id)
        .collect();
    let _ = cid;

    // Pre-build all requests: one user per client, coins + pseudonyms
    // prepared up front.
    let total = config.clients * config.purchases_per_client;
    let mut requests: Vec<Vec<PurchaseRequest>> = Vec::with_capacity(config.clients);
    for c in 0..config.clients {
        let mut user = sys.register_user(&format!("client-{c}"), rng).unwrap();
        sys.fund(&user, 100 * config.purchases_per_client as u64);
        let mut reqs = Vec::with_capacity(config.purchases_per_client);
        for i in 0..config.purchases_per_client {
            sys.ensure_pseudonym(&mut user, rng).unwrap();
            let cert = user.current_pseudonym().unwrap().clone();
            let account = user.account.clone();
            let coin = user.wallet.withdraw(&sys.mint, &account, 100, rng).unwrap();
            user.wallet.take(100);
            user.note_pseudonym_use();
            let shard = (c * config.purchases_per_client + i) % config.shards;
            reqs.push(PurchaseRequest {
                content_id: shard_cids[shard],
                pseudonym_cert: cert,
                coin,
                attribute_cert: None,
            });
        }
        requests.push(reqs);
    }

    let shard_locks: Vec<Mutex<ContentProvider>> = shards.into_iter().map(Mutex::new).collect();
    let completed = std::sync::atomic::AtomicUsize::new(0);
    let histograms: Vec<Mutex<Histogram>> = (0..config.clients)
        .map(|_| Mutex::new(Histogram::new()))
        .collect();

    let start = Instant::now();
    crossbeam::scope(|scope| {
        for (c, reqs) in requests.iter().enumerate() {
            let shard_locks = &shard_locks;
            let completed = &completed;
            let histograms = &histograms;
            scope.spawn(move |_| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xC11E57 + c as u64);
                for (i, req) in reqs.iter().enumerate() {
                    let shard = (c * reqs.len() + i) % shard_locks.len();
                    let t0 = Instant::now();
                    let res = shard_locks[shard]
                        .lock()
                        .handle_purchase(req, epoch, &mut rng);
                    let dt = t0.elapsed();
                    if res.is_ok() {
                        completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        histograms[c].lock().record_duration(dt);
                    }
                }
            });
        }
    })
    .expect("threads join");
    let wall = start.elapsed();

    let mut merged = Histogram::new();
    for h in &histograms {
        merged.merge(&h.lock());
    }
    let completed = completed.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(completed, total, "all purchases must succeed");

    ThroughputResult {
        clients: config.clients,
        shards: config.shards,
        completed,
        wall_secs: wall.as_secs_f64(),
        throughput: completed as f64 / wall.as_secs_f64(),
        latency: merged.summary(),
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use p2drm_crypto::rng::test_rng;

    #[test]
    fn throughput_completes_all_purchases() {
        let mut rng = test_rng(270);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 2,
                purchases_per_client: 3,
                shards: 1,
            },
            &mut rng,
        );
        assert_eq!(r.completed, 6);
        assert!(r.throughput > 0.0);
        assert_eq!(r.latency.count, 6);
    }

    #[test]
    fn sharded_run_completes() {
        let mut rng = test_rng(271);
        let r = purchase_throughput(
            ThroughputConfig {
                clients: 4,
                purchases_per_client: 2,
                shards: 2,
            },
            &mut rng,
        );
        assert_eq!(r.completed, 8);
        assert_eq!(r.shards, 2);
    }
}
